"""Figure 12 — varying k (top-k), Restaurants dataset.

Paper setup: 2 keywords, 8-byte signatures (short documents need short
signatures: ~14 unique words per object), k swept.  Same expected shape
as Figure 9 on the second dataset: IR2/MIR2 dominate the R-Tree baseline,
IIO is k-independent.
"""

from __future__ import annotations

import pytest

from conftest import emit_sweep
from repro.bench import ALGORITHMS, queries_per_point, run_sweep
from repro.bench.workloads import with_k

K_VALUES = (1, 5, 10, 20, 50)
NUM_KEYWORDS = 2


@pytest.fixture(scope="module")
def sweep(restaurants):
    base = restaurants.workload.queries(queries_per_point(), NUM_KEYWORDS, 10)
    result = run_sweep(
        restaurants,
        "Figure 12 (Restaurants): vary k, 2 keywords, 8-byte signatures",
        "k",
        K_VALUES,
        lambda k: with_k(base, k),
        algorithms=ALGORITHMS,
    )
    emit_sweep("fig12_vary_k_restaurants", result)
    return result


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig12_query_wallclock(benchmark, restaurants, sweep, algorithm):
    """Wall-clock time of a k=10 query batch per algorithm."""
    queries = with_k(
        restaurants.workload.queries(queries_per_point(), NUM_KEYWORDS, 10), 10
    )
    benchmark.pedantic(
        lambda: restaurants.run_queries(algorithm, queries), rounds=3, iterations=1
    )


def test_fig12_shape_ir2_beats_rtree(restaurants, sweep):
    """IR2/MIR2 must beat the R-Tree baseline at every k."""
    rtree = sweep.table("simulated_ms").column("RTREE")
    ir2 = sweep.table("simulated_ms").column("IR2")
    assert all(i <= r for i, r in zip(ir2, rtree))


def test_fig12_shape_iio_flat(restaurants, sweep):
    """IIO's cost must be independent of k."""
    iio = sweep.table("random_accesses").column("IIO")
    assert max(iio) - min(iio) < 1e-9
