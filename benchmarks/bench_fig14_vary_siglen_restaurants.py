"""Figure 14 — varying the signature length, Restaurants dataset.

Paper setup: k=10, 2 keywords, short signatures (2-32 bytes) because a
restaurant object carries only ~14 unique words.  As in Figure 11, longer
signatures reduce false positives (object accesses) at the price of a
larger tree; there is no universally best length.
"""

from __future__ import annotations

import pytest

from conftest import emit_sweep
from repro.bench import get_context, queries_per_point
from repro.bench.harness import MetricsRow
from repro.bench.reporting import SeriesTable
from repro.bench import SweepResult
from repro.bench.workloads import with_k

SIGNATURE_BYTES = (2, 4, 8, 16, 32)
K = 10
NUM_KEYWORDS = 2


@pytest.fixture(scope="module")
def sweep(restaurants):
    base = with_k(
        restaurants.workload.queries(queries_per_point(), NUM_KEYWORDS, K), K
    )
    result = SweepResult()
    names = ["RTREE", "IIO", "IR2", "MIR2"]
    for metric, label in MetricsRow.METRICS.items():
        result.tables[metric] = SeriesTable(
            title=(
                "Figure 14 (Restaurants): vary signature length (bytes), "
                f"k={K}, {NUM_KEYWORDS} keywords — {label}"
            ),
            parameter="sig_bytes",
            algorithms=names,
        )
    baseline_rows = {
        name: restaurants.measure(name, base) for name in ("RTREE", "IIO")
    }
    for length in SIGNATURE_BYTES:
        context = get_context(
            "restaurants", signature_bytes=length, algorithms=("IR2", "MIR2")
        )
        rows = dict(baseline_rows)
        rows["IR2"] = context.measure("IR2", base)
        rows["MIR2"] = context.measure("MIR2", base)
        for metric in MetricsRow.METRICS:
            result.tables[metric].add(
                length, {name: getattr(rows[name], metric) for name in names}
            )
    emit_sweep("fig14_vary_siglen_restaurants", result)
    return result


@pytest.mark.parametrize("sig_bytes", SIGNATURE_BYTES)
def test_fig14_ir2_wallclock(benchmark, restaurants, sweep, sig_bytes):
    """Wall-clock of the IR2 query batch at each signature length."""
    context = get_context(
        "restaurants", signature_bytes=sig_bytes, algorithms=("IR2", "MIR2")
    )
    queries = with_k(
        restaurants.workload.queries(queries_per_point(), NUM_KEYWORDS, K), K
    )
    benchmark.pedantic(
        lambda: context.run_queries("IR2", queries), rounds=3, iterations=1
    )


def test_fig14_shape_longer_signatures_fewer_object_accesses(restaurants, sweep):
    """Longest signatures must not inspect more objects than shortest."""
    ir2 = sweep.table("object_accesses").column("IR2")
    assert ir2[-1] <= ir2[0]
