"""Ablation A3 — LRU buffer pool in front of the IR2-Tree.

The paper measures cold-cache disk accesses.  Real deployments cache hot
blocks (the root and upper tree levels are touched by every query); this
ablation quantifies how many of the paper's block accesses a small LRU
pool absorbs, without changing any result.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import format_table
from repro.bench.workloads import WorkloadGenerator
from repro.core import Corpus, IR2Index
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.storage import BufferPoolDevice, InMemoryBlockDevice

N_OBJECTS = 1_500
N_QUERIES = 24
POOL_BLOCKS = (0, 8, 64, 512)


def _setup(pool_blocks: int):
    config = DatasetConfig(
        name="cache-ablation",
        n_objects=N_OBJECTS,
        vocabulary_size=3_000,
        avg_unique_words=25,
        seed=17,
    )
    objects = SpatialTextDatasetGenerator(config).generate()
    corpus = Corpus()
    corpus.add_all(objects)
    inner = InMemoryBlockDevice(name="ir2-disk")
    device = BufferPoolDevice(inner, pool_blocks) if pool_blocks else inner
    index = IR2Index(corpus, 16, device=device)
    index.build()
    if pool_blocks:
        device.clear()
    index.reset_io()
    return corpus, objects, index, device


@pytest.fixture(scope="module")
def comparison():
    rows = []
    measured = {}
    for pool in POOL_BLOCKS:
        corpus, objects, index, device = _setup(pool)
        workload = WorkloadGenerator(objects, corpus.analyzer, seed=6)
        queries = workload.queries(N_QUERIES, 2, 10)
        answers = [index.execute(q).oids for q in queries]
        disk_reads = index.device.stats.total_reads
        if pool:
            disk_reads = device.inner.stats.total_reads
            hit_rate = device.hit_rate
        else:
            hit_rate = 0.0
        rows.append((pool, round(disk_reads / N_QUERIES, 1), round(hit_rate, 3)))
        measured[pool] = (answers, disk_reads)
    text = format_table(
        ("Pool blocks", "Tree disk reads/query", "Hit rate"),
        rows,
        title=f"Ablation A3: LRU buffer pool over the IR2-Tree ({N_OBJECTS} objects)",
    )
    emit_text("ablation_cache", text)
    return measured


def test_cache_preserves_results(comparison):
    """Caching must never change query answers."""
    reference = comparison[0][0]
    for pool in POOL_BLOCKS[1:]:
        assert comparison[pool][0] == reference


def test_cache_reduces_disk_reads(comparison):
    """A big pool must absorb a substantial share of tree reads."""
    cold = comparison[0][1]
    warm = comparison[POOL_BLOCKS[-1]][1]
    assert warm < cold


@pytest.mark.parametrize("pool", POOL_BLOCKS, ids=[f"pool{p}" for p in POOL_BLOCKS])
def test_cache_query_wallclock(benchmark, comparison, pool):
    """Wall-clock of the query batch at each pool size."""
    corpus, objects, index, _ = _setup(pool)
    workload = WorkloadGenerator(objects, corpus.analyzer, seed=6)
    queries = workload.queries(8, 2, 10)

    def run():
        for query in queries:
            index.execute(query)

    benchmark.pedantic(run, rounds=2, iterations=1)
