"""Section VI.B's discussion claims: keyword frequency crossovers.

The paper: "in the rare case where every query keyword appears in very
few objects, the IIO method will be faster since the inverted lists would
be very short.  On the other extreme, if the query keywords appear in
almost all objects, the R-Tree will excel."

This experiment sweeps the query keywords' document-frequency band on the
Hotels dataset (its long documents provide near-ubiquitous words) and
measures every algorithm, exposing both predicted crossovers.
"""

from __future__ import annotations

import pytest

from conftest import emit_sweep
from repro.bench import ALGORITHMS, queries_per_point
from repro.bench.harness import MetricsRow
from repro.bench.reporting import SeriesTable
from repro.bench import SweepResult

#: Document-frequency bands, as fractions of the corpus.  The synthetic
#: Hotels corpus has no truly unique words (each document samples ~349 of
#: a scaled vocabulary), so "rare" means the bottom of its df range.
BANDS = (
    ("rare", 0.0, 0.008),
    ("uncommon", 0.01, 0.05),
    ("common", 0.10, 0.40),
    ("ubiquitous", 0.85, 1.0),
)
K = 10
NUM_KEYWORDS = 2


@pytest.fixture(scope="module")
def sweep(hotels):
    result = SweepResult()
    names = list(ALGORITHMS)
    for metric, label in MetricsRow.METRICS.items():
        result.tables[metric] = SeriesTable(
            title=(
                "Section VI.B (Hotels): keyword document-frequency bands, "
                f"k={K}, {NUM_KEYWORDS} keywords — {label}"
            ),
            parameter="band",
            algorithms=names,
        )
    for band, lo, hi in BANDS:
        queries = hotels.workload.frequency_band_queries(
            queries_per_point(), NUM_KEYWORDS, K, lo, hi
        )
        rows = {name: hotels.measure(name, queries) for name in names}
        for metric in MetricsRow.METRICS:
            result.tables[metric].add(
                band, {name: getattr(rows[name], metric) for name in names}
            )
    emit_sweep("discussion_keyword_frequency", result)
    return result


def test_rare_keywords_favor_iio(hotels, sweep):
    """With very rare keywords IIO must beat the R-Tree baseline."""
    table = sweep.table("simulated_ms")
    rare_index = [value for value, _ in table.rows].index("rare")
    assert table.column("IIO")[rare_index] < table.column("RTREE")[rare_index]


def test_ubiquitous_keywords_flatten_rtree_penalty(hotels, sweep):
    """With near-ubiquitous keywords the R-Tree baseline stops losing big.

    Almost every neighbor passes the filter, so fetch-and-filter touches
    barely more objects than k — while IIO must still intersect two
    corpus-length posting lists and fetch the whole intersection.
    """
    table = sweep.table("simulated_ms")
    values = {value: i for i, (value, _) in enumerate(table.rows)}
    rtree = table.column("RTREE")
    iio = table.column("IIO")
    assert rtree[values["ubiquitous"]] < iio[values["ubiquitous"]]
    # And the baseline's own cost collapses relative to the rare band.
    assert rtree[values["ubiquitous"]] < rtree[values["rare"]]


@pytest.mark.parametrize("band", [b[0] for b in BANDS])
def test_frequency_band_wallclock(benchmark, hotels, sweep, band):
    """Wall-clock of the IR2 batch per frequency band."""
    lo, hi = next((lo, hi) for name, lo, hi in BANDS if name == band)
    queries = hotels.workload.frequency_band_queries(4, NUM_KEYWORDS, K, lo, hi)
    benchmark.pedantic(
        lambda: hotels.run_queries("IR2", queries), rounds=2, iterations=1
    )
