"""Macro-benchmark: mixed serving load through :class:`QueryService`.

Drives seeded workloads through the full serving stack for several
index kinds — including the cost-based adaptive planner (``auto``) —
and shard counts, and writes a machine-readable baseline
(``BENCH_PR7.json`` at the repo root) from the service's own metrics
snapshot:

* ``p50_ms`` / ``p95_ms`` — end-to-end latency quantiles from the
  ``service.total_ms`` histogram of a multi-worker timed pass over the
  headline *mixed* workload;
* ``qps`` — the timed pass's completed queries over its wall time;
* ``io_per_query`` — block reads and object loads per query from a
  separate single-worker *metered* pass (service workers = 1 **and**
  shard fan-out workers = 1), which makes the counts independent of
  thread scheduling and therefore stable enough for CI to diff;
* ``classes`` — the same metered I/O split by workload class (``mixed``
  / ``point`` / ``area`` and, for ranked-capable kinds, ``ranked``), so
  the adaptive planner can be gated per class against the best fixed
  kind;
* ``cache_hit_rate`` — the result cache's hit fraction on the workload;
* ``batched_io_per_query`` / ``batched_qps`` — the same mixed workload
  replayed through the batch front-end (``submit_many`` grouping,
  duplicate coalescing, one shared-read session per group): device
  reads per query from a deterministic single-worker metered pass, and
  wall-clock QPS from a concurrent timed pass.

Every kind answers **identical batches**: the headline mix varies each
query's keyword count over 1-3 (single common keywords favor the trees,
rare conjunctions favor the inverted index — the regime spread the
planner routes across) and contains no ranked queries, so fixed and
adaptive kinds are comparable query for query.

Run directly (``python benchmarks/bench_service_load.py``) to regenerate
the full baseline, or with ``--quick`` for the small configuration CI's
perf-smoke job uses; ``--check BASELINE`` compares the current quick
numbers against a committed baseline and exits 2 when any config's
total reads per query regressed by more than ``--tolerance`` (default
2x); ``--check-planner`` additionally gates the adaptive planner's
per-class I/O at no worse than the best fixed kind (times
``--planner-tolerance``) within the same run; ``--check-batching``
gates the batch front-end at no more device reads per query than
unbatched execution on the mixed workload, within the same run.
Wall-clock fields (latency, QPS) are machine-dependent and are never
compared — only the deterministic I/O counts gate CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.workloads import ConcurrentLoadGenerator  # noqa: E402
from repro.core.engine import SpatialKeywordEngine  # noqa: E402
from repro.core.ranking import DistanceDecayRanking  # noqa: E402
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator  # noqa: E402
from repro.serve import BatchConfig, QueryService  # noqa: E402
from repro.shard import ShardedEngine  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_PR7.json")

#: Batch front-end configuration the batched passes use.  ``submit_many``
#: flushes deterministically, so the window never fires in the bench.
BATCHING = BatchConfig(window_ms=2.0, max_batch=16)

#: Index kinds x shard counts the full baseline covers.  The ``ranked``
#: workload class is measured only for kinds that can execute it.
FULL_CONFIGS = [
    ("ir2", 1), ("ir2", 4),
    ("rtree", 1), ("rtree", 4),
    ("iio", 1), ("iio", 4),
    ("auto", 1), ("auto", 4),
]
QUICK_CONFIGS = [
    ("ir2", 1), ("ir2", 2), ("rtree", 1), ("iio", 1),
    ("auto", 1), ("auto", 2),
]
RANKED_KINDS = frozenset({"ir2", "mir2", "auto"})

FULL_SCALE = dict(n_objects=1_200, n_queries=48, timed_workers=4)
QUICK_SCALE = dict(n_objects=300, n_queries=16, timed_workers=2)

#: Keyword counts sampled per query: 1-keyword queries hit the Zipf head
#: (common terms, tree-friendly), 3-keyword conjunctions are selective
#: (inverted-index-friendly) — the spread adaptive routing exploits.
KEYWORD_COUNTS = (1, 2, 3)

#: The headline mixed workload.  No ranked slots: every index kind —
#: fixed and adaptive — answers the identical batch.
WORKLOAD_MIX = dict(
    keyword_counts=KEYWORD_COUNTS, k=10, hot_fraction=0.3, hot_pool=6,
    area_fraction=0.2, ranked_fraction=0.0,
)
SEED = 1234


def _corpus(n_objects: int):
    config = DatasetConfig(
        name="service-load",
        n_objects=n_objects,
        vocabulary_size=2_500,
        avg_unique_words=20,
        clusters=6,
        seed=SEED,
    )
    return SpatialTextDatasetGenerator(config).generate()


def _half_distance(objects) -> float:
    """Engine-independent decay scale: 10% of the widest dataset span."""
    dims = objects[0].dims
    spans = [
        max(o.point[d] for o in objects) - min(o.point[d] for o in objects)
        for d in range(dims)
    ]
    return max(max(spans) * 0.1, 1e-9)


def _build_engine(objects, index: str, shards: int, shard_workers: int | None):
    if shards > 1:
        engine = ShardedEngine(n_shards=shards, index=index, workers=shard_workers)
    else:
        engine = SpatialKeywordEngine(index=index)
    engine.add_all(objects)
    engine.build()
    return engine


def _mixed_batch(objects, analyzer, n_queries: int):
    workload = ConcurrentLoadGenerator(objects, analyzer, seed=SEED)
    return workload.mixed_batch(n_queries, **WORKLOAD_MIX)


def _class_batches(objects, analyzer, index: str, n_queries: int):
    """``(class_name, batch)`` pairs, identical across index kinds.

    Each class gets a fresh seeded generator, so every kind answers the
    same queries in the same order; the ``ranked`` class exists only for
    kinds that can execute it.
    """
    batches = [("mixed", _mixed_batch(objects, analyzer, n_queries))]
    point = ConcurrentLoadGenerator(objects, analyzer, seed=SEED + 1)
    batches.append((
        "point",
        point.batch(n_queries, k=10, hot_fraction=0.0,
                    keyword_counts=KEYWORD_COUNTS),
    ))
    area = ConcurrentLoadGenerator(objects, analyzer, seed=SEED + 2)
    batches.append((
        "area",
        [area.area_query(1, 10, extent_fraction=0.1)
         for _ in range(n_queries)],
    ))
    if index in RANKED_KINDS:
        ranked = ConcurrentLoadGenerator(objects, analyzer, seed=SEED + 3)
        ranking = DistanceDecayRanking(half_distance=_half_distance(objects))
        batches.append((
            "ranked",
            [ranked.query(2, 10).with_ranking(ranking)
             for _ in range(n_queries)],
        ))
    return batches


def _io_per_query(stats, n_queries: int) -> dict:
    return {
        "random_reads": stats.io.random_reads / n_queries,
        "sequential_reads": stats.io.sequential_reads / n_queries,
        "total_reads": (
            stats.io.random_reads + stats.io.sequential_reads
        ) / n_queries,
        "objects_loaded": stats.io.objects_loaded / n_queries,
    }


def run_config(objects, index: str, shards: int, scale: dict) -> dict:
    """Measure one (index kind, shard count) cell: metered then timed."""
    n_queries = scale["n_queries"]

    # Pass 1 (metered): single service worker, single shard worker.
    # Every source of thread-schedule nondeterminism is removed, so the
    # I/O counts are reproducible and CI can compare them across runs.
    # One engine serves every workload class; each class runs under a
    # fresh service so its I/O and cache counters are isolated.
    engine = _build_engine(objects, index, shards, shard_workers=1)
    classes = {}
    cache_hit_rate = 0.0
    degraded = 0
    for name, batch in _class_batches(objects, engine.analyzer, index,
                                      n_queries):
        with QueryService(engine, workers=1) as service:
            service.run_batch(batch)
            metered = service.stats()
        classes[name] = _io_per_query(metered, len(batch))
        if name == "mixed":
            cache_hit_rate = metered.cache_hit_rate
            degraded = metered.degraded
    if shards > 1:
        engine.close()

    # Pass 1b (metered, batched): the identical mixed batch through the
    # batch front-end on a fresh engine (same cold-start state as the
    # unbatched metered pass).  Single worker + submit_many grouping ⇒
    # deterministic; shared-session hits land in ``shared_reads`` and
    # cost no device I/O, so total reads per query can only shrink.
    engine = _build_engine(objects, index, shards, shard_workers=1)
    batch = _mixed_batch(objects, engine.analyzer, n_queries)
    with QueryService(engine, workers=1, batching=BATCHING) as service:
        service.run_batch(batch)
        bstats = service.stats()
    if shards > 1:
        engine.close()
    batched_io = _io_per_query(bstats, n_queries)
    batched_io["shared_reads"] = bstats.io.shared_reads / n_queries

    # Pass 2 (timed): concurrent workers over the headline mixed batch,
    # wall-clock latency and QPS — unbatched, then batched.
    engine = _build_engine(objects, index, shards, shard_workers=None)
    batch = _mixed_batch(objects, engine.analyzer, n_queries)
    with QueryService(engine, workers=scale["timed_workers"]) as service:
        t0 = time.perf_counter()
        service.run_batch(batch)
        elapsed = time.perf_counter() - t0
        timed = service.stats()
    if shards > 1:
        engine.close()
    engine = _build_engine(objects, index, shards, shard_workers=None)
    batch = _mixed_batch(objects, engine.analyzer, n_queries)
    with QueryService(
        engine, workers=scale["timed_workers"], batching=BATCHING
    ) as service:
        t0 = time.perf_counter()
        service.run_batch(batch)
        batched_elapsed = time.perf_counter() - t0
    if shards > 1:
        engine.close()
    total_ms = timed.metrics["histograms"]["service.total_ms"]

    return {
        "index": index,
        "shards": shards,
        "queries": n_queries,
        "p50_ms": total_ms["p50"],
        "p95_ms": total_ms["p95"],
        "qps": n_queries / elapsed if elapsed > 0 else 0.0,
        "batched_qps": (
            n_queries / batched_elapsed if batched_elapsed > 0 else 0.0
        ),
        "cache_hit_rate": cache_hit_rate,
        "degraded": degraded,
        "io_per_query": classes["mixed"],
        "batched_io_per_query": batched_io,
        "batches": bstats.batches,
        "coalesced": bstats.coalesced,
        "classes": classes,
    }


def run_mode(configs, scale: dict) -> dict:
    objects = _corpus(scale["n_objects"])
    results = []
    for index, shards in configs:
        label = f"{index} x{shards}"
        t0 = time.perf_counter()
        cell = run_config(objects, index, shards, scale)
        print(
            f"  {label:<10} p50={cell['p50_ms']:8.2f} ms  "
            f"p95={cell['p95_ms']:8.2f} ms  qps={cell['qps']:7.1f}  "
            f"reads/q={cell['io_per_query']['total_reads']:8.1f}  "
            f"batched={cell['batched_io_per_query']['total_reads']:8.1f}  "
            f"hit_rate={cell['cache_hit_rate']:.2f}  "
            f"[{time.perf_counter() - t0:.1f}s]"
        )
        results.append(cell)
    return {
        "n_objects": scale["n_objects"],
        "n_queries": scale["n_queries"],
        "timed_workers": scale["timed_workers"],
        "workload": dict(WORKLOAD_MIX, seed=SEED),
        "configs": results,
    }


def check_regression(current: dict, baseline_path: str, tolerance: float) -> int:
    """Compare quick-mode I/O per query against a committed baseline.

    Returns a process exit code: 0 when every config's total reads per
    query stays within ``tolerance`` x the baseline (and the baseline
    parses), 2 on any regression, 1 when the baseline is unusable.
    """
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 1
    base_quick = baseline.get("quick", {}).get("configs", [])
    base_by_key = {(c["index"], c["shards"]): c for c in base_quick}
    failures = []
    for cell in current["configs"]:
        key = (cell["index"], cell["shards"])
        base = base_by_key.get(key)
        if base is None:
            print(f"note: no baseline entry for {key}, skipping")
            continue
        now = cell["io_per_query"]["total_reads"]
        then = base["io_per_query"]["total_reads"]
        status = "ok"
        if then > 0 and now > then * tolerance:
            status = "REGRESSION"
            failures.append(key)
        print(
            f"  {cell['index']} x{cell['shards']}: {now:.1f} reads/q "
            f"vs baseline {then:.1f} ({status})"
        )
    if failures:
        print(
            f"I/O regression (> {tolerance}x baseline) in: {failures}",
            file=sys.stderr,
        )
        return 2
    return 0


def check_planner(current: dict, tolerance: float) -> int:
    """Gate the adaptive planner against the best fixed kind, per class.

    For every shard count that has an ``auto`` cell, the planner's
    metered reads per query must stay within ``tolerance`` x the
    *cheapest* fixed kind on every workload class both measured.  The
    comparison is within one run, so it is machine-independent.
    Returns 0 when the planner holds everywhere, 2 otherwise.
    """
    by_key = {(c["index"], c["shards"]): c for c in current["configs"]}
    failures = []
    for (index, shards), auto in sorted(by_key.items()):
        if index != "auto":
            continue
        rivals = [
            cell for (kind, s), cell in by_key.items()
            if s == shards and kind != "auto"
        ]
        if not rivals:
            print(f"note: no fixed rival at {shards} shard(s), skipping")
            continue
        for cls, io in auto.get("classes", {}).items():
            costs = {
                cell["index"]: cell["classes"][cls]["total_reads"]
                for cell in rivals
                if cls in cell.get("classes", {})
            }
            if not costs:
                continue
            best_kind = min(costs, key=costs.get)
            best = costs[best_kind]
            now = io["total_reads"]
            ok = now <= best * tolerance + 1e-9
            status = "ok" if ok else "PLANNER REGRESSION"
            print(
                f"  auto x{shards} [{cls}]: {now:.1f} reads/q vs best "
                f"fixed {best_kind}={best:.1f} ({status})"
            )
            if not ok:
                failures.append((shards, cls))
    if failures:
        print(
            f"planner worse than best fixed kind (> {tolerance}x) on: "
            f"{failures}",
            file=sys.stderr,
        )
        return 2
    return 0


def check_batching(current: dict, tolerance: float) -> int:
    """Gate the batch front-end against unbatched execution, per cell.

    On the mixed workload, every config's batched metered reads per
    query must stay within ``tolerance`` x its own unbatched metered
    reads (both measured in this run, so the comparison is
    machine-independent; sharing work can only remove device reads).
    Returns 0 when batching holds everywhere, 2 otherwise.
    """
    failures = []
    for cell in current["configs"]:
        key = (cell["index"], cell["shards"])
        batched = cell.get("batched_io_per_query")
        if batched is None:
            print(f"note: no batched pass for {key}, skipping")
            continue
        now = batched["total_reads"]
        then = cell["io_per_query"]["total_reads"]
        ok = now <= then * tolerance + 1e-9
        status = "ok" if ok else "BATCHING REGRESSION"
        print(
            f"  {cell['index']} x{cell['shards']}: batched {now:.1f} reads/q "
            f"vs unbatched {then:.1f} "
            f"(shared {batched['shared_reads']:.1f}/q, {status})"
        )
        if not ok:
            failures.append(key)
    if failures:
        print(
            f"batched execution costs more device I/O than unbatched "
            f"(> {tolerance}x) in: {failures}",
            file=sys.stderr,
        )
        return 2
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration only")
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default: {DEFAULT_OUT}; "
                             "'-' skips writing)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare quick-mode I/O per query against a "
                             "committed baseline JSON; exit 2 on regression")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed I/O growth factor for --check")
    parser.add_argument("--check-planner", action="store_true",
                        help="gate the adaptive planner's per-class I/O at "
                             "no worse than the best fixed kind in this run")
    parser.add_argument("--planner-tolerance", type=float, default=1.05,
                        help="allowed planner-vs-best-fixed I/O factor for "
                             "--check-planner")
    parser.add_argument("--check-batching", action="store_true",
                        help="gate the batch front-end's metered device "
                             "reads at no worse than unbatched execution "
                             "on the mixed workload in this run")
    parser.add_argument("--batching-tolerance", type=float, default=1.0,
                        help="allowed batched-vs-unbatched I/O factor for "
                             "--check-batching")
    args = parser.parse_args(argv)

    payload = {
        "benchmark": "bench_service_load",
        "seed": SEED,
        "note": (
            "io_per_query comes from a single-worker metered pass and is "
            "deterministic; latency/qps are wall-clock and machine-dependent"
        ),
    }
    if args.quick:
        print("quick mode:")
        quick = run_mode(QUICK_CONFIGS, QUICK_SCALE)
        payload["quick"] = quick
    else:
        print("full mode:")
        payload.update(run_mode(FULL_CONFIGS, FULL_SCALE))
        print("quick mode (CI baseline section):")
        payload["quick"] = run_mode(QUICK_CONFIGS, QUICK_SCALE)

    out = args.out if args.out is not None else DEFAULT_OUT
    if out != "-":
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")

    code = 0
    if args.check:
        code = check_regression(payload["quick"], args.check, args.tolerance)
    if args.check_planner:
        section = payload["quick"] if "quick" in payload else payload
        code = max(code, check_planner(section, args.planner_tolerance))
    if args.check_batching:
        section = payload["quick"] if "quick" in payload else payload
        code = max(code, check_batching(section, args.batching_tolerance))
    return code


if __name__ == "__main__":
    sys.exit(main())
