"""Macro-benchmark: mixed serving load through :class:`QueryService`.

Drives seeded workloads through the full serving stack for several
index kinds — including the cost-based adaptive planner (``auto``) —
and shard counts, and writes a machine-readable baseline
(``BENCH_PR10.json`` at the repo root) from the service's own metrics
snapshot:

* ``p50_ms`` / ``p95_ms`` — end-to-end latency quantiles from the
  ``service.total_ms`` histogram of a multi-worker timed pass over the
  headline *mixed* workload;
* ``qps`` — the timed pass's completed queries over its wall time;
* ``io_per_query`` — block reads and object loads per query from a
  separate single-worker *metered* pass (service workers = 1 **and**
  shard fan-out workers = 1), which makes the counts independent of
  thread scheduling and therefore stable enough for CI to diff;
* ``classes`` — the same metered I/O split by workload class (``mixed``
  / ``point`` / ``area`` and, for ranked-capable kinds, ``ranked``), so
  the adaptive planner can be gated per class against the best fixed
  kind;
* ``cache_hit_rate`` — the result cache's hit fraction on the workload;
* ``batched_io_per_query`` / ``batched_qps`` — the same mixed workload
  replayed through the batch front-end (``submit_many`` grouping,
  duplicate coalescing, one shared-read session per group): device
  reads per query from a deterministic single-worker metered pass, and
  wall-clock QPS from a concurrent timed pass;
* ``capture_replay`` — the query-log subsystem measured end to end: a
  serial pass captures a mixed point/area/ranked workload to a
  structured log, the identical uncaptured pass proves capture costs
  zero device reads, the log replays against several engine
  configurations (every result digest must reproduce exactly — the
  engine's canonical tie-breaks make digests config-independent), and
  timed passes with/without a sampled log record the capture overhead
  on QPS (wall-clock, informational).

Every kind answers **identical batches**: the headline mix varies each
query's keyword count over 1-3 (single common keywords favor the trees,
rare conjunctions favor the inverted index — the regime spread the
planner routes across) and contains no ranked queries, so fixed and
adaptive kinds are comparable query for query.

Run directly (``python benchmarks/bench_service_load.py``) to regenerate
the full baseline, or with ``--quick`` for the small configuration CI's
perf-smoke job uses; ``--check BASELINE`` compares the current quick
numbers against a committed baseline and exits 2 when any config's
total reads per query regressed by more than ``--tolerance`` (default
2x); ``--check-planner`` additionally gates the adaptive planner's
per-class I/O at no worse than the best fixed kind (times
``--planner-tolerance``) within the same run; ``--check-batching``
gates the batch front-end at no more device reads per query than
unbatched execution on the mixed workload, within the same run;
``--check-replay`` gates the query-log subsystem — zero dropped
records, zero extra metered device reads from capture, and every
replay reproducing every recorded digest with replayed I/O inside the
threshold.  Wall-clock fields (latency, QPS) are machine-dependent and
are never compared — only the deterministic I/O counts and digest
diffs gate CI.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.workloads import ConcurrentLoadGenerator  # noqa: E402
from repro.core.engine import SpatialKeywordEngine  # noqa: E402
from repro.core.ranking import DistanceDecayRanking  # noqa: E402
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator  # noqa: E402
from repro.obs.querylog import read_query_log  # noqa: E402
from repro.obs.replay import replay_query_log  # noqa: E402
from repro.serve import BatchConfig, QueryService  # noqa: E402
from repro.shard import ShardedEngine  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_PR10.json")

#: Batch front-end configuration the batched passes use.  ``submit_many``
#: flushes deterministically, so the window never fires in the bench.
BATCHING = BatchConfig(window_ms=2.0, max_batch=16)

#: Index kinds x shard counts the full baseline covers.  The ``ranked``
#: workload class is measured only for kinds that can execute it.
FULL_CONFIGS = [
    ("ir2", 1), ("ir2", 4),
    ("rtree", 1), ("rtree", 4),
    ("iio", 1), ("iio", 4),
    ("auto", 1), ("auto", 4),
]
QUICK_CONFIGS = [
    ("ir2", 1), ("ir2", 2), ("rtree", 1), ("iio", 1),
    ("auto", 1), ("auto", 2),
]
RANKED_KINDS = frozenset({"ir2", "mir2", "auto"})

FULL_SCALE = dict(n_objects=1_200, n_queries=48, timed_workers=4,
                  replay_queries=520)
QUICK_SCALE = dict(n_objects=300, n_queries=16, timed_workers=2,
                   replay_queries=160)

#: Keyword counts sampled per query: 1-keyword queries hit the Zipf head
#: (common terms, tree-friendly), 3-keyword conjunctions are selective
#: (inverted-index-friendly) — the spread adaptive routing exploits.
KEYWORD_COUNTS = (1, 2, 3)

#: The headline mixed workload.  No ranked slots: every index kind —
#: fixed and adaptive — answers the identical batch.
WORKLOAD_MIX = dict(
    keyword_counts=KEYWORD_COUNTS, k=10, hot_fraction=0.3, hot_pool=6,
    area_fraction=0.2, ranked_fraction=0.0,
)
SEED = 1234

#: The capture/replay section's workload *does* include ranked queries:
#: the log has to exercise every query shape the record schema carries.
REPLAY_MIX = dict(
    keyword_counts=KEYWORD_COUNTS, k=10, hot_fraction=0.3, hot_pool=6,
    area_fraction=0.2, ranked_fraction=0.2,
)

#: The configuration the query log is captured on, and the
#: configurations it replays against.  Digests are config-independent
#: (canonical ``(distance, oid)`` tie-breaks survive any shard layout),
#: so a log captured on two shards must reproduce exactly on one shard
#: and through the batch front-end alike.
CAPTURE_CONFIG = ("ir2", 2)
REPLAY_CONFIGS = [
    ("ir2", 1, False),
    ("ir2", 2, False),
    ("ir2", 2, True),
]

#: Sampling rate the timed capture-overhead pass uses (1-in-N).
CAPTURE_SAMPLE = 4

#: Repetitions per timed capture-overhead variant (best run kept).
TIMED_REPS = 3


def _corpus(n_objects: int):
    config = DatasetConfig(
        name="service-load",
        n_objects=n_objects,
        vocabulary_size=2_500,
        avg_unique_words=20,
        clusters=6,
        seed=SEED,
    )
    return SpatialTextDatasetGenerator(config).generate()


def _half_distance(objects) -> float:
    """Engine-independent decay scale: 10% of the widest dataset span."""
    dims = objects[0].dims
    spans = [
        max(o.point[d] for o in objects) - min(o.point[d] for o in objects)
        for d in range(dims)
    ]
    return max(max(spans) * 0.1, 1e-9)


def _build_engine(objects, index: str, shards: int, shard_workers: int | None):
    if shards > 1:
        engine = ShardedEngine(n_shards=shards, index=index, workers=shard_workers)
    else:
        engine = SpatialKeywordEngine(index=index)
    engine.add_all(objects)
    engine.build()
    return engine


def _mixed_batch(objects, analyzer, n_queries: int):
    workload = ConcurrentLoadGenerator(objects, analyzer, seed=SEED)
    return workload.mixed_batch(n_queries, **WORKLOAD_MIX)


def _class_batches(objects, analyzer, index: str, n_queries: int):
    """``(class_name, batch)`` pairs, identical across index kinds.

    Each class gets a fresh seeded generator, so every kind answers the
    same queries in the same order; the ``ranked`` class exists only for
    kinds that can execute it.
    """
    batches = [("mixed", _mixed_batch(objects, analyzer, n_queries))]
    point = ConcurrentLoadGenerator(objects, analyzer, seed=SEED + 1)
    batches.append((
        "point",
        point.batch(n_queries, k=10, hot_fraction=0.0,
                    keyword_counts=KEYWORD_COUNTS),
    ))
    area = ConcurrentLoadGenerator(objects, analyzer, seed=SEED + 2)
    batches.append((
        "area",
        [area.area_query(1, 10, extent_fraction=0.1)
         for _ in range(n_queries)],
    ))
    if index in RANKED_KINDS:
        ranked = ConcurrentLoadGenerator(objects, analyzer, seed=SEED + 3)
        ranking = DistanceDecayRanking(half_distance=_half_distance(objects))
        batches.append((
            "ranked",
            [ranked.query(2, 10).with_ranking(ranking)
             for _ in range(n_queries)],
        ))
    return batches


def _io_per_query(stats, n_queries: int) -> dict:
    return {
        "random_reads": stats.io.random_reads / n_queries,
        "sequential_reads": stats.io.sequential_reads / n_queries,
        "total_reads": (
            stats.io.random_reads + stats.io.sequential_reads
        ) / n_queries,
        "objects_loaded": stats.io.objects_loaded / n_queries,
    }


def run_config(objects, index: str, shards: int, scale: dict) -> dict:
    """Measure one (index kind, shard count) cell: metered then timed."""
    n_queries = scale["n_queries"]

    # Pass 1 (metered): single service worker, single shard worker.
    # Every source of thread-schedule nondeterminism is removed, so the
    # I/O counts are reproducible and CI can compare them across runs.
    # One engine serves every workload class; each class runs under a
    # fresh service so its I/O and cache counters are isolated.
    engine = _build_engine(objects, index, shards, shard_workers=1)
    classes = {}
    cache_hit_rate = 0.0
    degraded = 0
    for name, batch in _class_batches(objects, engine.analyzer, index,
                                      n_queries):
        with QueryService(engine, workers=1) as service:
            service.run_batch(batch)
            metered = service.stats()
        classes[name] = _io_per_query(metered, len(batch))
        if name == "mixed":
            cache_hit_rate = metered.cache_hit_rate
            degraded = metered.degraded
    if shards > 1:
        engine.close()

    # Pass 1b (metered, batched): the identical mixed batch through the
    # batch front-end on a fresh engine (same cold-start state as the
    # unbatched metered pass).  Single worker + submit_many grouping ⇒
    # deterministic; shared-session hits land in ``shared_reads`` and
    # cost no device I/O, so total reads per query can only shrink.
    engine = _build_engine(objects, index, shards, shard_workers=1)
    batch = _mixed_batch(objects, engine.analyzer, n_queries)
    with QueryService(engine, workers=1, batching=BATCHING) as service:
        service.run_batch(batch)
        bstats = service.stats()
    if shards > 1:
        engine.close()
    batched_io = _io_per_query(bstats, n_queries)
    batched_io["shared_reads"] = bstats.io.shared_reads / n_queries

    # Pass 2 (timed): concurrent workers over the headline mixed batch,
    # wall-clock latency and QPS — unbatched, then batched.
    engine = _build_engine(objects, index, shards, shard_workers=None)
    batch = _mixed_batch(objects, engine.analyzer, n_queries)
    with QueryService(engine, workers=scale["timed_workers"]) as service:
        t0 = time.perf_counter()
        service.run_batch(batch)
        elapsed = time.perf_counter() - t0
        timed = service.stats()
    if shards > 1:
        engine.close()
    engine = _build_engine(objects, index, shards, shard_workers=None)
    batch = _mixed_batch(objects, engine.analyzer, n_queries)
    with QueryService(
        engine, workers=scale["timed_workers"], batching=BATCHING
    ) as service:
        t0 = time.perf_counter()
        service.run_batch(batch)
        batched_elapsed = time.perf_counter() - t0
    if shards > 1:
        engine.close()
    total_ms = timed.metrics["histograms"]["service.total_ms"]

    return {
        "index": index,
        "shards": shards,
        "queries": n_queries,
        "p50_ms": total_ms["p50"],
        "p95_ms": total_ms["p95"],
        "qps": n_queries / elapsed if elapsed > 0 else 0.0,
        "batched_qps": (
            n_queries / batched_elapsed if batched_elapsed > 0 else 0.0
        ),
        "cache_hit_rate": cache_hit_rate,
        "degraded": degraded,
        "io_per_query": classes["mixed"],
        "batched_io_per_query": batched_io,
        "batches": bstats.batches,
        "coalesced": bstats.coalesced,
        "classes": classes,
    }


def _replay_batch(objects, analyzer, n_queries: int):
    workload = ConcurrentLoadGenerator(objects, analyzer, seed=SEED + 7)
    ranking = DistanceDecayRanking(half_distance=_half_distance(objects))
    return workload.mixed_batch(n_queries, ranking=ranking, **REPLAY_MIX)


def _total_reads(stats) -> int:
    return stats.io.random_reads + stats.io.sequential_reads


def run_capture_replay(objects, scale: dict) -> dict:
    """Measure the query-log subsystem: capture cost, then replay fidelity.

    Four passes over the same seeded point/area/ranked mix:

    1. serial metered, uncaptured — the device-read baseline;
    2. serial metered with an unsampled query log — writes the log the
       replays consume; its metered reads must equal pass 1's exactly
       (capture happens after the answer and touches no device);
    3. replays of the captured log against every ``REPLAY_CONFIGS``
       entry — every recorded digest must reproduce exactly, and the
       replayed device reads per query must stay inside the replay
       module's I/O threshold;
    4. timed concurrent passes with and without a 1-in-N sampled log —
       the wall-clock capture overhead on QPS (informational; only the
       deterministic pieces above gate CI).
    """
    n_queries = scale["replay_queries"]
    index, shards = CAPTURE_CONFIG
    log_dir = tempfile.mkdtemp(prefix="bench-querylog-")
    log_path = os.path.join(log_dir, "queries.jsonl")
    try:
        # Pass 1 (metered, uncaptured).
        engine = _build_engine(objects, index, shards, shard_workers=1)
        batch = _replay_batch(objects, engine.analyzer, n_queries)
        with QueryService(engine, workers=1) as service:
            service.run_batch(batch)
            plain = service.stats()
        if shards > 1:
            engine.close()

        # Pass 2 (metered, captured, sample_every=1).
        engine = _build_engine(objects, index, shards, shard_workers=1)
        batch = _replay_batch(objects, engine.analyzer, n_queries)
        with QueryService(engine, workers=1, query_log=log_path) as service:
            service.run_batch(batch)
            captured = service.stats()
            writer = service.query_log
        if shards > 1:
            engine.close()
        capture = {
            "seen": writer.seen,
            "sampled": writer.sampled,
            "dropped": writer.dropped,
            "written": writer.written,
            "rotations": writer.rotations,
            "metered_reads_uncaptured": _total_reads(plain),
            "metered_reads_captured": _total_reads(captured),
            "reads_delta": _total_reads(captured) - _total_reads(plain),
        }

        # Pass 3: replay the log against every target configuration.
        records = read_query_log(log_path)
        capture["records"] = len(records)
        replays = []
        for r_index, r_shards, r_batched in REPLAY_CONFIGS:
            engine = _build_engine(objects, r_index, r_shards,
                                   shard_workers=1)
            report = replay_query_log(records, engine, workers=1,
                                      batched=r_batched)
            if r_shards > 1:
                engine.close()
            replays.append({
                "index": r_index,
                "shards": r_shards,
                "batched": r_batched,
                "replayed": report["replayed"],
                "skipped": report["skipped"],
                "mismatch_count": report["mismatch_count"],
                "io_ratio": report["io"]["ratio"],
                "io_threshold": report["io"]["threshold"],
                "ok": report["ok"],
            })

        # Pass 4 (timed): capture overhead on QPS under a sampled log.
        # Wall clock is noisy at bench scale, so each variant runs
        # ``TIMED_REPS`` times on a fresh engine and keeps its best run.
        def timed_qps(**service_kwargs) -> float:
            best = 0.0
            for _ in range(TIMED_REPS):
                rep_engine = _build_engine(objects, index, shards,
                                           shard_workers=None)
                rep_batch = _replay_batch(objects, rep_engine.analyzer,
                                          n_queries)
                with QueryService(
                    rep_engine, workers=scale["timed_workers"],
                    **service_kwargs,
                ) as service:
                    t0 = time.perf_counter()
                    service.run_batch(rep_batch)
                    elapsed = time.perf_counter() - t0
                if shards > 1:
                    rep_engine.close()
                if elapsed > 0:
                    best = max(best, n_queries / elapsed)
            return best

        sampled_path = os.path.join(log_dir, "sampled.jsonl")
        base_qps = timed_qps()
        cap_qps = timed_qps(query_log=sampled_path,
                            query_log_sample=CAPTURE_SAMPLE)
        overhead_pct = (
            (base_qps - cap_qps) / base_qps * 100.0 if base_qps > 0 else 0.0
        )
    finally:
        shutil.rmtree(log_dir, ignore_errors=True)

    return {
        "config": {"index": index, "shards": shards},
        "queries": n_queries,
        "workload": dict(REPLAY_MIX, seed=SEED + 7, ranking="distance_decay"),
        "capture": capture,
        "replays": replays,
        "overhead": {
            "sample_every": CAPTURE_SAMPLE,
            "uncaptured_qps": base_qps,
            "captured_qps": cap_qps,
            "qps_overhead_pct": overhead_pct,
        },
    }


def run_mode(configs, scale: dict) -> dict:
    objects = _corpus(scale["n_objects"])
    results = []
    for index, shards in configs:
        label = f"{index} x{shards}"
        t0 = time.perf_counter()
        cell = run_config(objects, index, shards, scale)
        print(
            f"  {label:<10} p50={cell['p50_ms']:8.2f} ms  "
            f"p95={cell['p95_ms']:8.2f} ms  qps={cell['qps']:7.1f}  "
            f"reads/q={cell['io_per_query']['total_reads']:8.1f}  "
            f"batched={cell['batched_io_per_query']['total_reads']:8.1f}  "
            f"hit_rate={cell['cache_hit_rate']:.2f}  "
            f"[{time.perf_counter() - t0:.1f}s]"
        )
        results.append(cell)
    t0 = time.perf_counter()
    capture_replay = run_capture_replay(objects, scale)
    mismatches = sum(r["mismatch_count"] for r in capture_replay["replays"])
    print(
        f"  capture/replay: {capture_replay['capture']['records']} records, "
        f"reads_delta={capture_replay['capture']['reads_delta']}, "
        f"{len(capture_replay['replays'])} replays, "
        f"mismatches={mismatches}, "
        f"qps_overhead={capture_replay['overhead']['qps_overhead_pct']:.1f}%  "
        f"[{time.perf_counter() - t0:.1f}s]"
    )
    return {
        "n_objects": scale["n_objects"],
        "n_queries": scale["n_queries"],
        "timed_workers": scale["timed_workers"],
        "workload": dict(WORKLOAD_MIX, seed=SEED),
        "configs": results,
        "capture_replay": capture_replay,
    }


def check_regression(current: dict, baseline_path: str, tolerance: float) -> int:
    """Compare quick-mode I/O per query against a committed baseline.

    Returns a process exit code: 0 when every config's total reads per
    query stays within ``tolerance`` x the baseline (and the baseline
    parses), 2 on any regression, 1 when the baseline is unusable.
    """
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 1
    base_quick = baseline.get("quick", {}).get("configs", [])
    base_by_key = {(c["index"], c["shards"]): c for c in base_quick}
    failures = []
    for cell in current["configs"]:
        key = (cell["index"], cell["shards"])
        base = base_by_key.get(key)
        if base is None:
            print(f"note: no baseline entry for {key}, skipping")
            continue
        now = cell["io_per_query"]["total_reads"]
        then = base["io_per_query"]["total_reads"]
        status = "ok"
        if then > 0 and now > then * tolerance:
            status = "REGRESSION"
            failures.append(key)
        print(
            f"  {cell['index']} x{cell['shards']}: {now:.1f} reads/q "
            f"vs baseline {then:.1f} ({status})"
        )
    if failures:
        print(
            f"I/O regression (> {tolerance}x baseline) in: {failures}",
            file=sys.stderr,
        )
        return 2
    return 0


def check_planner(current: dict, tolerance: float) -> int:
    """Gate the adaptive planner against the best fixed kind, per class.

    For every shard count that has an ``auto`` cell, the planner's
    metered reads per query must stay within ``tolerance`` x the
    *cheapest* fixed kind on every workload class both measured.  The
    comparison is within one run, so it is machine-independent.
    Returns 0 when the planner holds everywhere, 2 otherwise.
    """
    by_key = {(c["index"], c["shards"]): c for c in current["configs"]}
    failures = []
    for (index, shards), auto in sorted(by_key.items()):
        if index != "auto":
            continue
        rivals = [
            cell for (kind, s), cell in by_key.items()
            if s == shards and kind != "auto"
        ]
        if not rivals:
            print(f"note: no fixed rival at {shards} shard(s), skipping")
            continue
        for cls, io in auto.get("classes", {}).items():
            costs = {
                cell["index"]: cell["classes"][cls]["total_reads"]
                for cell in rivals
                if cls in cell.get("classes", {})
            }
            if not costs:
                continue
            best_kind = min(costs, key=costs.get)
            best = costs[best_kind]
            now = io["total_reads"]
            ok = now <= best * tolerance + 1e-9
            status = "ok" if ok else "PLANNER REGRESSION"
            print(
                f"  auto x{shards} [{cls}]: {now:.1f} reads/q vs best "
                f"fixed {best_kind}={best:.1f} ({status})"
            )
            if not ok:
                failures.append((shards, cls))
    if failures:
        print(
            f"planner worse than best fixed kind (> {tolerance}x) on: "
            f"{failures}",
            file=sys.stderr,
        )
        return 2
    return 0


def check_batching(current: dict, tolerance: float) -> int:
    """Gate the batch front-end against unbatched execution, per cell.

    On the mixed workload, every config's batched metered reads per
    query must stay within ``tolerance`` x its own unbatched metered
    reads (both measured in this run, so the comparison is
    machine-independent; sharing work can only remove device reads).
    Returns 0 when batching holds everywhere, 2 otherwise.
    """
    failures = []
    for cell in current["configs"]:
        key = (cell["index"], cell["shards"])
        batched = cell.get("batched_io_per_query")
        if batched is None:
            print(f"note: no batched pass for {key}, skipping")
            continue
        now = batched["total_reads"]
        then = cell["io_per_query"]["total_reads"]
        ok = now <= then * tolerance + 1e-9
        status = "ok" if ok else "BATCHING REGRESSION"
        print(
            f"  {cell['index']} x{cell['shards']}: batched {now:.1f} reads/q "
            f"vs unbatched {then:.1f} "
            f"(shared {batched['shared_reads']:.1f}/q, {status})"
        )
        if not ok:
            failures.append(key)
    if failures:
        print(
            f"batched execution costs more device I/O than unbatched "
            f"(> {tolerance}x) in: {failures}",
            file=sys.stderr,
        )
        return 2
    return 0


def check_replay(current: dict) -> int:
    """Gate the query-log subsystem's deterministic invariants.

    All three comparisons happen within this run, so the gate is
    machine-independent:

    * capture lost no records (bounded queue never overflowed) and
      added zero metered device reads over the uncaptured pass;
    * every replay configuration reproduced every recorded result
      digest exactly (answers are config-independent by construction);
    * every replay's device reads per query stayed inside the replay
      module's I/O threshold relative to the recorded cost.

    Returns 0 when everything holds, 2 otherwise.
    """
    section = current.get("capture_replay")
    if section is None:
        print("no capture_replay section in this run", file=sys.stderr)
        return 1
    failures = []
    capture = section["capture"]
    cap_ok = capture["dropped"] == 0 and capture["reads_delta"] == 0
    print(
        f"  capture: {capture['records']} records "
        f"({capture['dropped']} dropped), "
        f"reads {capture['metered_reads_captured']} captured vs "
        f"{capture['metered_reads_uncaptured']} uncaptured "
        f"({'ok' if cap_ok else 'CAPTURE REGRESSION'})"
    )
    if not cap_ok:
        failures.append("capture")
    for rep in section["replays"]:
        label = (
            f"{rep['index']} x{rep['shards']}"
            + (" batched" if rep["batched"] else "")
        )
        ok = rep["ok"] and rep["mismatch_count"] == 0
        print(
            f"  replay {label}: {rep['replayed']} replayed, "
            f"{rep['mismatch_count']} mismatches, "
            f"io ratio {rep['io_ratio']:.3f} "
            f"({'ok' if ok else 'REPLAY REGRESSION'})"
        )
        if not ok:
            failures.append(label)
    if failures:
        print(f"query-log capture/replay gate failed: {failures}",
              file=sys.stderr)
        return 2
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration only")
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default: {DEFAULT_OUT}; "
                             "'-' skips writing)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare quick-mode I/O per query against a "
                             "committed baseline JSON; exit 2 on regression")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed I/O growth factor for --check")
    parser.add_argument("--check-planner", action="store_true",
                        help="gate the adaptive planner's per-class I/O at "
                             "no worse than the best fixed kind in this run")
    parser.add_argument("--planner-tolerance", type=float, default=1.05,
                        help="allowed planner-vs-best-fixed I/O factor for "
                             "--check-planner")
    parser.add_argument("--check-batching", action="store_true",
                        help="gate the batch front-end's metered device "
                             "reads at no worse than unbatched execution "
                             "on the mixed workload in this run")
    parser.add_argument("--batching-tolerance", type=float, default=1.0,
                        help="allowed batched-vs-unbatched I/O factor for "
                             "--check-batching")
    parser.add_argument("--check-replay", action="store_true",
                        help="gate query-log capture at zero dropped records "
                             "and zero extra device reads, and every replay "
                             "at zero digest mismatches in this run")
    args = parser.parse_args(argv)

    payload = {
        "benchmark": "bench_service_load",
        "seed": SEED,
        "note": (
            "io_per_query comes from a single-worker metered pass and is "
            "deterministic; latency/qps are wall-clock and machine-dependent"
        ),
    }
    if args.quick:
        print("quick mode:")
        quick = run_mode(QUICK_CONFIGS, QUICK_SCALE)
        payload["quick"] = quick
    else:
        print("full mode:")
        payload.update(run_mode(FULL_CONFIGS, FULL_SCALE))
        print("quick mode (CI baseline section):")
        payload["quick"] = run_mode(QUICK_CONFIGS, QUICK_SCALE)

    out = args.out if args.out is not None else DEFAULT_OUT
    if out != "-":
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")

    code = 0
    if args.check:
        code = check_regression(payload["quick"], args.check, args.tolerance)
    if args.check_planner:
        section = payload["quick"] if "quick" in payload else payload
        code = max(code, check_planner(section, args.planner_tolerance))
    if args.check_batching:
        section = payload["quick"] if "quick" in payload else payload
        code = max(code, check_batching(section, args.batching_tolerance))
    if args.check_replay:
        section = payload["quick"] if "quick" in payload else payload
        code = max(code, check_replay(section))
    return code


if __name__ == "__main__":
    sys.exit(main())
