"""Macro-benchmark: mixed serving load through :class:`QueryService`.

Drives one seeded, mixed workload — hot repeats, cold point queries,
area queries, and (where the index supports them) ranked queries —
through the full serving stack for several index kinds and shard
counts, and writes a machine-readable baseline (``BENCH_PR4.json`` at
the repo root) from the service's own metrics snapshot:

* ``p50_ms`` / ``p95_ms`` — end-to-end latency quantiles from the
  ``service.total_ms`` histogram of a multi-worker timed pass;
* ``qps`` — the timed pass's completed queries over its wall time;
* ``io_per_query`` — block reads and object loads per query from a
  separate single-worker *metered* pass (service workers = 1 **and**
  shard fan-out workers = 1), which makes the counts independent of
  thread scheduling and therefore stable enough for CI to diff;
* ``cache_hit_rate`` — the result cache's hit fraction on the workload.

Run directly (``python benchmarks/bench_service_load.py``) to regenerate
the full baseline, or with ``--quick`` for the small configuration CI's
perf-smoke job uses; ``--check BASELINE`` compares the current quick
numbers against a committed baseline and exits 2 when any config's
total reads per query regressed by more than ``--tolerance`` (default
2x).  Wall-clock fields (latency, QPS) are machine-dependent and are
never compared — only the deterministic I/O counts gate CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.workloads import ConcurrentLoadGenerator  # noqa: E402
from repro.core.engine import SpatialKeywordEngine  # noqa: E402
from repro.core.ranking import DistanceDecayRanking  # noqa: E402
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator  # noqa: E402
from repro.serve import QueryService  # noqa: E402
from repro.shard import ShardedEngine  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_PR4.json")

#: Index kinds x shard counts the full baseline covers.  Ranked queries
#: are injected only for kinds whose index implements ``execute_ranked``.
FULL_CONFIGS = [
    ("ir2", 1), ("ir2", 4),
    ("rtree", 1), ("rtree", 4),
    ("iio", 1), ("iio", 4),
]
QUICK_CONFIGS = [("ir2", 1), ("ir2", 2), ("rtree", 1), ("iio", 1)]
RANKED_KINDS = frozenset({"ir2", "mir2"})

FULL_SCALE = dict(n_objects=1_200, n_queries=48, timed_workers=4)
QUICK_SCALE = dict(n_objects=300, n_queries=16, timed_workers=2)

WORKLOAD_MIX = dict(
    num_keywords=2, k=10, hot_fraction=0.3, hot_pool=6,
    area_fraction=0.2, ranked_fraction=0.2,
)
SEED = 1234


def _corpus(n_objects: int):
    config = DatasetConfig(
        name="service-load",
        n_objects=n_objects,
        vocabulary_size=2_500,
        avg_unique_words=20,
        clusters=6,
        seed=SEED,
    )
    return SpatialTextDatasetGenerator(config).generate()


def _half_distance(objects) -> float:
    """Engine-independent decay scale: 10% of the widest dataset span."""
    dims = objects[0].dims
    spans = [
        max(o.point[d] for o in objects) - min(o.point[d] for o in objects)
        for d in range(dims)
    ]
    return max(max(spans) * 0.1, 1e-9)


def _build_engine(objects, index: str, shards: int, shard_workers: int | None):
    if shards > 1:
        engine = ShardedEngine(n_shards=shards, index=index, workers=shard_workers)
    else:
        engine = SpatialKeywordEngine(index=index)
    engine.add_all(objects)
    engine.build()
    return engine


def _batch(objects, analyzer, index: str, n_queries: int):
    workload = ConcurrentLoadGenerator(objects, analyzer, seed=SEED)
    ranking = (
        DistanceDecayRanking(half_distance=_half_distance(objects))
        if index in RANKED_KINDS
        else None
    )
    mix = dict(WORKLOAD_MIX)
    if ranking is None:
        mix["ranked_fraction"] = 0.0
    return workload.mixed_batch(n_queries, ranking=ranking, **mix)


def run_config(objects, index: str, shards: int, scale: dict) -> dict:
    """Measure one (index kind, shard count) cell: metered then timed."""
    n_queries = scale["n_queries"]

    # Pass 1 (metered): single service worker, single shard worker.
    # Every source of thread-schedule nondeterminism is removed, so the
    # I/O counts are reproducible and CI can compare them across runs.
    engine = _build_engine(objects, index, shards, shard_workers=1)
    batch = _batch(objects, engine.analyzer, index, n_queries)
    with QueryService(engine, workers=1) as service:
        service.run_batch(batch)
        metered = service.stats()
    if shards > 1:
        engine.close()
    io_per_query = {
        "random_reads": metered.io.random_reads / n_queries,
        "sequential_reads": metered.io.sequential_reads / n_queries,
        "total_reads": (
            metered.io.random_reads + metered.io.sequential_reads
        ) / n_queries,
        "objects_loaded": metered.io.objects_loaded / n_queries,
    }

    # Pass 2 (timed): concurrent workers, wall-clock latency and QPS.
    engine = _build_engine(objects, index, shards, shard_workers=None)
    batch = _batch(objects, engine.analyzer, index, n_queries)
    with QueryService(engine, workers=scale["timed_workers"]) as service:
        t0 = time.perf_counter()
        service.run_batch(batch)
        elapsed = time.perf_counter() - t0
        timed = service.stats()
    if shards > 1:
        engine.close()
    total_ms = timed.metrics["histograms"]["service.total_ms"]

    return {
        "index": index,
        "shards": shards,
        "queries": n_queries,
        "p50_ms": total_ms["p50"],
        "p95_ms": total_ms["p95"],
        "qps": n_queries / elapsed if elapsed > 0 else 0.0,
        "cache_hit_rate": metered.cache_hit_rate,
        "degraded": metered.degraded,
        "io_per_query": io_per_query,
    }


def run_mode(configs, scale: dict) -> dict:
    objects = _corpus(scale["n_objects"])
    results = []
    for index, shards in configs:
        label = f"{index} x{shards}"
        t0 = time.perf_counter()
        cell = run_config(objects, index, shards, scale)
        print(
            f"  {label:<10} p50={cell['p50_ms']:8.2f} ms  "
            f"p95={cell['p95_ms']:8.2f} ms  qps={cell['qps']:7.1f}  "
            f"reads/q={cell['io_per_query']['total_reads']:8.1f}  "
            f"hit_rate={cell['cache_hit_rate']:.2f}  "
            f"[{time.perf_counter() - t0:.1f}s]"
        )
        results.append(cell)
    return {
        "n_objects": scale["n_objects"],
        "n_queries": scale["n_queries"],
        "timed_workers": scale["timed_workers"],
        "workload": dict(WORKLOAD_MIX, seed=SEED),
        "configs": results,
    }


def check_regression(current: dict, baseline_path: str, tolerance: float) -> int:
    """Compare quick-mode I/O per query against a committed baseline.

    Returns a process exit code: 0 when every config's total reads per
    query stays within ``tolerance`` x the baseline (and the baseline
    parses), 2 on any regression, 1 when the baseline is unusable.
    """
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
        return 1
    base_quick = baseline.get("quick", {}).get("configs", [])
    base_by_key = {(c["index"], c["shards"]): c for c in base_quick}
    failures = []
    for cell in current["configs"]:
        key = (cell["index"], cell["shards"])
        base = base_by_key.get(key)
        if base is None:
            print(f"note: no baseline entry for {key}, skipping")
            continue
        now = cell["io_per_query"]["total_reads"]
        then = base["io_per_query"]["total_reads"]
        status = "ok"
        if then > 0 and now > then * tolerance:
            status = "REGRESSION"
            failures.append(key)
        print(
            f"  {cell['index']} x{cell['shards']}: {now:.1f} reads/q "
            f"vs baseline {then:.1f} ({status})"
        )
    if failures:
        print(
            f"I/O regression (> {tolerance}x baseline) in: {failures}",
            file=sys.stderr,
        )
        return 2
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration only")
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default: {DEFAULT_OUT}; "
                             "'-' skips writing)")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare quick-mode I/O per query against a "
                             "committed baseline JSON; exit 2 on regression")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed I/O growth factor for --check")
    args = parser.parse_args(argv)

    payload = {
        "benchmark": "bench_service_load",
        "seed": SEED,
        "note": (
            "io_per_query comes from a single-worker metered pass and is "
            "deterministic; latency/qps are wall-clock and machine-dependent"
        ),
    }
    if args.quick:
        print("quick mode:")
        quick = run_mode(QUICK_CONFIGS, QUICK_SCALE)
        payload["quick"] = quick
    else:
        print("full mode:")
        payload.update(run_mode(FULL_CONFIGS, FULL_SCALE))
        print("quick mode (CI baseline section):")
        payload["quick"] = run_mode(QUICK_CONFIGS, QUICK_SCALE)

    out = args.out if args.out is not None else DEFAULT_OUT
    if out != "-":
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {out}")

    if args.check:
        return check_regression(payload["quick"], args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
