"""Figure 13 — varying the number of query keywords, Restaurants dataset.

Paper setup: k=10, 8-byte signatures, 1-5 keywords.  With short documents
the conjunction empties quickly, so IIO improves steeply with keyword
count while the R-Tree baseline must walk ever farther to find k matches.
"""

from __future__ import annotations

import pytest

from conftest import emit_sweep
from repro.bench import ALGORITHMS, queries_per_point, run_sweep
from repro.bench.workloads import truncate_keywords

KEYWORD_COUNTS = (1, 2, 3, 4, 5)
K = 10


@pytest.fixture(scope="module")
def sweep(restaurants):
    base = restaurants.workload.queries(queries_per_point(), max(KEYWORD_COUNTS), K)
    result = run_sweep(
        restaurants,
        "Figure 13 (Restaurants): vary #keywords, k=10, 8-byte signatures",
        "keywords",
        KEYWORD_COUNTS,
        lambda m: truncate_keywords(base, m),
        algorithms=ALGORITHMS,
    )
    emit_sweep("fig13_vary_keywords_restaurants", result)
    return result


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig13_query_wallclock(benchmark, restaurants, sweep, algorithm):
    """Wall-clock time of a 2-keyword query batch per algorithm."""
    base = restaurants.workload.queries(queries_per_point(), max(KEYWORD_COUNTS), K)
    queries = truncate_keywords(base, 2)
    benchmark.pedantic(
        lambda: restaurants.run_queries(algorithm, queries), rounds=3, iterations=1
    )


def test_fig13_shape_iio_improves_with_keywords(restaurants, sweep):
    """IIO inspects no more objects at 5 keywords than at 1."""
    iio = sweep.table("object_accesses").column("IIO")
    assert iio[-1] <= iio[0]
