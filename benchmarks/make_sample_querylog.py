"""Regenerate ``benchmarks/data/sample_querylog.jsonl``.

CI's perf-smoke job replays this committed log against the engine it
builds for the trace step (``generate --dataset hotels --scale 0.01``
then ``build --index ir2 --signature-bytes 4 --shards 2``) and fails on
any digest mismatch.  The log must therefore be captured against an
engine built by those *exact same CLI steps* — this script runs them in
a scratch directory, loads the persisted engine back, and drives a
seeded mixed point/area/ranked workload through a serial
:class:`~repro.serve.QueryService` with an unsampled query log.

Re-run it (``python benchmarks/make_sample_querylog.py``) only when the
record schema, the engine's answer order, or the CI build flags change;
the output is deterministic, so an unchanged stack reproduces the
committed file byte for byte apart from wall-clock latency fields.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.workloads import ConcurrentLoadGenerator  # noqa: E402
from repro.cli import main as repro_main  # noqa: E402
from repro.core.ranking import DistanceDecayRanking  # noqa: E402
from repro.persist import load_engine  # noqa: E402
from repro.serve import QueryService  # noqa: E402

OUT = os.path.join(REPO_ROOT, "benchmarks", "data", "sample_querylog.jsonl")

#: Workload shape: every record kind the schema carries (point, area,
#: ranked, duplicate hot queries for cache-hit records).
N_QUERIES = 64
SEED = 4242


def main() -> int:
    scratch = tempfile.mkdtemp(prefix="sample-querylog-")
    try:
        hotels = os.path.join(scratch, "hotels.tsv")
        engine_dir = os.path.join(scratch, "engine-dir")
        # The same two CLI steps CI's perf-smoke job runs.
        assert repro_main([
            "generate", "--dataset", "hotels", "--scale", "0.01",
            "--out", hotels,
        ]) == 0
        assert repro_main([
            "build", "--data", hotels, "--out", engine_dir,
            "--index", "ir2", "--signature-bytes", "4", "--shards", "2",
        ]) == 0

        engine = load_engine(engine_dir)
        objects = list(engine.objects())
        workload = ConcurrentLoadGenerator(objects, engine.analyzer,
                                           seed=SEED)
        spans = [
            max(o.point[d] for o in objects) - min(o.point[d] for o in objects)
            for d in range(objects[0].dims)
        ]
        ranking = DistanceDecayRanking(half_distance=max(spans) * 0.1)
        batch = workload.mixed_batch(
            N_QUERIES, k=10, hot_fraction=0.3, hot_pool=6,
            area_fraction=0.2, ranked_fraction=0.2, ranking=ranking,
            keyword_counts=(1, 2, 3),
        )

        os.makedirs(os.path.dirname(OUT), exist_ok=True)
        if os.path.exists(OUT):
            os.unlink(OUT)
        with QueryService(engine, workers=1, query_log=OUT) as service:
            service.run_batch(batch)
            writer = service.query_log
        # Counters are read after close(), when the writer has drained.
        print(
            f"captured {writer.seen} queries ({writer.written} written, "
            f"{writer.dropped} dropped) to {OUT}"
        )
        engine.close()
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
