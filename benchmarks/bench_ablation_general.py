"""Ablation A5 — general ranked top-k vs. distance-first (Section V.C).

The paper presents the general algorithm but evaluates only the
distance-first variant ("its results are easier to comprehend and
analyze").  This ablation completes the picture: the ranked algorithm on
the same workload, its I/O relative to distance-first, and a correctness
check against the brute-force oracle.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import format_table, queries_per_point
from repro.core import DistanceDecayRanking, brute_force_ranked
from repro.core.query import SpatialKeywordQuery

K = 10
NUM_KEYWORDS = 2


@pytest.fixture(scope="module")
def comparison(hotels):
    ranking = DistanceDecayRanking(half_distance=30.0)
    queries = hotels.workload.queries(queries_per_point(), NUM_KEYWORDS, K)
    index = hotels.indexes["IR2"]
    objects = hotels.objects
    rows = []
    data = {"ranked_reads": 0.0, "df_reads": 0.0, "oracle_ok": True}
    for label in ("distance-first", "ranked"):
        total_reads = 0.0
        total_objects = 0.0
        for query in queries:
            if label == "ranked":
                execution = index.execute_ranked(query, ranking)
                oracle = brute_force_ranked(
                    objects, hotels.corpus.analyzer, hotels.corpus.vocabulary,
                    query, ranking,
                )
                got = [round(r.score, 9) for r in execution.results]
                want = [round(r.score, 9) for r in oracle[: len(got)]]
                if got != want:
                    data["oracle_ok"] = False
            else:
                execution = index.execute(query)
            total_reads += execution.io.total_reads
            total_objects += execution.objects_inspected
        rows.append(
            (
                label,
                round(total_reads / len(queries), 1),
                round(total_objects / len(queries), 1),
            )
        )
        data["ranked_reads" if label == "ranked" else "df_reads"] = total_reads
    text = format_table(
        ("Algorithm", "Block reads/query", "Objects inspected/query"),
        rows,
        title="Ablation A5: ranked (general) vs distance-first IR2 search (Hotels)",
    )
    emit_text("ablation_general", text)
    return data


def test_ranked_matches_oracle(comparison):
    """Ranked top-k scores must match the brute-force oracle exactly."""
    assert comparison["oracle_ok"]


def test_ranked_io_reported(comparison):
    """Both variants must have produced measurable I/O."""
    assert comparison["ranked_reads"] > 0
    assert comparison["df_reads"] > 0


@pytest.mark.parametrize("mode", ["distance-first", "ranked"])
def test_general_query_wallclock(benchmark, hotels, comparison, mode):
    """Wall-clock of a query batch per query mode."""
    ranking = DistanceDecayRanking(half_distance=30.0)
    queries = hotels.workload.queries(4, NUM_KEYWORDS, K)
    index = hotels.indexes["IR2"]

    def run():
        for query in queries:
            if mode == "ranked":
                index.execute_ranked(query, ranking)
            else:
                index.execute(query)

    benchmark.pedantic(run, rounds=2, iterations=1)
