"""Ablation A4 — signature false-positive rate: measured vs. analytic.

The signature design mathematics ([FC84], [MC94]; see
:mod:`repro.text.sigdesign`) predicts the probability that a document
signature falsely covers a word it does not contain.  This ablation
superimposes real synthetic documents and measures the empirical rate
against the model across signature lengths — the quantitative basis for
the paper's choice of 189-byte (Hotels) and 8-byte (Restaurants)
signatures.
"""

from __future__ import annotations

import random

import pytest

from conftest import emit_text
from repro.bench import format_table
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.text import HashSignatureFactory, false_positive_probability
from repro.text.analyzer import DEFAULT_ANALYZER

LENGTH_BYTES = (4, 8, 16, 32, 64)
BITS_PER_WORD = 3
N_DOCS = 300
PROBES_PER_DOC = 40


@pytest.fixture(scope="module")
def rates():
    config = DatasetConfig(
        name="fp-ablation",
        n_objects=N_DOCS,
        vocabulary_size=4_000,
        avg_unique_words=15,
        seed=23,
    )
    generator = SpatialTextDatasetGenerator(config)
    documents = [DEFAULT_ANALYZER.terms(obj.text) for obj in generator.generate()]
    vocabulary = generator.vocabulary
    rng = random.Random(99)
    rows = []
    measured = {}
    mean_distinct = sum(len(d) for d in documents) / len(documents)
    for length in LENGTH_BYTES:
        factory = HashSignatureFactory(length, BITS_PER_WORD, seed=1)
        false_hits = 0
        probes = 0
        for terms in documents:
            signature = factory.for_words(terms)
            for _ in range(PROBES_PER_DOC):
                word = rng.choice(vocabulary)
                if word in terms:
                    continue
                probes += 1
                if signature.matches(factory.for_word(word)):
                    false_hits += 1
        empirical = false_hits / max(1, probes)
        analytic = false_positive_probability(
            length * 8, round(mean_distinct), BITS_PER_WORD
        )
        rows.append((length, round(empirical, 4), round(analytic, 4)))
        measured[length] = (empirical, analytic)
    text = format_table(
        ("Signature bytes", "Measured FP rate", "Analytic FP rate"),
        rows,
        title=(
            f"Ablation A4: false positives, m={BITS_PER_WORD} bits/word, "
            f"~{mean_distinct:.0f} distinct words/doc"
        ),
    )
    emit_text("ablation_falsepos", text)
    return measured


def test_falsepos_decreases_with_length(rates):
    """Longer signatures must give (weakly) fewer false positives."""
    series = [rates[length][0] for length in LENGTH_BYTES]
    assert all(b <= a + 0.01 for a, b in zip(series, series[1:]))


def test_falsepos_matches_model(rates):
    """The empirical rate tracks the analytic model within 2x + 1pp.

    (Zipfian documents deviate slightly from the model's uniform-word
    assumption; the agreement bound is intentionally loose.)
    """
    for length in LENGTH_BYTES:
        empirical, analytic = rates[length]
        assert empirical <= 2.0 * analytic + 0.01
        assert analytic <= 2.0 * empirical + 0.01


def test_falsepos_signature_build_wallclock(benchmark, rates):
    """Wall-clock of signing a batch of documents at 16 bytes."""
    config = DatasetConfig(
        name="fp-bench", n_objects=200, vocabulary_size=2_000,
        avg_unique_words=15, seed=31,
    )
    documents = [
        DEFAULT_ANALYZER.terms(obj.text)
        for obj in SpatialTextDatasetGenerator(config).generate()
    ]

    def sign_all():
        factory = HashSignatureFactory(16, BITS_PER_WORD, seed=2)
        return [factory.for_words(terms) for terms in documents]

    signatures = benchmark(sign_all)
    assert len(signatures) == len(documents)
