"""Maintenance costs — Section IV's claims about Insert and Delete.

The paper: IR2-Tree maintenance has "the same [complexity] as in an
R-Tree" (signatures ride the MBR-maintenance passes), whereas the
MIR2-Tree "significantly increases the complexity of the tree maintenance
operations" because every affected ancestor requires re-reading all
underlying objects.  Verdict: "for frequently updated datasets, IR2-Tree
is the choice."

This experiment inserts and deletes a batch of objects into each tree
variant and reports the mean disk accesses per operation.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import format_table
from repro.core import Corpus, IR2Index, MIR2Index, RTreeIndex
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator

#: Deliberately small: MIR2 insert cost is O(subtree object reads).
N_OBJECTS = 400
N_OPS = 20


def _fresh_setup():
    config = DatasetConfig(
        name="maint",
        n_objects=N_OBJECTS + N_OPS,
        vocabulary_size=2_000,
        avg_unique_words=30,
        seed=5,
    )
    objects = SpatialTextDatasetGenerator(config).generate()
    corpus = Corpus()
    pointers = corpus.add_all(objects)
    return objects, pointers, corpus


@pytest.fixture(scope="module")
def costs():
    objects, pointers, corpus = _fresh_setup()
    base, extra = objects[:N_OBJECTS], objects[N_OBJECTS:]
    base_ptrs, extra_ptrs = pointers[:N_OBJECTS], pointers[N_OBJECTS:]
    rows = []
    results = {}
    for make in (
        lambda: RTreeIndex(corpus),
        lambda: IR2Index(corpus, 16),
        lambda: MIR2Index(corpus, 16),
    ):
        index = make()
        # Build over the base set only (the extra objects are in the
        # corpus but not the index; build() indexes everything, so build
        # manually via insert on an empty bulk-loaded shell).
        index.build(bulk=True)
        for pointer, obj in zip(extra_ptrs, extra):
            index.delete_object(pointer, obj)  # ensure only base remains
        index.reset_io()

        before = index.device.stats.snapshot()
        before_obj = corpus.device.stats.snapshot()
        for pointer, obj in zip(extra_ptrs, extra):
            index.insert_object(pointer, obj)
        insert_io = index.device.stats.diff(before).merged_with(
            corpus.device.stats.diff(before_obj)
        )

        before = index.device.stats.snapshot()
        before_obj = corpus.device.stats.snapshot()
        for pointer, obj in zip(extra_ptrs, extra):
            index.delete_object(pointer, obj)
        delete_io = index.device.stats.diff(before).merged_with(
            corpus.device.stats.diff(before_obj)
        )

        rows.append(
            (
                index.label,
                round(insert_io.total_accesses / N_OPS, 1),
                round(insert_io.random.total / N_OPS, 1),
                round(delete_io.total_accesses / N_OPS, 1),
                round(delete_io.random.total / N_OPS, 1),
            )
        )
        results[index.label] = (insert_io, delete_io)
    text = format_table(
        ("Index", "Insert blocks/op", "Insert random/op", "Delete blocks/op", "Delete random/op"),
        rows,
        title=f"Maintenance cost per operation ({N_OBJECTS} objects, {N_OPS} ops)",
    )
    emit_text("maintenance_costs", text)
    return results


def test_maintenance_ir2_close_to_rtree(costs):
    """IR2 insert I/O must stay within a small factor of the R-Tree's."""
    rtree_insert, _ = costs["RTREE"]
    ir2_insert, _ = costs["IR2"]
    assert ir2_insert.total_accesses <= 4 * max(1, rtree_insert.total_accesses)


def test_maintenance_mir2_much_more_expensive(costs):
    """MIR2 insert must cost far more than IR2 (object re-reads)."""
    ir2_insert, _ = costs["IR2"]
    mir2_insert, _ = costs["MIR2"]
    assert mir2_insert.total_accesses > 5 * max(1, ir2_insert.total_accesses)


@pytest.mark.parametrize("kind", ["rtree", "ir2", "mir2"])
def test_maintenance_insert_wallclock(benchmark, costs, kind):
    """Wall-clock of one insert into a freshly built index."""
    objects, pointers, corpus = _fresh_setup()
    base = objects[:N_OBJECTS]
    if kind == "rtree":
        index = RTreeIndex(corpus)
    elif kind == "ir2":
        index = IR2Index(corpus, 16)
    else:
        index = MIR2Index(corpus, 16)
    index.build(bulk=True)
    for pointer, obj in zip(pointers[N_OBJECTS:], objects[N_OBJECTS:]):
        index.delete_object(pointer, obj)
    extra = list(zip(pointers[N_OBJECTS:], objects[N_OBJECTS:]))
    state = {"i": 0}

    def one_insert():
        pointer, obj = extra[state["i"] % len(extra)]
        if state["i"] >= len(extra):
            index.delete_object(pointer, obj)
        index.insert_object(pointer, obj)
        state["i"] += 1

    benchmark.pedantic(one_insert, rounds=5, iterations=1)
