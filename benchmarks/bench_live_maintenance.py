"""Read latency under a live write stream: snapshot vs rwlock maintenance.

Measures what the PR-8 redesign is for: the read-side p95 while a writer
continuously mutates the served engine.  For every config the same
workload runs twice —

* ``rwlock`` — the legacy readers-writer lock: every ``add``/``delete``
  excludes the whole reader pool, and the periodic compaction
  (``service.build()`` every ``compact_every`` writes) stalls readers
  for a full index rebuild;
* ``snapshot`` — versioned copy-on-write maintenance: writes buffer into
  the overlay (readers pin published versions and never block) and the
  same compaction schedule runs as background merges
  (``merge_threshold = compact_every``).

Reader threads issue a fixed number of point/area queries each and
record wall-clock latency per call; the writer streams insert+delete
pairs until the readers finish.  The JSON baseline (``BENCH_PR8.json``
at the repo root) records p50/p95/QPS per mode plus the write and merge
counts.

Wall-clock numbers are machine-dependent, so CI never compares them
against a committed baseline.  ``--check-maintenance`` gates *within*
one run — on the same machine, same moment — that the snapshot read p95
under writes beats the rwlock baseline (times ``--tolerance``, default
1.0: strictly better).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.workloads import ConcurrentLoadGenerator  # noqa: E402
from repro.core.engine import SpatialKeywordEngine  # noqa: E402
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator  # noqa: E402
from repro.serve import RWLOCK, SNAPSHOT, QueryService  # noqa: E402
from repro.shard import ShardedEngine  # noqa: E402

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_PR8.json")
SEED = 4321

FULL_CONFIGS = [("ir2", 1), ("iio", 1), ("ir2", 2)]
QUICK_CONFIGS = [("ir2", 1)]

FULL_SCALE = dict(
    n_objects=800, readers=3, queries_per_reader=80, compact_every=24
)
QUICK_SCALE = dict(
    n_objects=250, readers=2, queries_per_reader=32, compact_every=16
)

WORKLOAD_MIX = dict(
    keyword_counts=(1, 2, 3), k=10, hot_fraction=0.3, hot_pool=6,
    area_fraction=0.2, ranked_fraction=0.0,
)


def _corpus(n_objects: int):
    config = DatasetConfig(
        name="live-maintenance",
        n_objects=n_objects,
        vocabulary_size=2_000,
        avg_unique_words=18,
        clusters=6,
        seed=SEED,
    )
    return SpatialTextDatasetGenerator(config).generate()


def _build_engine(objects, index: str, shards: int):
    if shards > 1:
        engine = ShardedEngine(n_shards=shards, index=index)
    else:
        engine = SpatialKeywordEngine(index=index)
    engine.add_all(objects)
    engine.build()
    return engine


def _percentile(samples, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _run_mode(objects, index, shards, mode, scale):
    """One timed pass: reader pool vs sustained writer, one mode."""
    engine = _build_engine(objects, index, shards)
    analyzer = engine.analyzer
    compact_every = scale["compact_every"]
    service = QueryService(
        engine,
        workers=scale["readers"] + 1,
        cache=False,
        maintenance=mode,
        merge_threshold=compact_every if mode == SNAPSHOT else 64,
    )
    workload = ConcurrentLoadGenerator(objects, analyzer, seed=SEED)
    queries = workload.mixed_batch(
        scale["readers"] * scale["queries_per_reader"], **WORKLOAD_MIX
    )
    per_reader = [
        queries[i::scale["readers"]] for i in range(scale["readers"])
    ]
    latencies_ms: list[float] = []
    lock = threading.Lock()
    stop = threading.Event()
    writes = {"count": 0, "compactions": 0}
    errors: list[Exception] = []

    def reader(batch):
        local = []
        try:
            for query in batch:
                t0 = time.perf_counter()
                service.search(query)
                local.append((time.perf_counter() - t0) * 1000.0)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        with lock:
            latencies_ms.extend(local)

    def writer():
        next_oid = max(obj.oid for obj in objects) + 1
        donor = 0
        try:
            while not stop.is_set():
                template = objects[donor % len(objects)]
                service.add_object(
                    next_oid, template.point, template.text
                )
                service.delete(next_oid)
                next_oid += 1
                donor += 1
                writes["count"] += 2
                if mode == RWLOCK and writes["count"] % (
                    2 * compact_every
                ) == 0:
                    service.build(bulk=True)
                    writes["compactions"] += 1
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=reader, args=(batch,))
        for batch in per_reader
    ]
    write_thread = threading.Thread(target=writer)
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    write_thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stop.set()
    write_thread.join()
    maintainer = service.maintainer
    merges = maintainer.merges if maintainer is not None else None
    service.close()
    if shards > 1:
        engine.close()
    if errors:
        raise errors[0]
    return {
        "p50_ms": round(_percentile(latencies_ms, 0.50), 3),
        "p95_ms": round(_percentile(latencies_ms, 0.95), 3),
        "mean_ms": round(statistics.fmean(latencies_ms), 3),
        "qps": round(len(latencies_ms) / elapsed, 1),
        "queries": len(latencies_ms),
        "writes": writes["count"],
        "compactions": (
            writes["compactions"] if mode == RWLOCK else merges
        ),
    }


def run(quick: bool):
    scale = QUICK_SCALE if quick else FULL_SCALE
    configs = QUICK_CONFIGS if quick else FULL_CONFIGS
    objects = _corpus(scale["n_objects"])
    cells = []
    for index, shards in configs:
        cell = {"index": index, "shards": shards}
        for mode in (RWLOCK, SNAPSHOT):
            print(f"[bench] {index} x{shards} mode={mode} ...",
                  flush=True)
            cell[mode] = _run_mode(objects, index, shards, mode, scale)
        speedup = (
            cell[RWLOCK]["p95_ms"] / cell[SNAPSHOT]["p95_ms"]
            if cell[SNAPSHOT]["p95_ms"] else float("inf")
        )
        cell["p95_speedup"] = round(speedup, 2)
        print(
            f"[bench] {index} x{shards}: rwlock p95 "
            f"{cell[RWLOCK]['p95_ms']} ms vs snapshot p95 "
            f"{cell[SNAPSHOT]['p95_ms']} ms ({speedup:.2f}x)",
            flush=True,
        )
        cells.append(cell)
    return {
        "scale": dict(scale),
        "workload": {k: list(v) if isinstance(v, tuple) else v
                     for k, v in WORKLOAD_MIX.items()},
        "seed": SEED,
        "configs": cells,
    }


def check_maintenance(payload, tolerance: float) -> list[str]:
    """Within-run gate: snapshot read p95 must beat the rwlock baseline."""
    failures = []
    for cell in payload["configs"]:
        snap = cell[SNAPSHOT]["p95_ms"]
        base = cell[RWLOCK]["p95_ms"]
        if snap >= base * tolerance:
            failures.append(
                f"{cell['index']} x{cell['shards']}: snapshot p95 "
                f"{snap} ms not better than rwlock p95 {base} ms "
                f"(tolerance {tolerance})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration")
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--check-maintenance", action="store_true",
                        help="exit 2 unless snapshot read p95 under the "
                             "write stream beats the rwlock baseline "
                             "within this run")
    parser.add_argument("--tolerance", type=float, default=1.0,
                        help="snapshot p95 must be < rwlock p95 times "
                             "this factor (default 1.0: strictly better)")
    args = parser.parse_args(argv)

    payload = {
        "benchmark": "live-maintenance",
        "mode": "quick" if args.quick else "full",
        "results": run(args.quick),
    }
    out = args.out or DEFAULT_OUT
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {out}")

    if args.check_maintenance:
        failures = check_maintenance(payload["results"], args.tolerance)
        if failures:
            for failure in failures:
                print(f"[bench] FAIL: {failure}", file=sys.stderr)
            return 2
        print("[bench] maintenance gate passed: snapshot p95 beats "
              "rwlock in every config")
    return 0


if __name__ == "__main__":
    sys.exit(main())
