"""Ablation A1 — STR bulk load vs. repeated insertion (IR2-Tree).

The figure experiments build trees with the STR bulk loader; the paper
builds by insertion.  This ablation shows the two constructions answer
queries with comparable I/O (so the substitution does not distort the
figure comparisons) while bulk loading is far cheaper to perform.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import format_table
from repro.bench.workloads import WorkloadGenerator
from repro.core import (
    BulkItem,
    Corpus,
    IR2Tree,
    SpatialKeywordQuery,
    bulk_load,
    insert_build,
    ir2_top_k,
)
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.spatial.geometry import Rect
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text.signature import HashSignatureFactory

N_OBJECTS = 1_500
N_QUERIES = 12


def _corpus_and_items():
    config = DatasetConfig(
        name="build-ablation",
        n_objects=N_OBJECTS,
        vocabulary_size=3_000,
        avg_unique_words=25,
        seed=13,
    )
    objects = SpatialTextDatasetGenerator(config).generate()
    corpus = Corpus()
    corpus.add_all(objects)
    items = [
        BulkItem(ptr, Rect.from_point(obj.point), corpus.analyzer.terms(obj.text))
        for ptr, obj in corpus.iter_items()
    ]
    return corpus, objects, items


def _build(corpus, items, bulk: bool):
    device = InMemoryBlockDevice(name="ablation-tree")
    tree = IR2Tree(PageStore(device), HashSignatureFactory(16))
    if bulk:
        bulk_load(tree, items)
    else:
        insert_build(tree, items)
    build_writes = device.stats.total_writes
    device.stats.reset()
    corpus.device.stats.reset()
    return tree, device, build_writes


@pytest.fixture(scope="module")
def comparison():
    corpus, objects, items = _corpus_and_items()
    workload = WorkloadGenerator(objects, corpus.analyzer, seed=3)
    queries = workload.queries(N_QUERIES, 2, 10)
    rows = []
    measured = {}
    for label, bulk in (("bulk-load", True), ("insertion", False)):
        tree, device, build_writes = _build(corpus, items, bulk)
        answers = []
        for query in queries:
            answers.append([r.oid for r in ir2_top_k(tree, corpus.store, corpus.analyzer, query).results])
        reads = device.stats.total_reads + corpus.device.stats.total_reads
        rows.append(
            (
                label,
                build_writes,
                tree.height,
                tree.node_count(),
                round(reads / N_QUERIES, 1),
            )
        )
        measured[label] = (answers, reads)
        corpus.device.stats.reset()
    text = format_table(
        ("Build", "Build block writes", "Height", "Nodes", "Query reads/query"),
        rows,
        title=f"Ablation A1: bulk load vs insertion (IR2, {N_OBJECTS} objects)",
    )
    emit_text("ablation_build", text)
    return measured


def test_builds_agree_on_results(comparison):
    """Both constructions must return identical distance-first answers."""
    assert comparison["bulk-load"][0] == comparison["insertion"][0]


def test_bulk_query_io_comparable(comparison):
    """Bulk-loaded tree query I/O within 2.5x of the insertion-built tree.

    (STR packing usually *reduces* I/O; the bound is deliberately loose.)
    """
    bulk_reads = comparison["bulk-load"][1]
    insert_reads = comparison["insertion"][1]
    assert bulk_reads <= 2.5 * max(1, insert_reads)


@pytest.mark.parametrize("bulk", [True, False], ids=["bulk", "insert"])
def test_build_wallclock(benchmark, comparison, bulk):
    """Wall-clock cost of each construction path."""
    corpus, _, items = _corpus_and_items()
    benchmark.pedantic(
        lambda: _build(corpus, items, bulk), rounds=2, iterations=1
    )
