"""Ablation A7 — signature saturation per tree level (Section IV).

Measures the structural fact that motivates the MIR2-Tree: with one
signature length everywhere, upper IR2-Tree levels superimpose so many
words that most bits are set ("more 1's") and the level stops pruning;
the MIR2-Tree's per-level optimal lengths hold every level near the
half-full design point.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import format_table
from repro.core.diagnostics import estimated_false_positive_rates, signature_saturation


@pytest.fixture(scope="module")
def saturation(hotels):
    rows = []
    data = {}
    for name in ("IR2", "MIR2"):
        tree = hotels.indexes[name].tree
        report = signature_saturation(tree)
        rates = estimated_false_positive_rates(tree, bits_per_word=3)
        data[name] = (report, rates)
        for row in report:
            rows.append(
                (
                    name,
                    row.level,
                    row.nodes,
                    row.signature_bits,
                    round(row.mean_fill, 3),
                    round(rates[row.level], 4),
                )
            )
    text = format_table(
        ("Tree", "Level", "Nodes", "Sig bits", "Mean fill", "Est. FP rate"),
        rows,
        title="Ablation A7: per-level signature saturation (Hotels, 189 B leaves)",
    )
    emit_text("ablation_saturation", text)
    return data


def test_ir2_upper_levels_saturate(hotels, saturation):
    report, _ = saturation["IR2"]
    assert report[-1].mean_fill > report[0].mean_fill


def test_mir2_counters_saturation(hotels, saturation):
    ir2_report, _ = saturation["IR2"]
    mir2_report, _ = saturation["MIR2"]
    assert mir2_report[-1].mean_fill < ir2_report[-1].mean_fill


def test_saturation_wallclock(benchmark, hotels, saturation):
    """Wall-clock of computing the saturation report on the IR2-Tree."""
    tree = hotels.indexes["IR2"].tree
    benchmark.pedantic(lambda: signature_saturation(tree), rounds=3, iterations=1)
