"""Ablation A2 — quadratic vs. linear node splitting.

The paper uses Guttman's quadratic split.  This ablation swaps in the
linear split and measures the effect on distance-first query I/O over an
insertion-built IR2-Tree: quadratic usually yields tighter MBRs and hence
fewer node reads, at a higher build cost.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import format_table
from repro.bench.workloads import WorkloadGenerator
from repro.core import BulkItem, Corpus, IR2Tree, insert_build, ir2_top_k
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.spatial.geometry import Rect
from repro.spatial.split import LinearSplit, QuadraticSplit
from repro.storage import InMemoryBlockDevice, PageStore
from repro.text.signature import HashSignatureFactory

N_OBJECTS = 1_200
N_QUERIES = 12
#: Small capacity so node splits actually happen at ablation scale.
CAPACITY = 16


def _setup():
    config = DatasetConfig(
        name="split-ablation",
        n_objects=N_OBJECTS,
        vocabulary_size=2_500,
        avg_unique_words=20,
        seed=29,
    )
    objects = SpatialTextDatasetGenerator(config).generate()
    corpus = Corpus()
    corpus.add_all(objects)
    items = [
        BulkItem(ptr, Rect.from_point(obj.point), corpus.analyzer.terms(obj.text))
        for ptr, obj in corpus.iter_items()
    ]
    return corpus, objects, items


def _build_with(corpus, items, strategy):
    device = InMemoryBlockDevice(name=f"split-{strategy.name}")
    tree = IR2Tree(
        PageStore(device),
        HashSignatureFactory(16),
        capacity=CAPACITY,
        split_strategy=strategy,
    )
    insert_build(tree, items)
    device.stats.reset()
    corpus.device.stats.reset()
    return tree, device


@pytest.fixture(scope="module")
def comparison():
    corpus, objects, items = _setup()
    workload = WorkloadGenerator(objects, corpus.analyzer, seed=4)
    queries = workload.queries(N_QUERIES, 2, 10)
    rows = []
    measured = {}
    for strategy in (QuadraticSplit(), LinearSplit()):
        tree, device = _build_with(corpus, items, strategy)
        answers = []
        for query in queries:
            outcome = ir2_top_k(tree, corpus.store, corpus.analyzer, query)
            answers.append([r.oid for r in outcome.results])
        node_reads = device.stats.total_reads
        rows.append(
            (
                strategy.name,
                tree.node_count(),
                round(node_reads / N_QUERIES, 1),
            )
        )
        measured[strategy.name] = (answers, node_reads)
        corpus.device.stats.reset()
    text = format_table(
        ("Split", "Nodes", "Node reads/query"),
        rows,
        title=f"Ablation A2: split strategy (IR2, capacity={CAPACITY})",
    )
    emit_text("ablation_split", text)
    return measured


def test_split_strategies_agree_on_results(comparison):
    """Result correctness must not depend on the split strategy."""
    assert comparison["quadratic"][0] == comparison["linear"][0]


@pytest.mark.parametrize("strategy_name", ["quadratic", "linear"])
def test_split_build_wallclock(benchmark, comparison, strategy_name):
    """Wall-clock of insertion-building under each split strategy."""
    corpus, _, items = _setup()
    strategy = QuadraticSplit() if strategy_name == "quadratic" else LinearSplit()
    benchmark.pedantic(
        lambda: _build_with(corpus, items, strategy), rounds=2, iterations=1
    )
