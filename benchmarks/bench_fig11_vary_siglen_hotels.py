"""Figure 11 — varying the signature length, Hotels dataset.

Paper setup: k=10, 2 keywords, signature length swept around the 189-byte
operating point; reports (a) execution time and (b) *object* accesses.
Longer signatures cut false positives (fewer object accesses) but inflate
the tree (more blocks per node), so "there is no clear trend" in time —
the trade-off the paper discusses in Section VI.B.

The IR2- and MIR2-Trees are rebuilt per length; the two baselines carry no
signatures, so their columns are flat by construction and measured once
from the shared context for reference.
"""

from __future__ import annotations

import pytest

from conftest import emit_sweep
from repro.bench import get_context, queries_per_point, run_sweep
from repro.bench.reporting import SeriesTable
from repro.bench.workloads import with_k

SIGNATURE_BYTES = (47, 94, 189, 378)
K = 10
NUM_KEYWORDS = 2


@pytest.fixture(scope="module")
def sweep(hotels):
    base = with_k(hotels.workload.queries(queries_per_point(), NUM_KEYWORDS, K), K)
    from repro.bench import SweepResult
    from repro.bench.harness import MetricsRow

    result = SweepResult()
    names = ["RTREE", "IIO", "IR2", "MIR2"]
    for metric, label in MetricsRow.METRICS.items():
        result.tables[metric] = SeriesTable(
            title=(
                "Figure 11 (Hotels): vary signature length (bytes), "
                f"k={K}, {NUM_KEYWORDS} keywords — {label}"
            ),
            parameter="sig_bytes",
            algorithms=names,
        )
    baseline_rows = {
        name: hotels.measure(name, base) for name in ("RTREE", "IIO")
    }
    for length in SIGNATURE_BYTES:
        context = get_context(
            "hotels", signature_bytes=length, algorithms=("IR2", "MIR2")
        )
        rows = dict(baseline_rows)
        rows["IR2"] = context.measure("IR2", base)
        rows["MIR2"] = context.measure("MIR2", base)
        for metric in MetricsRow.METRICS:
            result.tables[metric].add(
                length, {name: getattr(rows[name], metric) for name in names}
            )
    emit_sweep("fig11_vary_siglen_hotels", result)
    return result


@pytest.mark.parametrize("sig_bytes", SIGNATURE_BYTES)
def test_fig11_ir2_wallclock(benchmark, hotels, sweep, sig_bytes):
    """Wall-clock of the IR2 query batch at each signature length."""
    context = get_context(
        "hotels", signature_bytes=sig_bytes, algorithms=("IR2", "MIR2")
    )
    queries = with_k(hotels.workload.queries(queries_per_point(), NUM_KEYWORDS, K), K)
    benchmark.pedantic(
        lambda: context.run_queries("IR2", queries), rounds=3, iterations=1
    )


def test_fig11_shape_longer_signatures_fewer_object_accesses(hotels, sweep):
    """Longest signatures must not inspect more objects than shortest."""
    ir2 = sweep.table("object_accesses").column("IR2")
    assert ir2[-1] <= ir2[0]
