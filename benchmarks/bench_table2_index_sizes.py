"""Table 2 — sizes (MB) of the indexing structures.

Paper values (full scale): for Hotels the IIO structure (31.4 MB) dwarfs
the R-Tree (6.9 MB) because hotel documents carry many unique words; for
Restaurants the opposite holds (IIO 7.2 MB vs R-Tree 23.9 MB) because
there are many more objects but few words each.  The signature-bearing
trees are always the largest, and MIR2 > IR2 (longer top-level
signatures).  Those *orderings* are asserted here at benchmark scale.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import ALGORITHMS, bench_scale, format_table


@pytest.fixture(scope="module")
def table(hotels, restaurants):
    headers = ("Dataset", "IIO", "R-Tree", "IR2-Tree", "MIR2-Tree")
    order = ("IIO", "RTREE", "IR2", "MIR2")
    rows = []
    for name, context in (("Hotels", hotels), ("Restaurants", restaurants)):
        rows.append(
            (name,) + tuple(round(context.indexes[a].size_mb, 3) for a in order)
        )
    text = format_table(
        headers,
        rows,
        title=f"Table 2: index structure sizes in MB (scale={bench_scale()})",
    )
    emit_text("table2_index_sizes", text)
    return {row[0]: dict(zip(order, row[1:])) for row in rows}


def test_table2_signature_trees_larger_than_rtree(table):
    """Signatures add space: IR2 > R-Tree and MIR2 >= IR2 on both datasets."""
    for dataset in ("Hotels", "Restaurants"):
        sizes = table[dataset]
        assert sizes["IR2"] > sizes["RTREE"]
        assert sizes["MIR2"] >= sizes["IR2"]


def test_table2_iio_relative_size_flips_between_datasets(table):
    """IIO is relatively big for word-rich Hotels, small for Restaurants.

    The paper's Section VI.A observation, expressed scale-independently as
    the IIO/R-Tree size ratio being far larger on Hotels.
    """
    hotels_ratio = table["Hotels"]["IIO"] / table["Hotels"]["RTREE"]
    restaurants_ratio = table["Restaurants"]["IIO"] / table["Restaurants"]["RTREE"]
    assert hotels_ratio > restaurants_ratio


def test_table2_size_computation_wallclock(benchmark, hotels, table):
    """Wall-clock of computing every structure's size on Hotels."""

    def compute():
        return [hotels.indexes[a].size_mb for a in ALGORITHMS]

    sizes = benchmark(compute)
    assert all(size >= 0 for size in sizes)
