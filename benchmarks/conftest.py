"""Shared fixtures for the paper-reproduction benchmarks.

Experiment scale is laptop-sized by default (``REPRO_SCALE=0.02`` of the
paper's object counts) — set the environment variable higher for closer
absolute numbers; the *shapes* (who wins, by what factor) hold at every
scale.  Every sweep prints its paper-style tables to stdout (run pytest
with ``-s`` to see them live) and writes Markdown copies under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench import SweepResult, get_context, save_markdown


@pytest.fixture(scope="session")
def hotels():
    """Hotels context: paper signature length 189 bytes, all algorithms."""
    return get_context("hotels")


@pytest.fixture(scope="session")
def restaurants():
    """Restaurants context: paper signature length 8 bytes, all algorithms."""
    return get_context("restaurants")


def emit_sweep(name: str, result: SweepResult) -> None:
    """Print a sweep's tables (plus the time chart) and persist them."""
    text = result.render()
    chart = result.table("simulated_ms").render_chart()
    print(f"\n{'=' * 72}\n{text}\n\n{chart}\n{'=' * 72}")
    save_markdown(name, result.render_markdown() + "\n\n```\n" + chart + "\n```")


def emit_text(name: str, text: str) -> None:
    """Print a free-form result block and persist it."""
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
    save_markdown(name, text)
