"""Table 1 — dataset details.

Regenerates the paper's dataset-statistics table from the synthetic
corpora: size (MB), total objects, average unique words per object, total
unique words, average disk blocks per object.  At ``REPRO_SCALE < 1`` the
object counts shrink proportionally and the vocabulary follows Heaps' law,
while per-object statistics (the drivers of signature design) stay at the
paper's values.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import bench_scale, format_table
from repro.datasets import SpatialTextDatasetGenerator, hotels_config


@pytest.fixture(scope="module")
def table(hotels, restaurants):
    headers = (
        "Dataset",
        "Size (MB)",
        "Objects",
        "Avg unique words/obj",
        "Unique words",
        "Avg blocks/obj",
    )
    rows = []
    for name, context in (("Hotels", hotels), ("Restaurants", restaurants)):
        stats = context.corpus.stats()
        rows.append((name,) + stats.row())
    text = format_table(
        headers,
        rows,
        title=f"Table 1: dataset details (scale={bench_scale()})",
    )
    emit_text("table1_datasets", text)
    return rows


def test_table1_statistics_match_paper_shape(table):
    """Hotels documents are long; Restaurants documents are short.

    The paper's key contrast: ~349 vs ~14 unique words per object, which
    drives the 189-byte vs 8-byte signature design.
    """
    hotels_row, restaurants_row = table
    assert hotels_row[3] > 250  # avg unique words per hotel object
    assert restaurants_row[3] < 25  # avg unique words per restaurant object
    assert restaurants_row[2] > hotels_row[2]  # more restaurant objects


def test_table1_generation_wallclock(benchmark, table):
    """Wall-clock cost of generating a small Hotels-like corpus."""
    config = hotels_config(scale=0.002)

    def generate():
        return SpatialTextDatasetGenerator(config).generate()

    objects = benchmark(generate)
    assert len(objects) == config.n_objects
