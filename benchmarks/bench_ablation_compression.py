"""Ablation A8 — compressed posting lists for IIO ([NMN+00], cited §7).

Delta + varint compression shrinks the inverted file and with it the
blocks a retrieval must read — the standard engineering upgrade to the
paper's IIO baseline.  This ablation measures the structure size and the
per-query I/O of raw vs. compressed postings on both datasets, verifying
answers stay identical.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import format_table, queries_per_point
from repro.core import IIOIndex


@pytest.fixture(scope="module")
def comparison(hotels, restaurants):
    rows = []
    data = {}
    for dataset_name, context in (("Hotels", hotels), ("Restaurants", restaurants)):
        queries = context.workload.queries(queries_per_point(), 2, 10)
        per_codec = {}
        for compression in ("raw", "varint"):
            index = IIOIndex(context.corpus, compression=compression)
            index.build()
            index.reset_io()
            answers = []
            reads = 0.0
            for query in queries:
                execution = index.execute(query)
                answers.append(execution.oids)
                reads += execution.io.total_reads
            rows.append(
                (
                    dataset_name,
                    compression,
                    round(index.size_mb, 3),
                    round(reads / len(queries), 1),
                )
            )
            per_codec[compression] = {
                "answers": answers,
                "size_mb": index.size_mb,
                "reads": reads,
            }
        data[dataset_name] = per_codec
    text = format_table(
        ("Dataset", "Postings codec", "IIO size (MB)", "Block reads/query"),
        rows,
        title="Ablation A8: posting-list compression for IIO [NMN+00]",
    )
    emit_text("ablation_compression", text)
    return data


def test_compression_preserves_answers(comparison):
    for dataset, per_codec in comparison.items():
        assert per_codec["raw"]["answers"] == per_codec["varint"]["answers"], dataset


def test_compression_shrinks_structure(comparison):
    for dataset, per_codec in comparison.items():
        assert per_codec["varint"]["size_mb"] < per_codec["raw"]["size_mb"], dataset


def test_compression_does_not_increase_reads(comparison):
    for dataset, per_codec in comparison.items():
        assert per_codec["varint"]["reads"] <= per_codec["raw"]["reads"] * 1.05, dataset


@pytest.mark.parametrize("compression", ["raw", "varint"])
def test_compression_wallclock(benchmark, restaurants, comparison, compression):
    """Wall-clock of an IIO query batch per codec."""
    index = IIOIndex(restaurants.corpus, compression=compression)
    index.build()
    queries = restaurants.workload.queries(4, 2, 10)

    def run():
        for query in queries:
            index.execute(query)

    benchmark.pedantic(run, rounds=2, iterations=1)
