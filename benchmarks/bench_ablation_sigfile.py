"""Ablation A6 — signature organizations vs. inverted file vs. IR2-Tree.

The paper's index builds on signature files [FC84]; the classic
alternative for the text side is the inverted file, and [ZMR98] (cited in
Section VII) compares the two.  This ablation stages that comparison
inside our system: the SIG baseline scans a flat signature file (almost
all *sequential* I/O), IIO intersects posting lists (few, targeted
reads), and the IR2-Tree shows what adding the spatial hierarchy on top
of signatures buys for top-k queries.
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import format_table, queries_per_point
from repro.core import STreeIndex, SignatureFileIndex
from repro.core.query import SpatialKeywordQuery

K = 10
NUM_KEYWORDS = 2
#: Signature length for the S-Tree and its same-length flat-scan foil.
STREE_SIG_BYTES = 64


@pytest.fixture(scope="module")
def comparison(restaurants):
    sig = SignatureFileIndex(restaurants.corpus, restaurants.signature_bytes)
    sig.build()
    sig.reset_io()
    # The S-Tree needs longer signatures than the leaf-only scan: its
    # inner nodes superimpose a whole subtree's words, and at the paper's
    # 8-byte Restaurants length they saturate (exactly the phenomenon
    # that motivates the MIR2-Tree).  Give the hierarchy its own design
    # point and include a flat scan at the same length for a fair
    # pruning comparison.
    stree = STreeIndex(restaurants.corpus, STREE_SIG_BYTES, capacity=8)
    stree.build()
    stree.reset_io()
    sig_long = SignatureFileIndex(restaurants.corpus, STREE_SIG_BYTES)
    sig_long.build()
    sig_long.reset_io()
    queries = restaurants.workload.queries(queries_per_point(), NUM_KEYWORDS, K)
    rows = []
    measured = {}
    participants = [
        ("IIO", restaurants.indexes["IIO"]),
        ("SIG", sig),
        (f"SIG{STREE_SIG_BYTES}", sig_long),
        ("STREE", stree),
        ("IR2", restaurants.indexes["IR2"]),
    ]
    reference: list[list[int]] | None = None
    for label, index in participants:
        answers = []
        random_reads = sequential_reads = objects = sim_ms = 0.0
        text_random = text_sequential = 0.0
        for query in queries:
            execution = index.execute(query)
            answers.append(execution.oids)
            random_reads += execution.io.random.total
            sequential_reads += execution.io.sequential.total
            objects += execution.objects_inspected
            sim_ms += execution.simulated_ms()
            # (objects accumulated again below per label)
            for category in ("sigfile", "postings", "node"):
                counts = execution.io.by_category.get(category)
                if counts:
                    text_random += counts[0]
                    text_sequential += counts[1]
        n = len(queries)
        rows.append(
            (
                label,
                round(random_reads / n, 1),
                round(sequential_reads / n, 1),
                round(objects / n, 1),
                round(sim_ms / n, 1),
            )
        )
        if reference is None:
            reference = answers
        measured[label] = {
            "answers": answers,
            "random": random_reads,
            "sequential": sequential_reads,
            "objects": objects,
            "text_random": text_random,
            "text_sequential": text_sequential,
        }
    text = format_table(
        ("Index", "Random/query", "Sequential/query", "Objects/query", "Sim ms/query"),
        rows,
        title=(
            "Ablation A6: signature organizations vs inverted file vs IR2 "
            f"(Restaurants, k={K}, {NUM_KEYWORDS} keywords)"
        ),
    )
    emit_text("ablation_sigfile", text)
    measured["reference"] = reference
    return measured


def test_all_participants_agree(comparison):
    """SIG, STREE and IR2 must return exactly IIO's answers."""
    assert comparison["SIG"]["answers"] == comparison["reference"]
    assert comparison["STREE"]["answers"] == comparison["reference"]
    assert comparison["IR2"]["answers"] == comparison["reference"]


def test_sigfile_is_sequential_heavy(comparison):
    """The SIG *scan itself* is dominated by sequential reads (the object
    verifications it triggers are random, which is exactly why false
    positives hurt)."""
    sig = comparison["SIG"]
    assert sig["text_sequential"] > sig["text_random"]


def test_sig_inspects_at_least_as_many_objects_as_iio(comparison):
    """IIO's postings are exact; the signature scan adds false positives,
    so SIG can never inspect fewer objects (superset property)."""
    assert comparison["SIG"]["objects"] >= comparison["IIO"]["objects"]


def test_stree_same_candidates_as_same_length_flat_scan(comparison):
    """Same signatures => identical candidate sets: the hierarchy can
    only prune subtrees whose superimposition misses a query bit, never
    change which leaves match."""
    assert (
        comparison["STREE"]["objects"]
        == comparison[f"SIG{STREE_SIG_BYTES}"]["objects"]
    )


def test_stree_trades_sequential_for_random(comparison):
    """The measured *negative* result worth pinning: the similarity-
    grouped hierarchy converts the flat file's cheap sequential scan into
    per-node random reads, and on short-document corpora its inner
    signatures saturate enough that pruning cannot pay for that — which
    is exactly why the paper grafts the hierarchy onto spatial grouping
    (IR2) and re-lengthens upper levels (MIR2) instead."""
    stree = comparison["STREE"]
    flat = comparison[f"SIG{STREE_SIG_BYTES}"]
    assert stree["text_random"] > flat["text_random"]
    assert stree["text_sequential"] < flat["text_sequential"]


@pytest.mark.parametrize("label", ["IIO", "SIG", "STREE", "IR2"])
def test_sigfile_wallclock(benchmark, restaurants, comparison, label):
    """Wall-clock of the query batch per text-index organization."""
    if label == "SIG":
        index = SignatureFileIndex(restaurants.corpus, restaurants.signature_bytes)
        index.build()
    elif label == "STREE":
        index = STreeIndex(restaurants.corpus, STREE_SIG_BYTES, capacity=8)
        index.build()
    else:
        index = restaurants.indexes[label]
    queries = restaurants.workload.queries(4, NUM_KEYWORDS, K)

    def run():
        for query in queries:
            index.execute(query)

    benchmark.pedantic(run, rounds=2, iterations=1)
