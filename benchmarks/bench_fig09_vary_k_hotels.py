"""Figure 9 — varying k (top-k), Hotels dataset.

Paper setup: 2 query keywords, 189-byte signatures, k swept; reports
(a) execution time (log scale) and (b) disk block accesses with random
accesses as thick bars and sequential accesses as thin lines.

Expected shape (paper Section VI): IR2 and MIR2 beat R-Tree at every k;
MIR2 performs fewer *random* accesses than IR2 but more *sequential* ones
(longer top-level signatures span more blocks); IIO is flat in k.
"""

from __future__ import annotations

import pytest

from conftest import emit_sweep
from repro.bench import ALGORITHMS, get_context, queries_per_point, run_sweep
from repro.bench.workloads import with_k

K_VALUES = (1, 5, 10, 20, 50)
NUM_KEYWORDS = 2


@pytest.fixture(scope="module")
def sweep(hotels):
    """Run the whole k sweep once; every wall-clock benchmark reuses it."""
    base = hotels.workload.queries(queries_per_point(), NUM_KEYWORDS, 10)
    result = run_sweep(
        hotels,
        "Figure 9 (Hotels): vary k, 2 keywords, 189-byte signatures",
        "k",
        K_VALUES,
        lambda k: with_k(base, k),
        algorithms=ALGORITHMS,
    )
    emit_sweep("fig09_vary_k_hotels", result)
    return result


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig09_query_wallclock(benchmark, hotels, sweep, algorithm):
    """Wall-clock time of a k=10 query batch per algorithm."""
    queries = with_k(hotels.workload.queries(queries_per_point(), NUM_KEYWORDS, 10), 10)
    benchmark.pedantic(
        lambda: hotels.run_queries(algorithm, queries), rounds=3, iterations=1
    )


def test_fig09_shape_ir2_beats_rtree(hotels, sweep):
    """IR2/MIR2 must beat the R-Tree baseline at every k (paper's claim)."""
    rtree = sweep.table("simulated_ms").column("RTREE")
    ir2 = sweep.table("simulated_ms").column("IR2")
    mir2 = sweep.table("simulated_ms").column("MIR2")
    assert all(i <= r for i, r in zip(ir2, rtree))
    assert all(m <= r for m, r in zip(mir2, rtree))


def test_fig09_shape_iio_flat(hotels, sweep):
    """IIO's cost must be independent of k (same queries, varying k)."""
    iio = sweep.table("random_accesses").column("IIO")
    assert max(iio) - min(iio) < 1e-9
