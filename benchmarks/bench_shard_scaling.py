"""Shard scaling — scatter-gather fan-out vs one monolithic engine.

Reports per-query latency and aggregate I/O for the same IR2 corpus
served by 1, 2, 4, and 8 shards.  Answers must stay identical (tie-aware)
at every shard count — sharding is an execution strategy, never a
semantics change.  The interesting trade: partition-MBB pruning skips
whole shards (fewer blocks touched at higher counts on clustered data),
while fan-out adds per-shard fixed costs (each opened shard pays its own
root-to-leaf descent).
"""

from __future__ import annotations

import pytest

from conftest import emit_text
from repro.bench import format_table
from repro.bench.workloads import WorkloadGenerator
from repro.core.engine import SpatialKeywordEngine
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.shard import ShardedEngine

N_OBJECTS = 1_500
N_QUERIES = 24
SHARD_COUNTS = (1, 2, 4, 8)


def _corpus():
    config = DatasetConfig(
        name="shard-scaling",
        n_objects=N_OBJECTS,
        vocabulary_size=3_000,
        avg_unique_words=25,
        clusters=8,
        seed=17,
    )
    return SpatialTextDatasetGenerator(config).generate()


def _queries(objects, analyzer):
    workload = WorkloadGenerator(objects, analyzer, seed=6)
    return workload.queries(N_QUERIES, 2, 10)


@pytest.fixture(scope="module")
def comparison():
    objects = _corpus()
    single = SpatialKeywordEngine(index="ir2")
    single.add_all(objects)
    single.build()
    queries = _queries(objects, single.analyzer)

    reference = [
        sorted((round(r.distance, 9), r.obj.oid) for r in single.search(q).results)
        for q in queries
    ]

    rows = []
    measured = {}
    for n_shards in SHARD_COUNTS:
        engine = ShardedEngine(n_shards=n_shards, index="ir2")
        engine.add_all(objects)
        engine.build()
        executions = [engine.search(q) for q in queries]
        answers = [
            sorted((round(r.distance, 9), r.obj.oid) for r in e.results)
            for e in executions
        ]
        random_reads = sum(e.io.random_reads for e in executions)
        seq_reads = sum(e.io.sequential_reads for e in executions)
        nodes = sum(e.nodes_visited for e in executions)
        simulated = sum(e.simulated_ms() for e in executions)
        pruned = sum(
            sum(1 for r in e.shards if r["pruned"]) for e in executions
        )
        rows.append((
            n_shards,
            round(random_reads / N_QUERIES, 1),
            round(seq_reads / N_QUERIES, 1),
            round(nodes / N_QUERIES, 1),
            round(simulated / N_QUERIES, 2),
            round(pruned / N_QUERIES, 2),
        ))
        measured[n_shards] = answers
        engine.close()
    text = format_table(
        ("Shards", "Rand reads/q", "Seq reads/q", "Nodes/q",
         "Simulated ms/q", "Shards pruned/q"),
        rows,
        title=f"Shard scaling: IR2 scatter-gather ({N_OBJECTS} objects, "
              f"{N_QUERIES} queries)",
    )
    emit_text("shard_scaling", text)
    return reference, measured


def test_sharding_preserves_answers(comparison):
    """Every shard count returns the single engine's (distance, oid) sets."""
    reference, measured = comparison
    for n_shards, answers in measured.items():
        for got, expected in zip(answers, reference):
            got_dists = [d for d, _ in got]
            expected_dists = [d for d, _ in expected]
            assert got_dists == expected_dists, f"n_shards={n_shards}"


@pytest.mark.parametrize(
    "n_shards", SHARD_COUNTS, ids=[f"shards{n}" for n in SHARD_COUNTS]
)
def test_shard_query_wallclock(benchmark, comparison, n_shards):
    """Wall-clock of the query batch at each shard count."""
    objects = _corpus()
    engine = (
        ShardedEngine(n_shards=n_shards, index="ir2")
        if n_shards > 1
        else SpatialKeywordEngine(index="ir2")
    )
    engine.add_all(objects)
    engine.build()
    queries = _queries(objects, engine.analyzer)[:8]

    def run():
        for query in queries:
            engine.search(query)

    benchmark.pedantic(run, rounds=2, iterations=1)
    if isinstance(engine, ShardedEngine):
        engine.close()
