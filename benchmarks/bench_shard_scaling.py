"""Shard scaling — scatter-gather fan-out vs one monolithic engine.

Reports per-query latency and aggregate I/O for the same IR2 corpus
served by 1, 2, 4, and 8 shards.  Answers must stay identical (tie-aware)
at every shard count — sharding is an execution strategy, never a
semantics change.  The interesting trade: partition-MBB pruning skips
whole shards (fewer blocks touched at higher counts on clustered data),
while fan-out adds per-shard fixed costs (each opened shard pays its own
root-to-leaf descent).

Run standalone (``python benchmarks/bench_shard_scaling.py``) for the
keyword-routing comparison: the same selective workload (rare query
terms, each held by only a handful of documents) against kd, grid, and
keyword-aware partitioning at a fixed shard count.  The JSON baseline
(``BENCH_PR9.json`` at the repo root) records the per-partitioner
fan-out; ``--check-routing`` gates *within* one run that the keyword
partitioner searches strictly fewer shards than every spatial
partitioner while all answers stay byte-identical to the single-engine
oracle.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

import pytest  # noqa: E402

from repro.bench import format_table  # noqa: E402
from repro.bench.workloads import WorkloadGenerator  # noqa: E402
from repro.core.engine import SpatialKeywordEngine  # noqa: E402
from repro.core.query import SpatialKeywordQuery  # noqa: E402
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator  # noqa: E402
from repro.shard import ShardedEngine  # noqa: E402

N_OBJECTS = 1_500
N_QUERIES = 24
SHARD_COUNTS = (1, 2, 4, 8)

DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_PR9.json")
ROUTING_PARTITIONERS = ("kd", "grid", "keyword")
FULL_ROUTING = dict(n_objects=1_500, n_shards=8, n_queries=24, k=5,
                    min_df=2, max_df=6)
QUICK_ROUTING = dict(n_objects=400, n_shards=4, n_queries=12, k=5,
                     min_df=2, max_df=6)


def _corpus():
    config = DatasetConfig(
        name="shard-scaling",
        n_objects=N_OBJECTS,
        vocabulary_size=3_000,
        avg_unique_words=25,
        clusters=8,
        seed=17,
    )
    return SpatialTextDatasetGenerator(config).generate()


def _queries(objects, analyzer):
    workload = WorkloadGenerator(objects, analyzer, seed=6)
    return workload.queries(N_QUERIES, 2, 10)


@pytest.fixture(scope="module")
def comparison():
    objects = _corpus()
    single = SpatialKeywordEngine(index="ir2")
    single.add_all(objects)
    single.build()
    queries = _queries(objects, single.analyzer)

    reference = [
        sorted((round(r.distance, 9), r.obj.oid) for r in single.search(q).results)
        for q in queries
    ]

    rows = []
    measured = {}
    for n_shards in SHARD_COUNTS:
        engine = ShardedEngine(n_shards=n_shards, index="ir2")
        engine.add_all(objects)
        engine.build()
        executions = [engine.search(q) for q in queries]
        answers = [
            sorted((round(r.distance, 9), r.obj.oid) for r in e.results)
            for e in executions
        ]
        random_reads = sum(e.io.random_reads for e in executions)
        seq_reads = sum(e.io.sequential_reads for e in executions)
        nodes = sum(e.nodes_visited for e in executions)
        simulated = sum(e.simulated_ms() for e in executions)
        pruned = sum(
            sum(1 for r in e.shards if r["pruned"]) for e in executions
        )
        rows.append((
            n_shards,
            round(random_reads / N_QUERIES, 1),
            round(seq_reads / N_QUERIES, 1),
            round(nodes / N_QUERIES, 1),
            round(simulated / N_QUERIES, 2),
            round(pruned / N_QUERIES, 2),
        ))
        measured[n_shards] = answers
        engine.close()
    from conftest import emit_text

    text = format_table(
        ("Shards", "Rand reads/q", "Seq reads/q", "Nodes/q",
         "Simulated ms/q", "Shards pruned/q"),
        rows,
        title=f"Shard scaling: IR2 scatter-gather ({N_OBJECTS} objects, "
              f"{N_QUERIES} queries)",
    )
    emit_text("shard_scaling", text)
    return reference, measured


def test_sharding_preserves_answers(comparison):
    """Every shard count returns the single engine's (distance, oid) sets."""
    reference, measured = comparison
    for n_shards, answers in measured.items():
        for got, expected in zip(answers, reference):
            got_dists = [d for d, _ in got]
            expected_dists = [d for d, _ in expected]
            assert got_dists == expected_dists, f"n_shards={n_shards}"


@pytest.mark.parametrize(
    "n_shards", SHARD_COUNTS, ids=[f"shards{n}" for n in SHARD_COUNTS]
)
def test_shard_query_wallclock(benchmark, comparison, n_shards):
    """Wall-clock of the query batch at each shard count."""
    objects = _corpus()
    engine = (
        ShardedEngine(n_shards=n_shards, index="ir2")
        if n_shards > 1
        else SpatialKeywordEngine(index="ir2")
    )
    engine.add_all(objects)
    engine.build()
    queries = _queries(objects, engine.analyzer)[:8]

    def run():
        for query in queries:
            engine.search(query)

    benchmark.pedantic(run, rounds=2, iterations=1)
    if isinstance(engine, ShardedEngine):
        engine.close()


# ---------------------------------------------------------------------------
# Standalone mode: keyword-aware routing vs spatial partitioning
# ---------------------------------------------------------------------------


def _routing_corpus(n_objects: int):
    config = DatasetConfig(
        name="shard-routing",
        n_objects=n_objects,
        vocabulary_size=3_000,
        avg_unique_words=25,
        clusters=8,
        seed=17,
    )
    return SpatialTextDatasetGenerator(config).generate()


def _selective_queries(objects, analyzer, scale):
    """Rare-term point queries: each term held by only a few documents.

    The query point sits at one holder's location, so the single-engine
    answer is non-trivial; with only ``min_df..max_df`` holders, a
    clustering partitioner can confine each term to one or two shards.
    """
    df: dict[str, int] = {}
    holder: dict[str, tuple] = {}
    for obj in objects:
        for term in analyzer.terms(obj.text):
            df[term] = df.get(term, 0) + 1
            holder.setdefault(term, obj.point)
    rare = sorted(
        term for term, count in df.items()
        if scale["min_df"] <= count <= scale["max_df"]
    )
    if len(rare) < scale["n_queries"]:
        raise RuntimeError(
            f"workload too dense: only {len(rare)} rare terms"
        )
    step = max(1, len(rare) // scale["n_queries"])
    picked = rare[::step][: scale["n_queries"]]
    return [
        SpatialKeywordQuery.of(holder[term], [term], scale["k"])
        for term in picked
    ]


def _answer_key(execution):
    return sorted(
        (round(r.distance, 9), r.obj.oid) for r in execution.results
    )


def run_routing(quick: bool):
    scale = QUICK_ROUTING if quick else FULL_ROUTING
    objects = _routing_corpus(scale["n_objects"])
    single = SpatialKeywordEngine(index="ir2")
    single.add_all(objects)
    single.build()
    queries = _selective_queries(objects, single.analyzer, scale)
    oracle = [_answer_key(single.search(q)) for q in queries]

    cells = []
    table_rows = []
    for partitioner in ROUTING_PARTITIONERS:
        engine = ShardedEngine(
            n_shards=scale["n_shards"], partitioner=partitioner, index="ir2"
        )
        engine.add_all(objects)
        engine.build()
        executions = [engine.search(q) for q in queries]
        searched = [
            sum(1 for r in e.shards if not r["pruned"]) for e in executions
        ]
        kw_pruned = [
            sum(1 for r in e.shards if r.get("pruned_by_keywords"))
            for e in executions
        ]
        mismatches = sum(
            1 for e, want in zip(executions, oracle)
            if _answer_key(e) != want
        )
        random_reads = sum(e.io.random_reads for e in executions)
        nodes = sum(e.nodes_visited for e in executions)
        simulated = sum(e.simulated_ms() for e in executions)
        engine.close()
        n = len(queries)
        cell = {
            "partitioner": partitioner,
            "fanout_avg": round(sum(searched) / n, 3),
            "fanout_max": max(searched),
            "keyword_pruned_avg": round(sum(kw_pruned) / n, 3),
            "random_reads_per_query": round(random_reads / n, 1),
            "nodes_per_query": round(nodes / n, 1),
            "simulated_ms_per_query": round(simulated / n, 3),
            "answer_mismatches": mismatches,
        }
        cells.append(cell)
        table_rows.append((
            partitioner, cell["fanout_avg"], cell["fanout_max"],
            cell["keyword_pruned_avg"], cell["random_reads_per_query"],
            cell["simulated_ms_per_query"], mismatches,
        ))
        print(
            f"[bench] {partitioner}: fan-out {cell['fanout_avg']}/"
            f"{scale['n_shards']} shards, {mismatches} mismatches",
            flush=True,
        )
    print(format_table(
        ("Partitioner", "Fanout avg", "Fanout max", "Kw-pruned avg",
         "Rand reads/q", "Simulated ms/q", "Mismatches"),
        table_rows,
        title=f"Keyword-selective routing: {scale['n_objects']} objects, "
              f"{scale['n_shards']} shards, {len(queries)} rare-term "
              f"queries",
    ))
    return {"scale": dict(scale), "partitioners": cells}


def check_routing(payload) -> list[str]:
    """Within-run gate: keyword fan-out strictly beats every spatial
    partitioner, with zero answer drift anywhere."""
    failures = []
    by_kind = {cell["partitioner"]: cell for cell in payload["partitioners"]}
    keyword = by_kind["keyword"]
    for kind, cell in by_kind.items():
        if cell["answer_mismatches"]:
            failures.append(
                f"{kind}: {cell['answer_mismatches']} answers differ "
                f"from the single-engine oracle"
            )
    for kind in ("kd", "grid"):
        if keyword["fanout_avg"] >= by_kind[kind]["fanout_avg"]:
            failures.append(
                f"keyword fan-out {keyword['fanout_avg']} not below "
                f"{kind} fan-out {by_kind[kind]['fanout_avg']}"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Keyword-aware routing vs spatial partitioning"
    )
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration")
    parser.add_argument("--out", default=None,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--check-routing", action="store_true",
                        help="exit 2 unless the keyword partitioner "
                             "searches strictly fewer shards than every "
                             "spatial partitioner within this run, with "
                             "answers byte-identical to the oracle")
    args = parser.parse_args(argv)

    payload = {
        "benchmark": "keyword-routing",
        "mode": "quick" if args.quick else "full",
        "results": run_routing(args.quick),
    }
    out = args.out or DEFAULT_OUT
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench] wrote {out}")

    if args.check_routing:
        failures = check_routing(payload["results"])
        if failures:
            for failure in failures:
                print(f"[bench] FAIL: {failure}", file=sys.stderr)
            return 2
        print("[bench] routing gate passed: keyword fan-out beats every "
              "spatial partitioner, answers identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
