"""Figure 10 — varying the number of query keywords, Hotels dataset.

Paper setup: k=10, 189-byte signatures, 1-5 keywords.  More keywords
shrink the conjunctive answer set, so IIO *improves* (shorter inverted
lists to intersect and fewer objects to fetch) while the R-Tree baseline
degrades (more neighbors fail the filter before k matches are found).
"""

from __future__ import annotations

import pytest

from conftest import emit_sweep
from repro.bench import ALGORITHMS, queries_per_point, run_sweep
from repro.bench.workloads import truncate_keywords

KEYWORD_COUNTS = (1, 2, 3, 4, 5)
K = 10


@pytest.fixture(scope="module")
def sweep(hotels):
    base = hotels.workload.queries(queries_per_point(), max(KEYWORD_COUNTS), K)
    result = run_sweep(
        hotels,
        "Figure 10 (Hotels): vary #keywords, k=10, 189-byte signatures",
        "keywords",
        KEYWORD_COUNTS,
        lambda m: truncate_keywords(base, m),
        algorithms=ALGORITHMS,
    )
    emit_sweep("fig10_vary_keywords_hotels", result)
    return result


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig10_query_wallclock(benchmark, hotels, sweep, algorithm):
    """Wall-clock time of a 2-keyword query batch per algorithm."""
    base = hotels.workload.queries(queries_per_point(), max(KEYWORD_COUNTS), K)
    queries = truncate_keywords(base, 2)
    benchmark.pedantic(
        lambda: hotels.run_queries(algorithm, queries), rounds=3, iterations=1
    )


def test_fig10_shape_iio_improves_with_keywords(hotels, sweep):
    """IIO inspects no more objects at 5 keywords than at 1 (Section VI)."""
    iio = sweep.table("object_accesses").column("IIO")
    assert iio[-1] <= iio[0]


def test_fig10_shape_ir2_beats_rtree(hotels, sweep):
    """Signature pruning must pay off at every keyword count."""
    rtree = sweep.table("simulated_ms").column("RTREE")
    ir2 = sweep.table("simulated_ms").column("IR2")
    assert all(i <= r for i, r in zip(ir2, rtree))
