#!/usr/bin/env python3
"""Anatomy of the IR2-Tree's signatures — why the MIR2-Tree exists.

Section IV: with one signature length everywhere, higher IR2-Tree levels
"have more 1's (since they are the superimpositions of the lower levels)"
and therefore produce more false positives.  This example builds an
IR2-Tree and an MIR2-Tree over the same corpus and prints, per level:
how full the signatures are, the estimated probability a random keyword
falsely matches, and the per-level lengths the MIR2-Tree chose.

Run:
    python examples/signature_anatomy.py
"""

from __future__ import annotations

from repro.core import Corpus, IR2Index, MIR2Index
from repro.core.diagnostics import estimated_false_positive_rates, signature_saturation
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator

N_OBJECTS = 1_200
SIGNATURE_BYTES = 8


def main() -> None:
    config = DatasetConfig(
        name="anatomy",
        n_objects=N_OBJECTS,
        vocabulary_size=3_000,
        avg_unique_words=20,
        seed=99,
    )
    corpus = Corpus()
    corpus.add_all(SpatialTextDatasetGenerator(config).generate())
    print(f"corpus: {len(corpus)} objects, "
          f"{corpus.vocabulary.unique_words} distinct words, "
          f"{SIGNATURE_BYTES}-byte leaf signatures\n")

    for make in (
        lambda: IR2Index(corpus, SIGNATURE_BYTES, capacity=16),
        lambda: MIR2Index(corpus, SIGNATURE_BYTES, capacity=16),
    ):
        index = make()
        index.build()
        tree = index.tree
        print(f"{index.label}-Tree (height {tree.height}):")
        print(f"  {'level':>5}  {'nodes':>5}  {'sig bits':>8}  "
              f"{'mean fill':>9}  {'est. FP rate':>12}")
        rates = estimated_false_positive_rates(tree, bits_per_word=3)
        for row in signature_saturation(tree):
            print(f"  {row.level:>5}  {row.nodes:>5}  {row.signature_bits:>8}  "
                  f"{row.mean_fill:>9.3f}  {rates[row.level]:>12.4f}")
        print()

    print(
        "reading the tables: the IR2-Tree's root-level signatures are "
        "nearly all 1s — a random keyword 'matches' them almost surely, "
        "so the top of the tree cannot prune.  The MIR2-Tree grows the "
        "signature length with the level (right column of its table) and "
        "keeps every level near the half-full design point, at the price "
        "of much larger nodes and expensive maintenance."
    )


if __name__ == "__main__":
    main()
