#!/usr/bin/env python3
"""IR2-Tree vs MIR2-Tree maintenance (Section IV's trade-off).

The MIR2-Tree prunes better (optimal per-level signature lengths) but,
because a parent signature cannot be derived from children of a different
length, every Insert/Delete must re-read all objects under each affected
ancestor.  The paper's verdict: "for frequently updated datasets,
IR2-Tree is the choice."

This example builds both trees over the same corpus, applies a stream of
updates, and prints the measured disk traffic of each — followed by a
query-cost comparison showing what the MIR2-Tree buys in return.

Run:
    python examples/index_maintenance.py
"""

from __future__ import annotations

from repro.core import Corpus, IR2Index, MIR2Index
from repro.core.query import SpatialKeywordQuery
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator

N_OBJECTS = 600
N_UPDATES = 25


def main() -> None:
    config = DatasetConfig(
        name="maintenance-demo",
        n_objects=N_OBJECTS + N_UPDATES,
        vocabulary_size=2_500,
        avg_unique_words=25,
        seed=42,
    )
    objects = SpatialTextDatasetGenerator(config).generate()
    corpus = Corpus()
    pointers = corpus.add_all(objects)
    base = list(zip(pointers[:N_OBJECTS], objects[:N_OBJECTS]))
    stream = list(zip(pointers[N_OBJECTS:], objects[N_OBJECTS:]))

    print(f"corpus: {len(corpus)} objects, "
          f"{corpus.vocabulary.unique_words} distinct words\n")

    for make in (lambda: IR2Index(corpus, 16), lambda: MIR2Index(corpus, 16)):
        index = make()
        index.build()
        # Keep only the base objects in the tree.
        for pointer, obj in stream:
            index.delete_object(pointer, obj)
        index.reset_io()

        # --- Measure the update stream. ---
        before_tree = index.device.stats.snapshot()
        before_objects = corpus.device.stats.snapshot()
        for pointer, obj in stream:
            index.insert_object(pointer, obj)
        for pointer, obj in stream:
            index.delete_object(pointer, obj)
        tree_io = index.device.stats.diff(before_tree)
        object_io = corpus.device.stats.diff(before_objects)

        ops = 2 * len(stream)
        print(f"{index.label}: {ops} updates")
        print(f"  tree blocks touched : {tree_io.total_accesses / ops:8.1f} per op")
        print(f"  objects re-read     : {object_io.objects_loaded / ops:8.1f} per op")

        # --- Measure query cost on the same tree. ---
        for pointer, obj in stream:
            index.insert_object(pointer, obj)
        index.reset_io()
        anchor = objects[7]
        keywords = sorted(corpus.analyzer.terms(anchor.text))[:2]
        query = SpatialKeywordQuery.of((0.0, 0.0), keywords, 10)
        execution = index.execute(query)
        print(f"  query {keywords!r}: {execution.io.random.total} random + "
              f"{execution.io.sequential.total} sequential accesses, "
              f"{execution.objects_inspected} objects inspected\n")

    print("the MIR2-Tree pays object re-reads on every update; "
          "the IR2-Tree's updates touch only the insertion path.")


if __name__ == "__main__":
    main()
