#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds an IR2-Tree over the Figure-1 hotel dataset and runs the query from
the paper's Examples 2/3 — "top-2 hotels from point [30.5, 100.0]
containing the keywords {internet, pool}" — then shows a ranked (general)
query and live index maintenance.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SpatialKeywordEngine
from repro.datasets import figure1_hotels


def main() -> None:
    # 1. Create an engine backed by an IR2-Tree with 16-byte signatures.
    engine = SpatialKeywordEngine(index="ir2", signature_bytes=16)

    # 2. Load the paper's Figure-1 hotels and build the index.
    engine.add_all(figure1_hotels())
    engine.build()
    print(f"indexed {len(engine)} hotels, "
          f"index size {engine.index_size_mb() * 1024:.1f} KB")

    # 3. The distance-first query of the paper's Example 3.
    execution = engine.query(
        point=(30.5, 100.0), keywords=["internet", "pool"], k=2
    )
    print("\ntop-2 hotels with internet AND pool, nearest to [30.5, 100.0]:")
    for rank, result in enumerate(execution.results, start=1):
        print(f"  {rank}. H{result.obj.oid}  distance={result.distance:7.1f}  "
              f"'{result.obj.text}'")
    print(f"cost: {execution.summary()}")
    assert execution.oids == [7, 2], "must match the paper's Example 3"

    # 4. A general ranked query: trade distance against text relevance.
    ranked = engine.query_ranked(
        point=(30.5, 100.0), keywords=["internet", "pool"], k=3
    )
    print("\nranked by f(distance, IRscore):")
    for rank, result in enumerate(ranked.results, start=1):
        print(f"  {rank}. H{result.obj.oid}  score={result.score:.4f}  "
              f"ir={result.ir_score:.4f}  distance={result.distance:.1f}")

    # 5. Live maintenance: a new hotel opens next to the query point...
    engine.add_object(9, (30.6, 100.1), "Hotel I internet pool rooftop bar")
    execution = engine.query((30.5, 100.0), ["internet", "pool"], k=2)
    print(f"\nafter inserting H9: top-2 = {['H%d' % o for o in execution.oids]}")
    assert execution.oids == [9, 7]

    # ...and closes again.
    engine.delete(9)
    execution = engine.query((30.5, 100.0), ["internet", "pool"], k=2)
    print(f"after deleting H9:  top-2 = {['H%d' % o for o in execution.oids]}")
    assert execution.oids == [7, 2]


if __name__ == "__main__":
    main()
