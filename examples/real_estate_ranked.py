#!/usr/bin/env python3
"""Real-estate search with the *general* ranked query (Section V.C).

"Real estate web sites allow users to search for properties with specific
keywords in their description and rank them according to their distance
from a specified location." (Section I)

Unlike the distance-first query, the general top-k query does not require
every keyword: listings are ranked by a combination
``f(distance, IRscore)``, so a slightly farther property that matches the
description better can win.  This example contrasts the two semantics on
the same listings and shows how the ranking function's distance weight
changes the answer.

Run:
    python examples/real_estate_ranked.py
"""

from __future__ import annotations

from repro import DistanceDecayRanking, SpatialKeywordEngine


LISTINGS = [
    # oid, (lat, lon), description
    (1, (40.720, -73.995), "sunny loft exposed brick renovated kitchen elevator"),
    (2, (40.728, -73.991), "garden duplex renovated kitchen dishwasher pets allowed"),
    (3, (40.731, -74.002), "studio near subway laundry elevator doorman"),
    (4, (40.741, -73.988), "penthouse terrace renovated kitchen dishwasher elevator gym"),
    (5, (40.705, -74.010), "historic brownstone fireplace garden original details"),
    (6, (40.735, -73.980), "renovated kitchen stainless appliances dishwasher balcony"),
    (7, (40.760, -73.970), "luxury tower gym pool doorman valet concierge"),
    (8, (40.712, -73.957), "brooklyn loft artist space high ceilings freight elevator"),
    (9, (40.725, -73.998), "cozy one bedroom laundry pets allowed near subway"),
    (10, (40.738, -73.993), "renovated kitchen dishwasher elevator pets allowed gym"),
]

#: Office of the hypothetical buyer (Washington Square Park).
BUYER_LOCATION = (40.731, -73.997)

WANTS = ["renovated kitchen", "dishwasher", "elevator"]


def main() -> None:
    engine = SpatialKeywordEngine(index="ir2", signature_bytes=16)
    for oid, point, description in LISTINGS:
        engine.add_object(oid, point, description)
    engine.build()

    print(f"buyer at {BUYER_LOCATION} wants: {', '.join(WANTS)}\n")

    # Distance-first (conjunctive): every keyword required.
    strict = engine.query(BUYER_LOCATION, WANTS, k=5)
    print("distance-first (ALL keywords required):")
    for rank, r in enumerate(strict.results, start=1):
        print(f"  {rank}. listing #{r.obj.oid}  {r.distance * 111:.2f} km  "
              f"- {r.obj.text}")
    if not strict.results:
        print("  (no listing has every keyword)")

    # General ranked query: partial matches allowed, graded by idf.
    for half_km in (0.5, 5.0):
        ranking = DistanceDecayRanking(half_distance=half_km / 111.0)
        ranked = engine.query_ranked(
            BUYER_LOCATION, WANTS, k=5, ranking=ranking
        )
        print(f"\nranked, relevance halves every {half_km:.1f} km:")
        for rank, r in enumerate(ranked.results, start=1):
            print(f"  {rank}. listing #{r.obj.oid}  score={r.score:.4f}  "
                  f"ir={r.ir_score:.3f}  {r.distance * 111:.2f} km  "
                  f"- {r.obj.text}")

    print(
        "\nwith a tight distance decay the nearby partial matches win; "
        "with a loose one the best-described properties bubble up even "
        "when farther away."
    )


if __name__ == "__main__":
    main()
