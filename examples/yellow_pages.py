#!/usr/bin/env python3
"""Online yellow pages: the paper's motivating application at scale.

"Online yellow pages allow users to specify an address and a set of
keywords.  In return, the user obtains a list of businesses whose
description contains these keywords, ordered by their distance from the
specified address." (Section I)

This example generates a synthetic city of businesses (a scaled
Restaurants-like corpus), builds all four index structures over it, and
serves the same queries from each — printing the answers once and the
per-algorithm cost so the IR2-Tree's advantage is visible on real output.

Run:
    python examples/yellow_pages.py [n_businesses]
"""

from __future__ import annotations

import sys

from repro.core import Corpus, IIOIndex, IR2Index, MIR2Index, RTreeIndex
from repro.core.query import SpatialKeywordQuery
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator


def build_city(n_businesses: int) -> tuple[Corpus, list]:
    """A synthetic city: clustered businesses with short descriptions."""
    config = DatasetConfig(
        name="city",
        n_objects=n_businesses,
        vocabulary_size=max(500, n_businesses // 4),
        avg_unique_words=12,
        clusters=12,
        cluster_std=1.5,
        extent=((25.60, 26.00), (-80.40, -80.00)),  # greater Miami
        seed=2008,
    )
    objects = SpatialTextDatasetGenerator(config).generate()
    corpus = Corpus()
    corpus.add_all(objects)
    return corpus, objects


def main() -> None:
    n_businesses = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    corpus, objects = build_city(n_businesses)
    print(f"city with {len(corpus)} businesses, "
          f"{corpus.vocabulary.unique_words} distinct description words")

    indexes = [
        RTreeIndex(corpus),
        IIOIndex(corpus),
        IR2Index(corpus, signature_bytes=8),
        MIR2Index(corpus, leaf_signature_bytes=8),
    ]
    for index in indexes:
        index.build()
        index.reset_io()

    # A user at a downtown address searches for two amenity keywords that
    # some business actually offers together.
    address = (25.77, -80.19)
    anchor = objects[len(objects) // 2]
    keywords = sorted(corpus.analyzer.terms(anchor.text))[:2]
    query = SpatialKeywordQuery.of(address, keywords, k=5)
    print(f"\nuser at {address} searches for {keywords!r}, top-5:\n")

    reference = None
    for index in indexes:
        execution = index.execute(query)
        if reference is None:
            reference = execution.oids
            for rank, result in enumerate(execution.results, start=1):
                print(f"  {rank}. business #{result.obj.oid} at "
                      f"({result.obj.point[0]:.4f}, {result.obj.point[1]:.4f}) "
                      f"distance {result.distance * 111:.2f} km*")
            print("\n  (* rough degrees-to-km conversion for display)\n")
        else:
            assert execution.oids == reference, "all algorithms must agree"
        print(f"  {index.label:>5}: {execution.io.random.total:5d} random + "
              f"{execution.io.sequential.total:5d} sequential block accesses, "
              f"{execution.objects_inspected:5d} objects inspected, "
              f"{execution.simulated_ms():9.1f} ms simulated disk time")

    print("\nall four algorithms returned identical results; "
          "the IR2/MIR2 trees did it with the least disk work.")


if __name__ == "__main__":
    main()
