#!/usr/bin/env python3
"""Sharded scatter-gather: one dataset, N engines, identical answers.

Partitions a synthetic city across four IR2-Tree shards with the
kd-partitioner, then:

* verifies sharded answers equal the single engine's, query for query,
* shows the per-shard cost breakdown — including shards pruned outright
  by their partition bounding box,
* round-trips the whole sharded layout through save/load,
* serves the sharded engine through the concurrent `QueryService`.

Run:
    python examples/sharded_engine.py
"""

from __future__ import annotations

import tempfile

from repro import ShardedEngine, SpatialKeywordEngine
from repro.bench.workloads import WorkloadGenerator
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.persist import load_engine, save_engine

N_OBJECTS = 1_200
N_SHARDS = 4
N_QUERIES = 12


def build_corpus():
    config = DatasetConfig(
        name="city",
        n_objects=N_OBJECTS,
        vocabulary_size=max(300, N_OBJECTS // 4),
        avg_unique_words=10,
        clusters=8,
        seed=2008,
    )
    return SpatialTextDatasetGenerator(config).generate()


def main() -> None:
    objects = build_corpus()

    single = SpatialKeywordEngine(index="ir2")
    single.add_all(objects)
    single.build()

    sharded = ShardedEngine(n_shards=N_SHARDS, partitioner="kd", index="ir2")
    sharded.add_all(objects)
    sharded.build()
    print(f"engines: IR2 over {len(single)} objects, "
          f"single vs {N_SHARDS} kd-partitioned shards")

    workload = WorkloadGenerator(objects, single.analyzer, seed=42)
    queries = workload.queries(N_QUERIES, num_keywords=2, k=5)

    pruned_total = 0
    for query in queries:
        ref = single.search(query)
        got = sharded.search(query)
        ref_dists = sorted(round(r.distance, 9) for r in ref.results)
        got_dists = sorted(round(r.distance, 9) for r in got.results)
        assert got_dists == ref_dists, (query.keywords, got.oids, ref.oids)
        pruned_total += sum(1 for report in got.shards if report["pruned"])
    print(f"answers identical on {N_QUERIES} queries "
          f"({pruned_total} shard visits pruned by partition MBBs)")

    execution = sharded.search(queries[0])
    print(f"\n{execution.summary()}")
    for report in execution.shards:
        status = "pruned" if report["pruned"] else (
            f"{report['nodes_visited']} nodes, "
            f"{report['objects_inspected']} objects"
        )
        print(f"  shard {report['shard']}: {status}")

    with tempfile.TemporaryDirectory() as directory:
        save_engine(sharded, directory)
        reloaded = load_engine(directory)
        assert reloaded.search(queries[0]).oids == execution.oids
        print(f"\nsave/load round-trip OK (manifest v2, {N_SHARDS} shard dirs)")
        reloaded.close()

    with sharded.serve(workers=4) as service:
        batch = service.run_batch(queries)
        assert [e.oids for e in batch] == [
            sharded.search(q).oids for q in queries
        ]
        print(f"served {service.stats().queries} queries concurrently "
              "over the sharded engine")
    sharded.close()


if __name__ == "__main__":
    main()
