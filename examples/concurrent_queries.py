#!/usr/bin/env python3
"""Concurrent serving: a query fleet against one engine, with tracing.

The paper's algorithms answer one query at a time; the `repro.serve`
layer dispatches many at once while keeping those algorithms unmodified.
This example builds an IR2-Tree over a synthetic city, replays a
deterministic hot/cold workload (half the traffic repeats a small set of
popular queries — exactly what a result cache loves) through a
`QueryService` with 8 workers, then:

* verifies the concurrent answers equal serial execution,
* verifies the per-query I/O deltas sum to the device totals,
* prints the service summary and a few per-query trace spans,
* replays the same workload through the batch front-end
  (`submit_many` + shared-read sessions) and shows the device reads
  drop while the answers stay identical,
* demonstrates cache invalidation by inserting a new object.

Run:
    python examples/concurrent_queries.py
"""

from __future__ import annotations

from repro import SpatialKeywordEngine
from repro.bench.workloads import ConcurrentLoadGenerator
from repro.datasets import DatasetConfig, SpatialTextDatasetGenerator
from repro.serve import BatchConfig, QueryService

N_OBJECTS = 1_500
N_QUERIES = 64
WORKERS = 8


def build_engine() -> tuple[SpatialKeywordEngine, list]:
    config = DatasetConfig(
        name="city",
        n_objects=N_OBJECTS,
        vocabulary_size=max(300, N_OBJECTS // 4),
        avg_unique_words=10,
        clusters=8,
        seed=2008,
    )
    objects = SpatialTextDatasetGenerator(config).generate()
    engine = SpatialKeywordEngine(index="ir2", signature_bytes=16)
    engine.add_all(objects)
    engine.build()
    return engine, objects


def main() -> None:
    engine, objects = build_engine()
    print(f"engine: IR2 over {len(engine)} objects")

    workload = ConcurrentLoadGenerator(objects, engine.corpus.analyzer, seed=42)
    batch = workload.batch(N_QUERIES, num_keywords=2, k=5, hot_fraction=0.5)

    # Serial ground truth first (the service must reproduce it exactly).
    serial = [engine.query(q.point, q.keywords, k=q.k) for q in batch]

    engine.reset_io()
    with QueryService(engine, workers=WORKERS, cache=True) as service:
        executions = service.run_batch(batch)
        stats = service.stats()

    for s, p in zip(serial, executions):
        assert p.oids == s.oids, "concurrent answers diverged from serial!"
    print(f"{N_QUERIES} concurrent answers identical to serial execution")

    totals = engine.io_stats()
    per_query_reads = sum(e.io.total_reads for e in executions)
    assert per_query_reads == totals.total_reads
    print(f"per-query I/O sums to device totals: {per_query_reads} reads")

    print()
    print(f"service summary: {stats.summary()}")
    print(f"cache hit rate: {stats.cache_hit_rate:.0%} "
          f"({stats.cache_hits} of {N_QUERIES})")

    print()
    print("slowest three executions by search time:")
    spans = sorted(
        (e.trace for e in executions), key=lambda s: s.search_ms, reverse=True
    )
    for span in spans[:3]:
        print(f"  #{span.query_id:3d} {span.cache:6s} "
              f"wait {span.queue_wait_ms:7.2f} ms  "
              f"search {span.search_ms:7.2f} ms  "
              f"{span.random_reads}r+{span.sequential_reads}s reads  "
              f"keywords={list(span.keywords)}")

    # The batch front-end: the same workload through submit_many runs
    # each group under one shared-read session, so blocks touched by
    # several queries of a group hit the device once.
    unbatched_reads = totals.total_reads
    engine.reset_io()
    with QueryService(
        engine, workers=WORKERS, cache=False,
        batching=BatchConfig(max_batch=16),
    ) as service:
        batched = service.run_batch(batch)
        bstats = service.stats()
    for s, p in zip(serial, batched):
        assert p.oids == s.oids, "batched answers diverged from serial!"
    btotals = engine.io_stats()
    print()
    print(f"batched: {bstats.batches} groups, {bstats.coalesced} coalesced, "
          f"{bstats.io.shared_reads} reads shared within groups")
    print(f"device reads: {btotals.total_reads} batched (uncached) vs "
          f"{unbatched_reads} unbatched-with-cache — answers identical")

    # Mutations invalidate the cache: repeat a hot query, insert, repeat.
    hot = batch[0]
    with QueryService(engine, workers=2, cache=True) as service:
        service.search(hot)
        repeat = service.search(hot)
        assert repeat.trace.cache == "hit"
        service.add_object(10**6, hot.point, " ".join(hot.keywords))
        fresh = service.search(hot)
        assert fresh.trace.cache == "miss"
        assert fresh.oids[0] == 10**6
    print()
    print("cache invalidation: hit before insert, miss after, "
          "new object ranked first")


if __name__ == "__main__":
    main()
