"""Command-line interface: ``python -m repro <command>``.

Five subcommands cover the typical lifecycle:

``generate``
    Write a synthetic dataset (Hotels/Restaurants statistics) as a
    tab-delimited file — or convert nothing: any TSV of
    ``id <TAB> lat <TAB> lon <TAB> text`` works as input to ``build``.

``build``
    Index a TSV dataset into a persistent engine directory.

``query``
    Run a distance-first (or ranked) top-k spatial keyword query against
    a saved engine and print results plus the paper's cost metrics.

``stats``
    Print dataset statistics (Table 1 shape) and the index footprint for
    a saved engine.

``serve``
    Replay a concurrent query workload against a saved engine through the
    :mod:`repro.serve` service layer (thread pool + result cache) and
    report throughput, cache, and latency statistics; ``--batched``
    routes the workload through the batch front-end (grouping,
    duplicate coalescing, shared block reads), ``--serve-trace`` dumps
    every per-query trace span as JSON, ``--serve-metrics`` the metrics
    snapshot (histograms, counters, gauges) plus the slow-query log.

``metrics``
    Probe a saved engine with a small seeded workload and print the
    resulting metrics snapshot as JSON — the quickest way to see which
    metric names and histogram buckets a deployment exports.
    ``--prometheus`` prints the snapshot in the Prometheus text
    exposition format instead.

``workload``
    Analyze a captured query log (``serve --query-log``): term
    frequency and co-occurrence, selectivity bands, spatial hot-spot
    histogram, planner won/lost aggregates, I/O and latency
    distributions.  ``--json`` exports the machine-readable report
    that query-log-driven repartitioning and learned cost models
    consume.

``replay``
    Deterministically re-execute a captured query log against a saved
    engine — optionally repartitioned (``--shards``/``--partitioner``)
    or batched — and diff every answer against its recorded digest.
    Exits non-zero on any mismatch or an I/O-per-query regression
    beyond ``--io-threshold``: the workload regression gate.

``trace``
    Run one query under the hierarchical tracer and print its span tree
    as a text cost report — per tree level, how many nodes were visited
    and how many entries the signatures pruned; how many objects were
    loaded and how many were false positives; the random/sequential
    block-read split.  ``--chrome`` additionally writes the trace as
    Chrome trace-event JSON for Perfetto / ``chrome://tracing``.

``verify``
    Check an on-disk engine directory's integrity: manifest parse and
    version, per-file SHA-256 digests, shard layout, and a full load.
    Exits non-zero on any corruption.

``plan explain``
    Price one query under every candidate strategy of an adaptive
    (``--index auto``) engine and show which one the cost-based planner
    picks, with the statistics (keyword document frequencies, spatial
    density, selectivity) the estimates came from.  Per shard for a
    sharded engine.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import SpatialKeywordEngine
from repro.core.corpus import CorpusStats
from repro.datasets import (
    SpatialTextDatasetGenerator,
    hotels_config,
    iter_tsv,
    restaurants_config,
    save_tsv,
)
from repro.errors import ReproError
from repro.persist import load_engine, save_engine, verify_engine
from repro.shard import ShardedEngine


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k spatial keyword search (IR2-Tree reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic dataset as a TSV file"
    )
    generate.add_argument("--dataset", choices=("hotels", "restaurants"),
                          default="hotels")
    generate.add_argument("--scale", type=float, default=0.01,
                          help="fraction of the paper's object count")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="output TSV path")

    build = commands.add_parser(
        "build", help="index a TSV dataset into an engine directory"
    )
    build.add_argument("--data", required=True, help="input TSV path")
    build.add_argument("--out", required=True, help="engine directory")
    build.add_argument("--index",
                       choices=("rtree", "iio", "ir2", "mir2", "sig", "auto"),
                       default="ir2")
    build.add_argument("--auto-kinds", nargs="+", metavar="KIND",
                       help="candidate strategies for --index auto "
                            "(default: ir2 iio)")
    build.add_argument("--signature-bytes", type=int, default=16)
    build.add_argument("--bits-per-word", type=int, default=3)
    build.add_argument("--block-size", type=int, default=4096)
    build.add_argument("--compression", choices=("raw", "varint"),
                       default="raw",
                       help="IIO posting codec (ignored by other indexes)")
    build.add_argument("--insert-build", action="store_true",
                       help="build by repeated insertion instead of bulk load")
    build.add_argument("--shards", type=int, default=1,
                       help="partition the dataset across N engines "
                            "(1 = a plain single engine)")
    build.add_argument("--partitioner", choices=("kd", "grid", "keyword"),
                       default="kd",
                       help="partitioning strategy for --shards > 1: spatial "
                            "kd/grid, or keyword-aware term clustering")

    query = commands.add_parser(
        "query", help="run a top-k spatial keyword query"
    )
    query.add_argument("--engine", required=True, help="engine directory")
    query.add_argument("--point", nargs=2, type=float, required=True,
                       metavar=("LAT", "LON"))
    query.add_argument("--keywords", nargs="+", required=True)
    query.add_argument("-k", type=int, default=10)
    query.add_argument("--ranked", action="store_true",
                       help="rank by f(distance, IRscore) instead of "
                            "conjunctive distance-first")
    query.add_argument("--json", action="store_true",
                       help="print the full execution payload as JSON "
                            "instead of the human-readable listing")

    stats = commands.add_parser(
        "stats", help="dataset and index statistics for a saved engine"
    )
    stats.add_argument("--engine", required=True, help="engine directory")

    serve = commands.add_parser(
        "serve", help="replay a concurrent workload through the service layer"
    )
    serve.add_argument("--engine", required=True, help="engine directory")
    serve.add_argument("--queries", type=int, default=64,
                       help="number of queries in the batch")
    serve.add_argument("--workers", type=int, default=8,
                       help="query worker threads")
    serve.add_argument("--num-keywords", type=int, default=2)
    serve.add_argument("-k", type=int, default=10)
    serve.add_argument("--seed", type=int, default=42,
                       help="workload RNG seed")
    serve.add_argument("--hot-fraction", type=float, default=0.5,
                       help="fraction of the batch repeating a hot query set")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    serve.add_argument("--serve-trace", metavar="PATH",
                       help="write per-query trace spans and execution "
                            "payloads as JSON to PATH")
    serve.add_argument("--serve-metrics", metavar="PATH",
                       help="write the metrics snapshot (per-stage latency "
                            "histograms, fan-out counters, storage gauges) "
                            "and the slow-query log as JSON to PATH")
    serve.add_argument("--slow-query-ms", type=float, default=100.0,
                       help="total-latency threshold for the slow-query log")
    serve.add_argument("--shards", type=int, default=0,
                       help="re-partition the loaded engine across N shards "
                            "before serving (0 = keep the saved layout)")
    serve.add_argument("--trace-sample", type=int, default=0, metavar="N",
                       help="hierarchically trace every Nth query (plus "
                            "anything over --slow-query-ms); 0 disables "
                            "the tracer unless --trace-export is given")
    serve.add_argument("--trace-export", metavar="PATH",
                       help="write the retained span trees as Chrome "
                            "trace-event JSON to PATH (implies sampling, "
                            "default every 8th query)")
    serve.add_argument("--batched", action="store_true",
                       help="serve through the batch front-end: group "
                            "submissions, coalesce duplicates, and share "
                            "block reads within each group")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="arrival window before a batch group flushes "
                            "(implies --batched when set)")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="maximum queries per batch group")
    serve.add_argument("--maintenance", choices=["snapshot", "rwlock"],
                       default="snapshot",
                       help="write maintenance mode: 'snapshot' (versioned "
                            "copy-on-write reads, writers never block "
                            "readers) or 'rwlock' (legacy readers-writer "
                            "lock)")
    serve.add_argument("--merge-threshold", type=int, default=64,
                       metavar="N",
                       help="buffered writes that trigger a background "
                            "merge in snapshot mode")
    serve.add_argument("--writes", type=int, default=0, metavar="N",
                       help="stream N insert+delete pairs concurrently with "
                            "the query workload (exercises online "
                            "maintenance)")
    serve.add_argument("--max-pending", type=int, default=0,
                       help="admission bound: shed submissions beyond this "
                            "many in flight (0 = never shed)")
    serve.add_argument("--query-log", metavar="PATH",
                       help="capture every answered query as one JSON-lines "
                            "record at PATH (shape, plan, fan-out, I/O, "
                            "latency, result digest) for later 'workload' "
                            "analysis and 'replay' regression gating")
    serve.add_argument("--query-log-sample", type=int, default=1,
                       metavar="N",
                       help="capture every Nth query (bounds logging "
                            "overhead on hot services; default 1 = all)")

    metrics = commands.add_parser(
        "metrics", help="probe a saved engine and print its metrics snapshot"
    )
    metrics.add_argument("directory", help="engine directory to probe")
    metrics.add_argument("--queries", type=int, default=32,
                         help="probe workload size")
    metrics.add_argument("--workers", type=int, default=4,
                         help="query worker threads for the probe")
    metrics.add_argument("--seed", type=int, default=42,
                         help="probe workload RNG seed")
    metrics.add_argument("--out", metavar="PATH",
                         help="also write the snapshot JSON to PATH")
    metrics.add_argument("--prometheus", action="store_true",
                         help="print the metrics snapshot in the Prometheus "
                              "text exposition format instead of JSON")

    workload = commands.add_parser(
        "workload", help="analyze a captured query log"
    )
    workload.add_argument("log", help="query log path (serve --query-log)")
    workload.add_argument("--json", metavar="PATH",
                          help="also write the machine-readable report to "
                               "PATH ('-' prints JSON to stdout)")
    workload.add_argument("--top", type=int, default=32,
                          help="terms / co-occurring pairs to keep")
    workload.add_argument("--cells", type=int, default=8,
                          help="hot-spot histogram cells per dimension")

    replay = commands.add_parser(
        "replay", help="re-execute a captured query log and diff the answers"
    )
    replay.add_argument("log", help="query log path (serve --query-log)")
    replay.add_argument("engine", help="engine directory to replay against")
    replay.add_argument("--shards", type=int, default=0,
                        help="re-partition the loaded engine across N shards "
                             "before replaying (0 = keep the saved layout)")
    replay.add_argument("--partitioner", choices=("kd", "grid", "keyword"),
                        default="kd",
                        help="partitioning strategy for --shards > 1")
    replay.add_argument("--workers", type=int, default=1,
                        help="query worker threads (1 = deterministic "
                             "serial replay)")
    replay.add_argument("--batched", action="store_true",
                        help="replay through the batch front-end in "
                             "--max-batch groups")
    replay.add_argument("--max-batch", type=int, default=16)
    replay.add_argument("--maintenance", choices=("snapshot", "rwlock"),
                        default="snapshot")
    replay.add_argument("--no-cache", action="store_true",
                        help="disable the result cache during replay")
    replay.add_argument("--io-threshold", type=float, default=1.5,
                        help="maximum allowed replayed/recorded total-reads "
                             "ratio (0 disables the cost gate)")
    replay.add_argument("--limit", type=int, default=0,
                        help="replay only the first N records (0 = all)")
    replay.add_argument("--json", metavar="PATH",
                        help="also write the replay report to PATH "
                             "('-' prints JSON to stdout)")

    trace = commands.add_parser(
        "trace", help="explain one query's cost as a span tree"
    )
    trace.add_argument("--engine", required=True, help="engine directory")
    trace.add_argument("--point", nargs=2, type=float, required=True,
                       metavar=("LAT", "LON"))
    trace.add_argument("--keywords", nargs="+", required=True)
    trace.add_argument("-k", type=int, default=10)
    trace.add_argument("--ranked", action="store_true",
                       help="rank by f(distance, IRscore) instead of "
                            "conjunctive distance-first")
    trace.add_argument("--chrome", metavar="PATH",
                       help="also write the trace as Chrome trace-event "
                            "JSON to PATH (Perfetto-loadable)")
    trace.add_argument("--json", action="store_true",
                       help="print the span tree as JSON instead of the "
                            "text report")

    verify = commands.add_parser(
        "verify", help="check an on-disk engine directory's integrity"
    )
    verify.add_argument("directory", help="engine directory to check")
    verify.add_argument("--json", action="store_true",
                        help="print the full verification report as JSON")
    verify.add_argument("--no-load", action="store_true",
                        help="digest and layout checks only; skip the "
                             "full engine load")

    plan = commands.add_parser(
        "plan", help="inspect the adaptive planner's routing decisions"
    )
    plan_commands = plan.add_subparsers(dest="plan_command", required=True)
    explain = plan_commands.add_parser(
        "explain",
        help="price one query under every candidate strategy",
    )
    explain.add_argument("--engine", required=True, help="engine directory")
    explain.add_argument("--point", nargs=2, type=float, required=True,
                         metavar=("LAT", "LON"))
    explain.add_argument("--keywords", nargs="+", required=True)
    explain.add_argument("-k", type=int, default=10)
    explain.add_argument("--ranked", action="store_true",
                         help="price the ranked execution path instead of "
                              "the conjunctive distance-first one")
    explain.add_argument("--json", action="store_true",
                         help="print the full breakdown as JSON")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "build":
            return _cmd_build(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "workload":
            return _cmd_workload(args)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "plan":
            return _cmd_plan(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0  # pragma: no cover - argparse enforces a command


def _cmd_generate(args) -> int:
    config_factory = hotels_config if args.dataset == "hotels" else restaurants_config
    config = config_factory(scale=args.scale, seed=args.seed)
    objects = SpatialTextDatasetGenerator(config).generate()
    count = save_tsv(args.out, objects)
    print(f"wrote {count} {args.dataset} objects to {args.out}")
    return 0


def _cmd_build(args) -> int:
    engine_kwargs = dict(
        index=args.index,
        signature_bytes=args.signature_bytes,
        bits_per_word=args.bits_per_word,
        block_size=args.block_size,
        compression=args.compression,
        auto_kinds=args.auto_kinds,
    )
    if args.shards > 1:
        engine = ShardedEngine(
            n_shards=args.shards, partitioner=args.partitioner, **engine_kwargs
        )
    else:
        engine = SpatialKeywordEngine(**engine_kwargs)
    count = 0
    for obj in iter_tsv(args.data):
        engine.add(obj)
        count += 1
    engine.build(bulk=not args.insert_build)
    manifest = save_engine(engine, args.out)
    print(f"indexed {count} objects with {_engine_label(engine)}, "
          f"saved to {manifest}")
    print(f"index size: {engine.index_size_mb():.2f} MB")
    return 0


def _cmd_query(args) -> int:
    engine = load_engine(args.engine)
    if args.ranked:
        execution = engine.query_ranked(tuple(args.point), args.keywords, k=args.k)
    else:
        execution = engine.query(tuple(args.point), args.keywords, k=args.k)
    if args.json:
        print(json.dumps(execution.to_dict(), indent=2, sort_keys=True))
        return 0
    if not execution.results:
        print("no results")
    for rank, result in enumerate(execution.results, start=1):
        coords = ", ".join(f"{c:.4f}" for c in result.obj.point)
        line = f"{rank:3d}. #{result.obj.oid} ({coords}) dist={result.distance:.4f}"
        if args.ranked:
            line += f" score={result.score:.4f} ir={result.ir_score:.4f}"
        snippet = result.obj.text[:70]
        print(f"{line}  {snippet}")
    print(execution.summary())
    return 0


def _cmd_stats(args) -> int:
    engine = load_engine(args.engine)
    stats: CorpusStats = engine.corpus_stats()
    print(f"objects             : {stats.total_objects}")
    print(f"object file         : {stats.size_mb:.2f} MB")
    print(f"avg unique words/obj: {stats.avg_unique_words_per_object:.1f}")
    print(f"unique words        : {stats.unique_words}")
    print(f"avg blocks/object   : {stats.avg_blocks_per_object:.2f}")
    print(f"index kind          : {_engine_label(engine)}")
    print(f"index size          : {engine.index_size_mb():.2f} MB")
    return 0


def _cmd_serve(args) -> int:
    from repro.bench.workloads import ConcurrentLoadGenerator
    from repro.serve import QueryService

    engine = load_engine(args.engine)
    if args.shards > 1 and not isinstance(engine, ShardedEngine):
        engine = _repartition(engine, args.shards)
    objects = list(engine.objects())
    workload = ConcurrentLoadGenerator(objects, engine.analyzer, seed=args.seed)
    batch = workload.batch(
        args.queries,
        num_keywords=args.num_keywords,
        k=args.k,
        hot_fraction=args.hot_fraction,
    )
    tracer = None
    if args.trace_sample or args.trace_export:
        from repro.obs.trace import QueryTracer

        tracer = QueryTracer(sample_every=args.trace_sample or 8)
    batching = None
    if args.batched:
        from repro.serve import BatchConfig

        batching = BatchConfig(
            window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            max_pending=args.max_pending or None,
        )
    with QueryService(
        engine, workers=args.workers, cache=not args.no_cache,
        slow_query_ms=args.slow_query_ms, tracer=tracer, batching=batching,
        maintenance=args.maintenance, merge_threshold=args.merge_threshold,
        query_log=args.query_log, query_log_sample=args.query_log_sample,
    ) as service:
        if args.writes > 0:
            # Dispatch the queries asynchronously and stream writes
            # underneath them: each donor object is cloned under a fresh
            # oid and deleted again, leaving the dataset unchanged while
            # the maintenance path (buffer, merges, invalidation) runs
            # under live read traffic.
            futures = service.submit_many(batch)
            next_oid = max((obj.oid for obj in objects), default=0) + 1
            for i in range(args.writes):
                donor = objects[i % len(objects)]
                service.add_object(next_oid + i, donor.point, donor.text)
                service.delete(next_oid + i)
            executions = [future.result() for future in futures]
        else:
            executions = service.run_batch(batch)
        stats = service.stats()
        maintenance_line = None
        if service.maintainer is not None:
            maintainer = service.maintainer
            maintenance_line = (
                f"maintenance: snapshot v{service.engine_version}, "
                f"{maintainer.merges} merges, "
                f"{service.buffer_depth} buffered writes"
            )
        if args.serve_trace:
            service.export_traces(args.serve_trace, executions=executions)
        if args.serve_metrics:
            service.export_metrics(args.serve_metrics)
        if args.trace_export:
            service.export_chrome_trace(args.trace_export)
        query_log = service.query_log
    print(f"served {stats.queries} queries with {args.workers} workers "
          f"over {_engine_label(engine)}")
    print(stats.summary())
    if maintenance_line is not None:
        print(maintenance_line)
    if batching is not None:
        print(f"batched: {stats.batches} groups, {stats.coalesced} coalesced, "
              f"{stats.io.shared_reads} shared reads, {stats.shed} shed")
    if args.serve_trace:
        print(f"trace spans written to {args.serve_trace}")
    if args.serve_metrics:
        print(f"metrics snapshot written to {args.serve_metrics}")
    if args.query_log:
        print(f"query log: {query_log.written} records written to "
              f"{args.query_log} ({query_log.seen} queries seen, "
              f"{query_log.sampled} sampled, {query_log.dropped} dropped, "
              f"{query_log.rotations} rotations)")
    if args.trace_export:
        retained = len(tracer.traces())
        print(f"{retained} span trees ({tracer.seen} queries seen) "
              f"written to {args.trace_export}")
    return 0


def _cmd_metrics(args) -> int:
    from repro.bench.workloads import ConcurrentLoadGenerator
    from repro.serve import QueryService

    engine = load_engine(args.directory)
    objects = list(engine.objects())
    workload = ConcurrentLoadGenerator(objects, engine.analyzer, seed=args.seed)
    batch = workload.batch(args.queries, num_keywords=2, k=10, hot_fraction=0.5)
    with QueryService(engine, workers=args.workers) as service:
        service.run_batch(batch)
        if args.prometheus:
            rendered = service.export_metrics(fmt="prometheus")
            print(rendered, end="")
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(rendered)
            return 0
        stats = service.stats()
        payload = {
            "engine": _engine_label(engine),
            "probe_queries": stats.queries,
            "service": stats.as_dict(),
            "metrics": stats.metrics,
            "slow_queries": service.slow_log.as_dicts(),
        }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    return 0


def _cmd_workload(args) -> int:
    from repro.obs.querylog import read_query_log
    from repro.obs.workload import (
        analyze_query_log,
        render_workload_report,
        validate_workload_report,
    )

    records = read_query_log(args.log)
    report = analyze_query_log(
        records,
        cells_per_dim=args.cells,
        top_terms=args.top,
        top_pairs=args.top,
    )
    validate_workload_report(report)
    if args.json == "-":
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(render_workload_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    return 0


def _cmd_replay(args) -> int:
    from repro.obs.querylog import read_query_log
    from repro.obs.replay import render_replay_report, replay_query_log

    engine = load_engine(args.engine)
    if args.shards > 1 and not isinstance(engine, ShardedEngine):
        engine = _repartition(engine, args.shards, args.partitioner)
    records = read_query_log(args.log)
    report = replay_query_log(
        records,
        engine,
        workers=args.workers,
        batched=args.batched,
        max_batch=args.max_batch,
        cache=not args.no_cache,
        maintenance=args.maintenance,
        io_threshold=args.io_threshold or None,
        limit=args.limit or None,
    )
    if args.json == "-":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"replaying against {_engine_label(engine)}")
        print(render_replay_report(report))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
            print(f"report written to {args.json}")
    return 0 if report["ok"] else 1


def _cmd_trace(args) -> int:
    from repro.obs.trace import dump_chrome_trace, trace_query
    from repro.obs.tracereport import render_trace

    engine = load_engine(args.engine)
    with trace_query("query", k=args.k) as trace:
        if args.ranked:
            execution = engine.query_ranked(
                tuple(args.point), args.keywords, k=args.k
            )
        else:
            execution = engine.query(tuple(args.point), args.keywords, k=args.k)
    root = trace.root
    root.annotate(
        algorithm=execution.algorithm,
        keywords=list(args.keywords),
        num_results=len(execution.results),
    )
    if args.json:
        print(json.dumps(trace.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_trace(trace))
        print(execution.summary())
    if args.chrome:
        dump_chrome_trace(
            args.chrome, [trace], extra={"engine": _engine_label(engine)}
        )
        if not args.json:
            print(f"chrome trace written to {args.chrome}")
    return 0


def _cmd_verify(args) -> int:
    report = verify_engine(args.directory, load=not args.no_load)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1
    for check in report["checks"]:
        detail = f"  ({check['detail']})" if check["detail"] else ""
        print(f"{check['status']:>7}  {check['path']}{detail}")
    for warning in report["warnings"]:
        print(f"warning  {warning}")
    verdict = "ok" if report["ok"] else "CORRUPT"
    print(f"{report['directory']}: {verdict}")
    return 0 if report["ok"] else 1


def _cmd_plan(args) -> int:
    from repro.core.query import SpatialKeywordQuery
    from repro.core.ranking import DistanceDecayRanking
    from repro.errors import QueryError

    engine = load_engine(args.engine)
    ranking = DistanceDecayRanking(half_distance=1.0) if args.ranked else None
    query = SpatialKeywordQuery.of(
        tuple(args.point), args.keywords, args.k, ranking=ranking
    )
    if isinstance(engine, ShardedEngine):
        targets = [
            (f"shard {i}", shard.index)
            for i, shard in enumerate(engine.shards)
        ]
    else:
        targets = [("", engine.index)]
    reports = []
    for label, index in targets:
        explain = getattr(index, "explain", None)
        if explain is None:
            raise QueryError(
                "plan explain requires an adaptive engine "
                "(build it with --index auto)"
            )
        reports.append({"target": label, **explain(query)})
    if args.json:
        print(json.dumps({"reports": reports}, indent=2, sort_keys=True))
        return 0
    for report in reports:
        _print_plan_report(report)
    return 0


def _print_plan_report(report: dict) -> None:
    decision = report["decision"]
    prefix = f"{report['target']}: " if report["target"] else ""
    qualifiers = [decision["query_class"] + " query"]
    if decision.get("forced"):
        qualifiers.append("forced")
    if decision.get("cached"):
        qualifiers.append("cached")
    print(f"{prefix}chosen {decision['strategy']} "
          f"({', '.join(qualifiers)}, "
          f"est {decision['estimated_cost_ms']:.4f} ms)")
    estimates = decision["estimates"]
    width = max(len(kind) for kind in estimates)
    ranked_kinds = sorted(estimates, key=lambda k: estimates[k]["cost_ms"])
    for kind in ranked_kinds:
        row = estimates[kind]
        marker = "*" if kind == decision["strategy"] else " "
        print(f"  {marker} {kind:<{width}}  cost={row['cost_ms']:.4f} ms  "
              f"random={row['random_reads']:.1f}  "
              f"seq={row['sequential_reads']:.1f}  "
              f"objects={row['objects_loaded']:.1f}")
    stats = report["statistics"]
    frequencies = ", ".join(
        f"{term}:{df}" for term, df in sorted(stats["query_terms"].items())
    )
    print(f"  statistics: n={stats['documents']}  "
          f"selectivity={stats['selectivity']:.6g}  df[{frequencies}]  "
          f"stats_version={stats['version']}")


def _repartition(
    engine: SpatialKeywordEngine, n_shards: int, partitioner: str = "kd"
) -> ShardedEngine:
    """Spread a loaded single engine's corpus across a fresh sharded one."""
    sharded = ShardedEngine(
        n_shards=n_shards, partitioner=partitioner, index=engine.index_kind
    )
    sharded.add_all(engine.objects())
    sharded.build()
    return sharded


def _engine_label(engine) -> str:
    """Human-readable index label for either engine flavor."""
    if isinstance(engine, ShardedEngine):
        return f"{engine.index_kind.upper()} x{engine.n_shards} shards"
    return engine.index_kind.upper()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
