"""Experiment harness: builds datasets + indexes, sweeps parameters.

One :class:`ExperimentContext` bundles a synthetic dataset (Hotels or
Restaurants, scaled for laptop runs), the shared corpus, the four built
index structures, and a deterministic workload generator.  Contexts are
cached per configuration so every benchmark file reuses the same builds.

The experiment scale is controlled by the ``REPRO_SCALE`` environment
variable (fraction of the paper's object counts; default 0.02).  The
signature lengths default to the paper's: 189 bytes for Hotels, 8 bytes
for Restaurants (Section VI).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.reporting import SeriesTable
from repro.bench.workloads import WorkloadGenerator
from repro.core.corpus import Corpus
from repro.core.indexes import (
    IIOIndex,
    IR2Index,
    MIR2Index,
    RTreeIndex,
    SpatialKeywordIndex,
)
from repro.core.query import SpatialKeywordQuery
from repro.datasets.generator import (
    SpatialTextDatasetGenerator,
    hotels_config,
    restaurants_config,
)
from repro.model import SpatialObject
from repro.storage.timing import DEFAULT_DRIVE

#: Algorithm order used throughout the figures.
ALGORITHMS = ("RTREE", "IIO", "IR2", "MIR2")

#: The paper's signature lengths per dataset (Section VI).
PAPER_SIGNATURE_BYTES = {"hotels": 189, "restaurants": 8}

#: Default fraction of the paper's object counts for laptop runs.
DEFAULT_SCALE = 0.02


def bench_scale() -> float:
    """Experiment scale from ``REPRO_SCALE`` (default 0.02)."""
    raw = os.environ.get("REPRO_SCALE", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_SCALE
    return value if value > 0 else DEFAULT_SCALE


def queries_per_point() -> int:
    """Queries averaged per swept point (``REPRO_QUERIES``, default 8)."""
    raw = os.environ.get("REPRO_QUERIES", "")
    try:
        value = int(raw)
    except ValueError:
        return 8
    return value if value > 0 else 8


@dataclass
class MetricsRow:
    """Mean per-query costs of one algorithm at one swept point."""

    simulated_ms: float = 0.0
    random_accesses: float = 0.0
    sequential_accesses: float = 0.0
    object_accesses: float = 0.0
    results_returned: float = 0.0
    false_positives: float = 0.0

    #: metric attribute -> human label, in figure order.
    METRICS = {
        "simulated_ms": "simulated execution time (ms)",
        "random_accesses": "random block accesses",
        "sequential_accesses": "sequential block accesses",
        "object_accesses": "object accesses",
        "false_positives": "false-positive candidates",
    }


class ExperimentContext:
    """A dataset with all four index structures built and ready to query."""

    def __init__(
        self,
        dataset: str,
        scale: float,
        signature_bytes: int,
        algorithms: Sequence[str] = ALGORITHMS,
        seed: int = 42,
        capacity: int | None = None,
    ) -> None:
        self.dataset = dataset
        self.scale = scale
        self.signature_bytes = signature_bytes
        config = (
            hotels_config(scale) if dataset == "hotels" else restaurants_config(scale)
        )
        self.config = config
        self.objects: list[SpatialObject] = SpatialTextDatasetGenerator(
            config
        ).generate()
        self.corpus = Corpus()
        self.corpus.add_all(self.objects)
        self.indexes: dict[str, SpatialKeywordIndex] = {}
        for name in algorithms:
            self.indexes[name] = self._make_index(name, capacity)
            self.indexes[name].build()
            self.indexes[name].reset_io()
        self.workload = WorkloadGenerator(self.objects, self.corpus.analyzer, seed)

    def _make_index(self, name: str, capacity: int | None) -> SpatialKeywordIndex:
        if name == "RTREE":
            return RTreeIndex(self.corpus, capacity=capacity)
        if name == "IIO":
            return IIOIndex(self.corpus)
        if name == "IR2":
            return IR2Index(self.corpus, self.signature_bytes, capacity=capacity)
        if name == "MIR2":
            return MIR2Index(self.corpus, self.signature_bytes, capacity=capacity)
        raise ValueError(f"unknown algorithm {name!r}")

    # -- Measurement -------------------------------------------------------------

    def measure(
        self, algorithm: str, queries: Sequence[SpatialKeywordQuery]
    ) -> MetricsRow:
        """Mean per-query cost of ``algorithm`` over a query batch."""
        index = self.indexes[algorithm]
        row = MetricsRow()
        for query in queries:
            execution = index.execute(query)
            row.simulated_ms += execution.simulated_ms(DEFAULT_DRIVE)
            row.random_accesses += execution.io.random.total
            row.sequential_accesses += execution.io.sequential.total
            row.object_accesses += execution.objects_inspected
            row.results_returned += len(execution.results)
            row.false_positives += execution.false_positive_candidates
        n = max(1, len(queries))
        row.simulated_ms /= n
        row.random_accesses /= n
        row.sequential_accesses /= n
        row.object_accesses /= n
        row.results_returned /= n
        row.false_positives /= n
        return row

    def run_queries(self, algorithm: str, queries: Sequence[SpatialKeywordQuery]) -> None:
        """Execute a batch without collecting metrics (for wall-clock timing)."""
        index = self.indexes[algorithm]
        for query in queries:
            index.execute(query)


@dataclass
class SweepResult:
    """All metric tables of one figure-style parameter sweep."""

    tables: dict[str, SeriesTable] = field(default_factory=dict)

    def table(self, metric: str) -> SeriesTable:
        return self.tables[metric]

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables.values())

    def render_markdown(self) -> str:
        return "\n\n".join(table.render_markdown() for table in self.tables.values())


def run_sweep(
    context: ExperimentContext,
    title: str,
    parameter: str,
    values: Sequence,
    make_queries: Callable[[object], list[SpatialKeywordQuery]],
    algorithms: Sequence[str] | None = None,
) -> SweepResult:
    """Run one paper-figure sweep and collect every metric series.

    Args:
        context: built experiment context.
        title: figure label prefix (e.g. "Figure 9 (Hotels, vary k)").
        parameter: name of the swept parameter for the table column.
        values: swept values.
        make_queries: value -> the query batch for that point (the same
            batch is executed by every algorithm).
        algorithms: subset/order override of the context's algorithms.
    """
    names = list(algorithms or context.indexes.keys())
    result = SweepResult()
    for metric, label in MetricsRow.METRICS.items():
        result.tables[metric] = SeriesTable(
            title=f"{title} — {label}", parameter=parameter, algorithms=names
        )
    for value in values:
        queries = make_queries(value)
        rows = {name: context.measure(name, queries) for name in names}
        for metric in MetricsRow.METRICS:
            result.tables[metric].add(
                value, {name: getattr(rows[name], metric) for name in names}
            )
    return result


# ---------------------------------------------------------------------------
# Context cache shared by all benchmark files in one pytest session.
# ---------------------------------------------------------------------------

_CONTEXTS: dict[tuple, ExperimentContext] = {}


def save_markdown(name: str, text: str, directory: str | None = None) -> str:
    """Persist a rendered result table for EXPERIMENTS.md; returns the path.

    Files land in ``REPRO_RESULTS_DIR`` (default ``benchmarks/results``)
    relative to the current working directory.
    """
    target_dir = directory or os.environ.get("REPRO_RESULTS_DIR", "benchmarks/results")
    os.makedirs(target_dir, exist_ok=True)
    path = os.path.join(target_dir, f"{name}.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def get_context(
    dataset: str,
    signature_bytes: int | None = None,
    scale: float | None = None,
    algorithms: Sequence[str] = ALGORITHMS,
    seed: int = 42,
) -> ExperimentContext:
    """Build (or reuse) the context for one experiment configuration."""
    if dataset not in ("hotels", "restaurants"):
        raise ValueError(f"unknown dataset {dataset!r}")
    effective_scale = scale if scale is not None else bench_scale()
    effective_signature = (
        signature_bytes
        if signature_bytes is not None
        else PAPER_SIGNATURE_BYTES[dataset]
    )
    key = (dataset, effective_scale, effective_signature, tuple(algorithms), seed)
    context = _CONTEXTS.get(key)
    if context is None:
        context = ExperimentContext(
            dataset, effective_scale, effective_signature, algorithms, seed
        )
        _CONTEXTS[key] = context
    return context
