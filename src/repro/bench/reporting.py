"""Result tables in the shape of the paper's figures.

The paper reports, per figure: (a) execution time and (b) disk block
accesses split into random (thick bars) and sequential (thin lines), plus
object accesses for the signature-length experiments.  These helpers
render the measured series as aligned ASCII tables for the terminal and
as Markdown for ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table.

    Numeric cells are right-aligned; floats print with sensible precision.
    """
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered), 1)
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_markdown(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render the same data as a Markdown table (for EXPERIMENTS.md)."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_cell(value) for value in row) + " |")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_chart(
    table: "SeriesTable",
    width: int = 64,
    height: int = 14,
    log_scale: bool = True,
) -> str:
    """Render a series table as an ASCII chart (the paper's figure form).

    One marker letter per algorithm, a logarithmic y-axis by default
    (the paper's time figures use log scale "to illustrate the difference
    more clearly"), parameter values along the x-axis.

    Args:
        table: the series to plot.
        width: plot area width in characters.
        height: plot area height in rows.
        log_scale: use log10 on the y-axis (falls back to linear when
            values include zero or negatives).
    """
    points: list[tuple[int, str, float]] = []  # (x_index, algorithm, value)
    for x_index, (_, cells) in enumerate(table.rows):
        for algorithm in table.algorithms:
            value = cells.get(algorithm)
            if value is None or value != value:  # missing / NaN
                continue
            points.append((x_index, algorithm, float(value)))
    if not points:
        return f"{table.title}\n(no data)"
    values = [v for _, _, v in points]
    use_log = log_scale and min(values) > 0
    transform = (lambda v: math.log10(v)) if use_log else (lambda v: v)
    low = min(transform(v) for v in values)
    high = max(transform(v) for v in values)
    span = (high - low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = {
        algorithm: algorithm[0] for algorithm in table.algorithms
    }
    # Disambiguate duplicate first letters (e.g. IR2/IIO -> I, i).
    seen: dict[str, int] = {}
    for algorithm in table.algorithms:
        letter = algorithm[0]
        count = seen.get(letter, 0)
        markers[algorithm] = letter.lower() if count else letter
        seen[letter] = count + 1

    x_count = len(table.rows)
    for x_index, algorithm, value in points:
        x = (
            int(x_index * (width - 1) / (x_count - 1)) if x_count > 1 else width // 2
        )
        y = int(round((transform(value) - low) / span * (height - 1)))
        row = height - 1 - y
        cell = grid[row][x]
        grid[row][x] = "*" if cell not in (" ", markers[algorithm]) else markers[algorithm]

    scale_note = "log10" if use_log else "linear"
    top_label = f"{(10 ** high if use_log else high):,.0f}"
    bottom_label = f"{(10 ** low if use_log else low):,.0f}"
    lines = [table.title + f"  [{scale_note} y-axis]"]
    for i, row in enumerate(grid):
        label = top_label if i == 0 else (bottom_label if i == height - 1 else "")
        lines.append(f"{label:>10} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    x_labels = "  ".join(str(value) for value, _ in table.rows)
    lines.append(" " * 12 + f"{table.parameter}: {x_labels}")
    legend = "  ".join(f"{markers[a]}={a}" for a in table.algorithms)
    lines.append(" " * 12 + f"legend: {legend}  (*=overlap)")
    return "\n".join(lines)


@dataclass
class SeriesTable:
    """One paper figure: a swept parameter vs. a metric per algorithm.

    Attributes:
        title: figure label, e.g. "Figure 9a: execution time vs k (Hotels)".
        parameter: name of the swept parameter ("k", "keywords", ...).
        algorithms: column order.
        rows: parameter value -> {algorithm: metric value}.
    """

    title: str
    parameter: str
    algorithms: list[str]
    rows: list[tuple[object, dict[str, float]]] = field(default_factory=list)

    def add(self, parameter_value, per_algorithm: dict[str, float]) -> None:
        """Append one swept point."""
        self.rows.append((parameter_value, dict(per_algorithm)))

    def as_rows(self) -> list[list]:
        return [
            [value] + [cells.get(algorithm, float("nan")) for algorithm in self.algorithms]
            for value, cells in self.rows
        ]

    def render(self) -> str:
        """ASCII rendering (printed by the benchmark harness)."""
        return format_table(
            [self.parameter] + self.algorithms, self.as_rows(), title=self.title
        )

    def render_markdown(self) -> str:
        """Markdown rendering (pasted into EXPERIMENTS.md)."""
        return format_markdown(
            [self.parameter] + self.algorithms, self.as_rows(), title=self.title
        )

    def column(self, algorithm: str) -> list[float]:
        """The metric series of one algorithm, in sweep order."""
        return [cells.get(algorithm, float("nan")) for _, cells in self.rows]

    def render_chart(self, width: int = 64, height: int = 14) -> str:
        """ASCII chart rendering (the figure form of this table)."""
        return render_chart(self, width=width, height=height)
