"""Query workload generation for the experiments.

The paper's experiments issue distance-first top-k queries with 1-5
keywords over each dataset.  Keywords are drawn the way real users pick
them: from the text of an actual object (so the conjunction is satisfiable
— an online yellow-pages user searches for amenities that exist), and the
query point is a uniform location over the dataset extent.

Workloads are deterministic for a given seed so every algorithm answers
the *same* query list, and benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.core.query import SpatialKeywordQuery
from repro.errors import DatasetError
from repro.model import SpatialObject
from repro.spatial.geometry import Rect
from repro.text.analyzer import Analyzer


class WorkloadGenerator:
    """Deterministic spatial-keyword query sampler over a corpus.

    Args:
        objects: the dataset (used for keyword sampling and extent).
        analyzer: tokenizer matching the one used at index time.
        seed: RNG seed; one generator per experiment keeps runs aligned.
    """

    def __init__(
        self, objects: Sequence[SpatialObject], analyzer: Analyzer, seed: int = 42
    ) -> None:
        if not objects:
            raise DatasetError("workload needs a non-empty object list")
        self.objects = list(objects)
        self.analyzer = analyzer
        self._rng = random.Random(seed)
        dims = objects[0].dims
        self._lo = tuple(
            min(obj.point[d] for obj in objects) for d in range(dims)
        )
        self._hi = tuple(
            max(obj.point[d] for obj in objects) for d in range(dims)
        )

    def random_point(self) -> tuple[float, ...]:
        """Uniform point over the dataset's bounding box."""
        return tuple(
            self._rng.uniform(lo, hi) for lo, hi in zip(self._lo, self._hi)
        )

    def sample_keywords(self, count: int) -> list[str]:
        """Distinct keywords co-occurring in one randomly chosen object.

        Guarantees the conjunctive query has at least one answer.  Objects
        with fewer than ``count`` distinct terms are skipped (bounded
        retries, then the largest available subset is used).
        """
        if count < 1:
            raise DatasetError(f"keyword count must be >= 1, got {count}")
        best: list[str] = []
        for _ in range(64):
            obj = self._rng.choice(self.objects)
            terms = sorted(self.analyzer.terms(obj.text))
            if len(terms) >= count:
                return self._rng.sample(terms, count)
            if len(terms) > len(best):
                best = terms
        if not best:
            raise DatasetError("no object provided any keywords")
        return best

    def query(self, num_keywords: int, k: int) -> SpatialKeywordQuery:
        """One query: random location, object-grounded keywords."""
        return SpatialKeywordQuery.of(
            self.random_point(), self.sample_keywords(num_keywords), k
        )

    def _keyword_count(
        self, num_keywords: int, keyword_counts: Sequence[int] | None
    ) -> int:
        """Per-slot keyword count: fixed, or sampled from a pool.

        Varying the count per query spreads the batch across selectivity
        regimes (single common keywords favor trees, multi-keyword
        conjunctions favor the inverted index), which is what makes
        adaptive routing measurable on one batch.
        """
        if keyword_counts:
            return self._rng.choice(list(keyword_counts))
        return num_keywords

    # -- Frequency-controlled keywords (Section VI.B's discussion) ------------

    def _document_frequencies(self) -> dict[str, int]:
        if not hasattr(self, "_df_cache"):
            df: dict[str, int] = {}
            for obj in self.objects:
                for term in self.analyzer.terms(obj.text):
                    df[term] = df.get(term, 0) + 1
            self._df_cache = df
        return self._df_cache

    def keywords_in_frequency_band(
        self, count: int, min_fraction: float, max_fraction: float
    ) -> list[str]:
        """Distinct keywords whose document frequency falls in a band.

        Args:
            count: how many keywords to sample.
            min_fraction: minimum df as a fraction of the corpus size.
            max_fraction: maximum df as a fraction of the corpus size.

        Used to reproduce the paper's Section VI.B: "in the rare case
        where every query keyword appears in very few objects, the IIO
        method will be faster ... if the query keywords appear in almost
        all objects, the R-Tree will excel".
        """
        n = len(self.objects)
        candidates = [
            term
            for term, df in self._document_frequencies().items()
            if min_fraction * n <= df <= max_fraction * n
        ]
        if len(candidates) < count:
            raise DatasetError(
                f"only {len(candidates)} terms have df in "
                f"[{min_fraction}, {max_fraction}] x {n}"
            )
        candidates.sort()
        return self._rng.sample(candidates, count)

    def frequency_band_queries(
        self,
        count: int,
        num_keywords: int,
        k: int,
        min_fraction: float,
        max_fraction: float,
    ) -> list[SpatialKeywordQuery]:
        """Query batch whose keywords all come from one df band.

        Note the keywords are sampled independently, so the conjunction
        may be empty for rare bands — exactly the regime where the paper
        says the R-Tree baseline degenerates to a full scan.
        """
        return [
            SpatialKeywordQuery.of(
                self.random_point(),
                self.keywords_in_frequency_band(
                    num_keywords, min_fraction, max_fraction
                ),
                k,
            )
            for _ in range(count)
        ]

    def queries(
        self, count: int, num_keywords: int, k: int
    ) -> list[SpatialKeywordQuery]:
        """A reproducible batch of ``count`` queries."""
        return [self.query(num_keywords, k) for _ in range(count)]


class ConcurrentLoadGenerator(WorkloadGenerator):
    """Batch generator for concurrent-serving benchmarks.

    Real serving traffic is skewed: a small set of *hot* queries (popular
    locations and keyword combinations) repeats constantly while a long
    tail of *cold* queries is unique.  This generator mixes the two so the
    service layer's result cache and thread pool are both exercised:
    ``hot_fraction`` of the batch is drawn (with repetition) from a pool
    of ``hot_pool`` fixed queries; the rest are fresh samples.

    Deterministic for a given seed, like every workload here.
    """

    def batch(
        self,
        count: int,
        num_keywords: int = 2,
        k: int = 10,
        hot_fraction: float = 0.5,
        hot_pool: int = 8,
        keyword_counts: Sequence[int] | None = None,
    ) -> list[SpatialKeywordQuery]:
        """``count`` queries, ``hot_fraction`` of them repeats of a hot set.

        Args:
            count: batch size.
            num_keywords: keywords per query.
            k: requested results per query.
            hot_fraction: probability a slot is served from the hot pool.
            hot_pool: number of distinct hot queries.
            keyword_counts: when given, each query samples its keyword
                count from this pool instead of using ``num_keywords``.
        """
        if not 0.0 <= hot_fraction <= 1.0:
            raise DatasetError(
                f"hot_fraction must be in [0, 1], got {hot_fraction}"
            )
        pool = (
            [
                self.query(self._keyword_count(num_keywords, keyword_counts), k)
                for _ in range(max(1, hot_pool))
            ]
            if hot_fraction > 0.0
            else []
        )
        return [
            self._rng.choice(pool)
            if pool and self._rng.random() < hot_fraction
            else self.query(self._keyword_count(num_keywords, keyword_counts), k)
            for _ in range(count)
        ]

    def area_query(
        self, num_keywords: int, k: int, extent_fraction: float = 0.05
    ) -> SpatialKeywordQuery:
        """One area-anchored query: a random box of the given extent.

        The box spans ``extent_fraction`` of the dataset's bounding box
        per dimension, centred on a uniform random point (clamped to the
        dataset extent).
        """
        center = self.random_point()
        lo, hi = [], []
        for d, c in enumerate(center):
            half = (self._hi[d] - self._lo[d]) * extent_fraction / 2.0
            lo.append(max(self._lo[d], c - half))
            hi.append(min(self._hi[d], c + half))
        return SpatialKeywordQuery.of_area(
            Rect(tuple(lo), tuple(hi)), self.sample_keywords(num_keywords), k
        )

    def mixed_batch(
        self,
        count: int,
        num_keywords: int = 2,
        k: int = 10,
        hot_fraction: float = 0.3,
        hot_pool: int = 8,
        area_fraction: float = 0.2,
        ranked_fraction: float = 0.2,
        ranking: Callable[[float, float], float] | None = None,
        area_extent: float = 0.05,
        keyword_counts: Sequence[int] | None = None,
    ) -> list[SpatialKeywordQuery]:
        """A serving-shaped mix of point, area, and ranked queries.

        Slots are assigned deterministically from the generator's RNG:
        first ``hot_fraction`` draws repeat a hot point-query pool, then
        ``area_fraction`` of the remainder are area queries and
        ``ranked_fraction`` ranked queries (only when a ``ranking``
        callable is supplied — pass **one shared instance**, since the
        result cache keys ranking functions by identity); everything
        else is a cold point query.

        Args:
            count: batch size.
            num_keywords: keywords per query.
            k: requested results per query.
            hot_fraction: probability a slot repeats the hot pool.
            hot_pool: number of distinct hot point queries.
            area_fraction: probability a cold slot is an area query.
            ranked_fraction: probability a cold slot is a ranked query
                (ignored without ``ranking``).
            ranking: shared combined-ranking function for ranked slots.
            area_extent: per-dimension area size as a fraction of the
                dataset extent.
            keyword_counts: when given, each query samples its keyword
                count from this pool instead of using ``num_keywords``.
        """
        if not 0.0 <= hot_fraction <= 1.0:
            raise DatasetError(
                f"hot_fraction must be in [0, 1], got {hot_fraction}"
            )
        if area_fraction + ranked_fraction > 1.0:
            raise DatasetError("area_fraction + ranked_fraction must be <= 1")

        def keywords() -> int:
            return self._keyword_count(num_keywords, keyword_counts)

        pool = (
            [self.query(keywords(), k) for _ in range(max(1, hot_pool))]
            if hot_fraction > 0.0
            else []
        )
        batch: list[SpatialKeywordQuery] = []
        for _ in range(count):
            if pool and self._rng.random() < hot_fraction:
                batch.append(self._rng.choice(pool))
                continue
            slot = self._rng.random()
            if slot < area_fraction:
                batch.append(
                    self.area_query(keywords(), k, extent_fraction=area_extent)
                )
            elif ranking is not None and slot < area_fraction + ranked_fraction:
                batch.append(
                    self.query(keywords(), k).with_ranking(ranking)
                )
            else:
                batch.append(self.query(keywords(), k))
        return batch


def with_k(queries: Sequence[SpatialKeywordQuery], k: int) -> list[SpatialKeywordQuery]:
    """The same query batch with a different ``k``.

    The paper's vary-k experiments hold the query locations and keywords
    fixed while sweeping k (that is why IIO's cost is flat there); this
    helper keeps every algorithm and every k on identical batches.
    """
    return [SpatialKeywordQuery(q.point, q.keywords, k) for q in queries]


def truncate_keywords(
    queries: Sequence[SpatialKeywordQuery], num_keywords: int
) -> list[SpatialKeywordQuery]:
    """The same batch restricted to each query's first ``num_keywords``.

    Used by the vary-keywords experiments: prefixes of one keyword set
    keep the sweep monotone (adding a keyword can only shrink the
    conjunctive answer set, as the paper notes in Section VI).
    """
    return [
        SpatialKeywordQuery(q.point, q.keywords[:num_keywords], q.k) for q in queries
    ]
