"""Benchmark harness: contexts, workloads, paper-style result tables."""

from repro.bench.harness import (
    ALGORITHMS,
    DEFAULT_SCALE,
    PAPER_SIGNATURE_BYTES,
    ExperimentContext,
    MetricsRow,
    SweepResult,
    bench_scale,
    get_context,
    queries_per_point,
    run_sweep,
    save_markdown,
)
from repro.bench.reporting import (
    SeriesTable,
    format_markdown,
    format_table,
    render_chart,
)
from repro.bench.workloads import ConcurrentLoadGenerator, WorkloadGenerator

__all__ = [
    "ALGORITHMS",
    "DEFAULT_SCALE",
    "ExperimentContext",
    "MetricsRow",
    "PAPER_SIGNATURE_BYTES",
    "ConcurrentLoadGenerator",
    "SeriesTable",
    "SweepResult",
    "WorkloadGenerator",
    "bench_scale",
    "format_markdown",
    "format_table",
    "get_context",
    "queries_per_point",
    "render_chart",
    "run_sweep",
    "save_markdown",
]
