"""One-command reproduction of the paper's evaluation section.

``python -m repro.bench.suite [--scale S] [--queries N] [--out DIR]``
builds both datasets, constructs all four index structures, runs every
table and figure of Section VI (plus the Section VI.B discussion sweep),
prints paper-style tables and ASCII figures, and writes Markdown copies
to the output directory.  It is the pytest-free counterpart of the
``benchmarks/`` tree for people who just want the paper regenerated.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Sequence

from repro.bench.harness import (
    ALGORITHMS,
    ExperimentContext,
    MetricsRow,
    SweepResult,
    get_context,
    run_sweep,
    save_markdown,
)
from repro.bench.reporting import SeriesTable, format_table
from repro.bench.workloads import truncate_keywords, with_k

K_VALUES = (1, 5, 10, 20, 50)
KEYWORD_COUNTS = (1, 2, 3, 4, 5)
SIGNATURE_SWEEPS = {"hotels": (47, 94, 189, 378), "restaurants": (2, 4, 8, 16, 32)}


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench.suite",
        description="Regenerate every table and figure of the paper",
    )
    parser.add_argument("--scale", type=float, default=None,
                        help="fraction of the paper's object counts "
                             "(default: REPRO_SCALE or 0.02)")
    parser.add_argument("--queries", type=int, default=None,
                        help="queries per swept point (default: "
                             "REPRO_QUERIES or 8)")
    parser.add_argument("--out", default="benchmarks/results",
                        help="directory for the Markdown result files")
    parser.add_argument("--skip-signature-sweeps", action="store_true",
                        help="skip Figures 11/14 (they rebuild IR2/MIR2 "
                             "per signature length)")
    return parser


def _emit(name: str, text: str, out_dir: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")
    save_markdown(name, text, directory=out_dir)


def _emit_sweep(name: str, result: SweepResult, out_dir: str) -> None:
    chart = result.table("simulated_ms").render_chart()
    _emit(name, result.render() + "\n\n" + chart, out_dir)


def run_table1(contexts: dict[str, ExperimentContext], out_dir: str) -> None:
    rows = []
    for name, context in contexts.items():
        rows.append((name.capitalize(),) + context.corpus.stats().row())
    text = format_table(
        ("Dataset", "Size (MB)", "Objects", "Avg unique words/obj",
         "Unique words", "Avg blocks/obj"),
        rows,
        title="Table 1: dataset details",
    )
    _emit("suite_table1", text, out_dir)


def run_table2(contexts: dict[str, ExperimentContext], out_dir: str) -> None:
    order = ("IIO", "RTREE", "IR2", "MIR2")
    rows = [
        (name.capitalize(),)
        + tuple(round(context.indexes[a].size_mb, 3) for a in order)
        for name, context in contexts.items()
    ]
    text = format_table(
        ("Dataset", "IIO", "R-Tree", "IR2-Tree", "MIR2-Tree"),
        rows,
        title="Table 2: index structure sizes (MB)",
    )
    _emit("suite_table2", text, out_dir)


def run_vary_k(context: ExperimentContext, figure: str, queries: int, out_dir: str) -> None:
    base = context.workload.queries(queries, 2, 10)
    result = run_sweep(
        context,
        f"{figure} ({context.dataset.capitalize()}): vary k, 2 keywords",
        "k",
        K_VALUES,
        lambda k: with_k(base, k),
        algorithms=ALGORITHMS,
    )
    _emit_sweep(f"suite_{figure.lower().replace(' ', '')}", result, out_dir)


def run_vary_keywords(
    context: ExperimentContext, figure: str, queries: int, out_dir: str
) -> None:
    base = context.workload.queries(queries, max(KEYWORD_COUNTS), 10)
    result = run_sweep(
        context,
        f"{figure} ({context.dataset.capitalize()}): vary #keywords, k=10",
        "keywords",
        KEYWORD_COUNTS,
        lambda m: truncate_keywords(base, m),
        algorithms=ALGORITHMS,
    )
    _emit_sweep(f"suite_{figure.lower().replace(' ', '')}", result, out_dir)


def run_vary_signature(
    context: ExperimentContext, figure: str, queries: int, out_dir: str
) -> None:
    base = with_k(context.workload.queries(queries, 2, 10), 10)
    names = list(ALGORITHMS)
    result = SweepResult()
    for metric, label in MetricsRow.METRICS.items():
        result.tables[metric] = SeriesTable(
            title=(
                f"{figure} ({context.dataset.capitalize()}): vary signature "
                f"length (bytes) — {label}"
            ),
            parameter="sig_bytes",
            algorithms=names,
        )
    baselines = {name: context.measure(name, base) for name in ("RTREE", "IIO")}
    for length in SIGNATURE_SWEEPS[context.dataset]:
        sig_context = get_context(
            context.dataset,
            signature_bytes=length,
            scale=context.scale,
            algorithms=("IR2", "MIR2"),
        )
        rows = dict(baselines)
        rows["IR2"] = sig_context.measure("IR2", base)
        rows["MIR2"] = sig_context.measure("MIR2", base)
        for metric in MetricsRow.METRICS:
            result.tables[metric].add(
                length, {name: getattr(rows[name], metric) for name in names}
            )
    _emit_sweep(f"suite_{figure.lower().replace(' ', '')}", result, out_dir)


def main(argv: Sequence[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    if args.queries is not None:
        os.environ["REPRO_QUERIES"] = str(args.queries)
    from repro.bench.harness import bench_scale, queries_per_point

    queries = queries_per_point()
    started = time.time()
    print(
        f"reproducing the evaluation at scale={bench_scale()} "
        f"({queries} queries per point); results -> {args.out}"
    )
    contexts = {
        "hotels": get_context("hotels"),
        "restaurants": get_context("restaurants"),
    }
    print(f"datasets + 8 index builds: {time.time() - started:.1f}s")

    run_table1(contexts, args.out)
    run_vary_k(contexts["hotels"], "Figure 9", queries, args.out)
    run_vary_keywords(contexts["hotels"], "Figure 10", queries, args.out)
    run_vary_k(contexts["restaurants"], "Figure 12", queries, args.out)
    run_vary_keywords(contexts["restaurants"], "Figure 13", queries, args.out)
    if not args.skip_signature_sweeps:
        run_vary_signature(contexts["hotels"], "Figure 11", queries, args.out)
        run_vary_signature(contexts["restaurants"], "Figure 14", queries, args.out)
    run_table2(contexts, args.out)

    print(f"\ndone in {time.time() - started:.1f}s; "
          f"Markdown copies in {args.out}/suite_*.md")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
