"""Tie-aware scatter-gather merging for sharded query execution.

The merge problem: every shard streams (or returns) its results in
non-decreasing distance order; the global answer is the k smallest
``(distance, oid)`` pairs across all shards.  :class:`TopKMerger` is the
shared accumulator the per-shard workers offer results to — it keeps the
running top-k under a lock and exposes the current k-th distance as a
*threshold* the workers use to stop pulling (and whole shards use to
prune themselves before doing any I/O).

Tie handling mirrors the differential harness's notion of equivalence: a
shard keeps pulling while its next result's distance is ``<=`` the
threshold (so every member of the tie group at the k-th distance is
offered), and the merger keeps the tie members with the smallest oids —
making the merged list deterministic and byte-identical to the
brute-force oracle's ``(distance, oid)`` ordering.
"""

from __future__ import annotations

import heapq
import threading

from repro.model import SearchResult

#: Threshold meaning "fewer than k results so far — nothing can be pruned".
OPEN = float("inf")


class TopKMerger:
    """Thread-safe, tie-aware accumulator of the global top-k results.

    Args:
        k: number of requested results.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._lock = threading.Lock()
        # Max-heap on (distance, oid) via negation: the root is the
        # current worst member of the top-k, i.e. the pruning threshold.
        self._heap: list[tuple[float, int, SearchResult]] = []
        # Oids currently in the heap: duplicate offers (a shard retried
        # after a transient device error re-offers what it already sent)
        # must be idempotent, not occupy two of the k slots.
        self._oids: set[int] = set()

    def threshold(self) -> float:
        """Current k-th distance, or +inf while fewer than k results."""
        with self._lock:
            return self._threshold_locked()

    def _threshold_locked(self) -> float:
        if len(self._heap) < self.k:
            return OPEN
        return -self._heap[0][0]

    def offer(self, result: SearchResult) -> float:
        """Offer one result; returns the (possibly tightened) threshold.

        Results farther than the threshold are discarded; ties at the
        threshold displace members with larger oids, keeping the merged
        answer deterministic.  Offering a result that is already a member
        (same oid) is a no-op, and only the ``(-distance, -oid)`` key is
        ever compared — a full-entry comparison would fall through to the
        unorderable :class:`SearchResult` payload on an exact
        ``(distance, oid)`` tie and raise ``TypeError``.
        """
        entry = (-result.distance, -result.obj.oid, result)
        with self._lock:
            if result.obj.oid in self._oids:
                return self._threshold_locked()
            if len(self._heap) < self.k:
                heapq.heappush(self._heap, entry)
                self._oids.add(result.obj.oid)
            elif entry[:2] > self._heap[0][:2]:
                evicted = heapq.heapreplace(self._heap, entry)
                self._oids.discard(evicted[2].obj.oid)
                self._oids.add(result.obj.oid)
            return self._threshold_locked()

    def results(self) -> list[SearchResult]:
        """The merged top-k, sorted by ``(distance, oid)``."""
        with self._lock:
            members = [entry[2] for entry in self._heap]
        members.sort(key=lambda r: (r.distance, r.obj.oid))
        return members
