"""Spatial partitioners: assign every object to one of N shards.

A production deployment splits a planet-scale dataset across machines;
queries then fan out only to the partitions whose region can contain a
result (the pressure behind QDR-Tree's quad-partitioned hybrid index,
arXiv:1804.10726).  A partitioner learns a space decomposition from the
staged object locations once, at build time, and afterwards maps any
point — including live inserts and points outside the training extent —
to a stable shard id.

Two strategies:

* :class:`KDPartitioner` (the default) — a recursive kd-split over the
  actual object locations.  Each split halves the *object count* along
  the widest dimension of the points in the cell, so shards stay balanced
  even on heavily clustered data.
* :class:`GridPartitioner` — a uniform grid over the dataset's bounding
  box, factorized as close to square as the shard count allows.  Cheap
  and predictable, but clustered data can leave cells nearly empty.

Both serialize to plain JSON dicts (:meth:`SpatialPartitioner.to_dict` /
:func:`partitioner_from_dict`) so a sharded engine layout can be reopened
from disk without refitting.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import DatasetError, IndexError_

Point = Sequence[float]


class SpatialPartitioner:
    """Contract: fit once over staged points, then assign any point."""

    kind = "?"

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise DatasetError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.fitted = False

    def fit(self, points: Sequence[Point]) -> None:
        """Learn the space decomposition from the staged object locations."""
        raise NotImplementedError

    def assign(self, point: Point) -> int:
        """Shard id in ``[0, n_shards)`` for ``point``; total over space."""
        raise NotImplementedError

    def require_fitted(self) -> None:
        """Raise unless :meth:`fit` (or a deserialization) has run."""
        if not self.fitted:
            raise IndexError_(f"{self.kind} partitioner has not been fitted")

    def to_dict(self) -> dict:
        """JSON-serializable state; inverse of :func:`partitioner_from_dict`."""
        raise NotImplementedError


class KDPartitioner(SpatialPartitioner):
    """Recursive kd-split: median cuts along the locally widest dimension.

    Splitting a cell of ``n`` target shards sends ``ceil(n/2)`` shards to
    the low side with a proportional share of the points, so any shard
    count is supported (not just powers of two) and object counts stay
    balanced.  The split tree is a nested dict of ``{"dim", "value",
    "left", "right"}`` nodes with ``{"shard": id}`` leaves, which makes it
    trivially JSON-serializable.
    """

    kind = "kd"

    def __init__(self, n_shards: int, tree: dict | None = None) -> None:
        super().__init__(n_shards)
        self._tree = tree
        if tree is not None:
            self.fitted = True

    def fit(self, points: Sequence[Point]) -> None:
        pts = [tuple(float(c) for c in p) for p in points]
        self._next_shard = 0
        self._tree = self._split(pts, self.n_shards)
        del self._next_shard
        self.fitted = True

    def _split(self, points: list[tuple], n_shards: int) -> dict:
        if n_shards == 1:
            leaf = {"shard": self._next_shard}
            self._next_shard += 1
            return leaf
        n_left = (n_shards + 1) // 2
        dim, value, low, high = self._cut(points, n_left / n_shards)
        return {
            "dim": dim,
            "value": value,
            "left": self._split(low, n_left),
            "right": self._split(high, n_shards - n_left),
        }

    @staticmethod
    def _cut(points: list[tuple], fraction: float) -> tuple:
        """Cut along the widest dimension at the ``fraction`` count quantile."""
        if not points:
            return 0, 0.0, [], []
        dims = len(points[0])
        spans = [
            max(p[d] for p in points) - min(p[d] for p in points)
            for d in range(dims)
        ]
        dim = max(range(dims), key=lambda d: spans[d])
        ordered = sorted(points, key=lambda p: p[dim])
        cut = min(max(int(round(len(ordered) * fraction)), 1), len(ordered))
        value = ordered[cut - 1][dim]
        # assign() sends point[dim] <= value to the low side, so points
        # equal to the cut coordinate must stay together on that side.
        low = [p for p in ordered if p[dim] <= value]
        high = [p for p in ordered if p[dim] > value]
        return dim, value, low, high

    def assign(self, point: Point) -> int:
        self.require_fitted()
        node = self._tree
        while "shard" not in node:
            side = "left" if point[node["dim"]] <= node["value"] else "right"
            node = node[side]
        return node["shard"]

    def to_dict(self) -> dict:
        self.require_fitted()
        return {"kind": self.kind, "n_shards": self.n_shards, "tree": self._tree}


class GridPartitioner(SpatialPartitioner):
    """Uniform grid over the fitted bounding box.

    The shard count is factorized into per-dimension cell counts as close
    to square as possible over the first two dimensions (one slab axis
    for 1-D data).  Points outside the fitted extent clamp to the border
    cells, so live inserts beyond the training data still land somewhere.
    """

    kind = "grid"

    def __init__(
        self,
        n_shards: int,
        lo: tuple | None = None,
        hi: tuple | None = None,
        cells: tuple | None = None,
    ) -> None:
        super().__init__(n_shards)
        self._lo = lo
        self._hi = hi
        self._cells = cells
        if lo is not None:
            self.fitted = True

    def fit(self, points: Sequence[Point]) -> None:
        pts = [tuple(float(c) for c in p) for p in points]
        dims = len(pts[0]) if pts else 2
        if pts:
            self._lo = tuple(min(p[d] for p in pts) for d in range(dims))
            self._hi = tuple(max(p[d] for p in pts) for d in range(dims))
        else:
            self._lo = (0.0,) * dims
            self._hi = (1.0,) * dims
        self._cells = self._factorize(self.n_shards, dims)
        self.fitted = True

    @staticmethod
    def _factorize(n: int, dims: int) -> tuple:
        """Cell counts per dimension, product == n, near-square in 2-D."""
        if dims == 1 or n == 1:
            return (n,) + (1,) * (dims - 1)
        best = 1
        for a in range(1, int(math.isqrt(n)) + 1):
            if n % a == 0:
                best = a
        return (n // best, best) + (1,) * (dims - 2)

    def assign(self, point: Point) -> int:
        self.require_fitted()
        cell = 0
        for d, count in enumerate(self._cells):
            span = self._hi[d] - self._lo[d]
            if span <= 0.0 or count == 1:
                index = 0
            else:
                index = int((point[d] - self._lo[d]) / span * count)
                index = min(max(index, 0), count - 1)
            cell = cell * count + index
        return cell

    def to_dict(self) -> dict:
        self.require_fitted()
        return {
            "kind": self.kind,
            "n_shards": self.n_shards,
            "lo": list(self._lo),
            "hi": list(self._hi),
            "cells": list(self._cells),
        }


def make_partitioner(kind: str, n_shards: int) -> SpatialPartitioner:
    """Factory: ``kind`` in {"kd", "grid"} (case-insensitive)."""
    normalized = kind.strip().lower()
    if normalized == "kd":
        return KDPartitioner(n_shards)
    if normalized == "grid":
        return GridPartitioner(n_shards)
    raise DatasetError(f"unknown partitioner kind {kind!r}")


def partitioner_from_dict(state: dict) -> SpatialPartitioner:
    """Rebuild a fitted partitioner from its :meth:`to_dict` payload."""
    kind = state.get("kind")
    if kind == "kd":
        return KDPartitioner(state["n_shards"], tree=state["tree"])
    if kind == "grid":
        return GridPartitioner(
            state["n_shards"],
            lo=tuple(state["lo"]),
            hi=tuple(state["hi"]),
            cells=tuple(state["cells"]),
        )
    raise DatasetError(f"unknown partitioner kind {kind!r}")
