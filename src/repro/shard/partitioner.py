"""Spatial partitioners: assign every object to one of N shards.

A production deployment splits a planet-scale dataset across machines;
queries then fan out only to the partitions whose region can contain a
result (the pressure behind QDR-Tree's quad-partitioned hybrid index,
arXiv:1804.10726).  A partitioner learns a space decomposition from the
staged object locations once, at build time, and afterwards maps any
point — including live inserts and points outside the training extent —
to a stable shard id.

Three strategies:

* :class:`KDPartitioner` (the default) — a recursive kd-split over the
  actual object locations.  Each split halves the *object count* along
  the widest dimension of the points in the cell, so shards stay balanced
  even on heavily clustered data.
* :class:`GridPartitioner` — a uniform grid over the dataset's bounding
  box, factorized as close to square as the shard count allows.  Cheap
  and predictable, but clustered data can leave cells nearly empty.
* :class:`KeywordAwarePartitioner` — term-vector clustering seeded from
  the kd split (QDR-Tree's keyword-aware clustering over a spatial
  decomposition, arXiv:1804.10726).  Co-locates textually similar
  objects so per-shard keyword summaries prune more of the fan-out,
  while the kd seed keeps shards spatially coherent enough for MBB
  pruning to still work.

All serialize to plain JSON dicts (:meth:`SpatialPartitioner.to_dict` /
:func:`partitioner_from_dict`) so a sharded engine layout can be reopened
from disk without refitting.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

from repro.errors import DatasetError, IndexError_

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model import SpatialObject
    from repro.text.analyzer import Analyzer

Point = Sequence[float]


def _default_analyzer() -> "Analyzer":
    from repro.text.analyzer import DEFAULT_ANALYZER

    return DEFAULT_ANALYZER


class SpatialPartitioner:
    """Contract: fit once over staged points, then assign any point.

    Purely spatial strategies only look at locations; the object-aware
    hooks (:meth:`fit_objects` / :meth:`assign_object`) default to
    delegating to the point-only methods so text-aware partitioners can
    additionally see object contents without changing callers.
    """

    kind = "?"

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise DatasetError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.fitted = False

    def fit(self, points: Sequence[Point]) -> None:
        """Learn the space decomposition from the staged object locations."""
        raise NotImplementedError

    def assign(self, point: Point) -> int:
        """Shard id in ``[0, n_shards)`` for ``point``; total over space."""
        raise NotImplementedError

    def fit_objects(
        self, objects: Sequence["SpatialObject"], analyzer: "Analyzer" | None = None
    ) -> None:
        """Fit from whole objects; spatial strategies use only the points."""
        self.fit([obj.point for obj in objects])

    def assign_object(
        self, obj: "SpatialObject", analyzer: "Analyzer" | None = None
    ) -> int:
        """Shard id for a whole object; spatial strategies ignore the text."""
        return self.assign(obj.point)

    def require_fitted(self) -> None:
        """Raise unless :meth:`fit` (or a deserialization) has run."""
        if not self.fitted:
            raise IndexError_(f"{self.kind} partitioner has not been fitted")

    def to_dict(self) -> dict:
        """JSON-serializable state; inverse of :func:`partitioner_from_dict`."""
        raise NotImplementedError


class KDPartitioner(SpatialPartitioner):
    """Recursive kd-split: median cuts along the locally widest dimension.

    Splitting a cell of ``n`` target shards sends ``ceil(n/2)`` shards to
    the low side with a proportional share of the points, so any shard
    count is supported (not just powers of two) and object counts stay
    balanced.  The split tree is a nested dict of ``{"dim", "value",
    "left", "right"}`` nodes with ``{"shard": id}`` leaves, which makes it
    trivially JSON-serializable.
    """

    kind = "kd"

    def __init__(self, n_shards: int, tree: dict | None = None) -> None:
        super().__init__(n_shards)
        self._tree = tree
        if tree is not None:
            self.fitted = True

    def fit(self, points: Sequence[Point]) -> None:
        pts = [tuple(float(c) for c in p) for p in points]
        self._next_shard = 0
        self._tree = self._split(pts, self.n_shards)
        del self._next_shard
        self.fitted = True

    def _split(self, points: list[tuple], n_shards: int) -> dict:
        if n_shards == 1:
            leaf = {"shard": self._next_shard}
            self._next_shard += 1
            return leaf
        n_left = (n_shards + 1) // 2
        dim, value, low, high = self._cut(points, n_left / n_shards)
        return {
            "dim": dim,
            "value": value,
            "left": self._split(low, n_left),
            "right": self._split(high, n_shards - n_left),
        }

    @staticmethod
    def _cut(points: list[tuple], fraction: float) -> tuple:
        """Cut along the widest dimension at the ``fraction`` count quantile."""
        if not points:
            return 0, 0.0, [], []
        dims = len(points[0])
        spans = [
            max(p[d] for p in points) - min(p[d] for p in points)
            for d in range(dims)
        ]
        dim = max(range(dims), key=lambda d: spans[d])
        ordered = sorted(points, key=lambda p: p[dim])
        cut = min(max(int(round(len(ordered) * fraction)), 1), len(ordered))
        value = ordered[cut - 1][dim]
        # assign() sends point[dim] <= value to the low side, so points
        # equal to the cut coordinate must stay together on that side.
        low = [p for p in ordered if p[dim] <= value]
        high = [p for p in ordered if p[dim] > value]
        return dim, value, low, high

    def assign(self, point: Point) -> int:
        self.require_fitted()
        node = self._tree
        while "shard" not in node:
            side = "left" if point[node["dim"]] <= node["value"] else "right"
            node = node[side]
        return node["shard"]

    def to_dict(self) -> dict:
        self.require_fitted()
        return {"kind": self.kind, "n_shards": self.n_shards, "tree": self._tree}


class GridPartitioner(SpatialPartitioner):
    """Uniform grid over the fitted bounding box.

    The shard count is factorized into per-dimension cell counts as close
    to square as possible over the first two dimensions (one slab axis
    for 1-D data).  Points outside the fitted extent clamp to the border
    cells, so live inserts beyond the training data still land somewhere.
    """

    kind = "grid"

    def __init__(
        self,
        n_shards: int,
        lo: tuple | None = None,
        hi: tuple | None = None,
        cells: tuple | None = None,
    ) -> None:
        super().__init__(n_shards)
        self._lo = lo
        self._hi = hi
        self._cells = cells
        if lo is not None:
            self.fitted = True

    def fit(self, points: Sequence[Point]) -> None:
        pts = [tuple(float(c) for c in p) for p in points]
        dims = len(pts[0]) if pts else 2
        if pts:
            self._lo = tuple(min(p[d] for p in pts) for d in range(dims))
            self._hi = tuple(max(p[d] for p in pts) for d in range(dims))
        else:
            self._lo = (0.0,) * dims
            self._hi = (1.0,) * dims
        self._cells = self._factorize(self.n_shards, dims)
        self.fitted = True

    @staticmethod
    def _factorize(n: int, dims: int) -> tuple:
        """Cell counts per dimension, product == n, near-square in 2-D."""
        if dims == 1 or n == 1:
            return (n,) + (1,) * (dims - 1)
        best = 1
        for a in range(1, int(math.isqrt(n)) + 1):
            if n % a == 0:
                best = a
        return (n // best, best) + (1,) * (dims - 2)

    def assign(self, point: Point) -> int:
        self.require_fitted()
        cell = 0
        for d, count in enumerate(self._cells):
            span = self._hi[d] - self._lo[d]
            if span <= 0.0 or count == 1:
                index = 0
            else:
                index = int((point[d] - self._lo[d]) / span * count)
                index = min(max(index, 0), count - 1)
            cell = cell * count + index
        return cell

    def to_dict(self) -> dict:
        self.require_fitted()
        return {
            "kind": self.kind,
            "n_shards": self.n_shards,
            "lo": list(self._lo),
            "hi": list(self._hi),
            "cells": list(self._cells),
        }


class KeywordAwarePartitioner(SpatialPartitioner):
    """Term-vector clustering seeded from the spatial kd split.

    Fitting runs in three deterministic steps:

    1. a :class:`KDPartitioner` is fitted over the object locations — the
       seed assignment, and the permanent spatial fallback for objects
       whose text matches no cluster;
    2. per-shard *term centroids* (term -> number of member documents
       containing it) are accumulated from the seed assignment;
    3. a few balanced refinement passes move each object (in oid order)
       to the shard whose centroid shares the most *idf-weighted* term
       mass with it — each shared term counts ``centroid_count / df`` so
       rare, discriminative terms steer the clustering instead of the
       ubiquitous ones (which every shard holds anyway and which can
       never help routing prune) — subject to a size cap of
       ``ceil(n / n_shards * (1 + slack))`` so no shard collapses to
       empty or absorbs everything.  Ties prefer the kd seed shard, then
       the lowest shard id.

    Serialized centroids store the weighted mass per term (rounded, so
    in-memory and reloaded routing agree bit-for-bit), ranked by that
    mass when pruned to ``centroid_cap`` entries.

    After fitting, centroids are pruned to their ``centroid_cap``
    heaviest terms so the serialized routing state stays small; pruning
    happens *before* any assignment so in-memory and reloaded
    partitioners route identically.  Any assignment is *correct* — shard
    MBBs are recomputed from actual members and answers are merged
    tie-aware — so clustering quality only affects fan-out, never
    results.
    """

    kind = "keyword"

    #: Terms kept per serialized centroid (heaviest first).
    DEFAULT_CENTROID_CAP = 128
    #: Allowed shard-size overshoot over the perfect n/n_shards balance.
    DEFAULT_BALANCE_SLACK = 0.3
    #: Refinement passes over the corpus.
    DEFAULT_ITERATIONS = 3

    def __init__(
        self,
        n_shards: int,
        tree: dict | None = None,
        centroids: list[dict] | None = None,
        centroid_cap: int = DEFAULT_CENTROID_CAP,
        balance_slack: float = DEFAULT_BALANCE_SLACK,
        iterations: int = DEFAULT_ITERATIONS,
    ) -> None:
        super().__init__(n_shards)
        self._kd = KDPartitioner(n_shards, tree=tree)
        self._centroids = centroids
        self.centroid_cap = centroid_cap
        self.balance_slack = balance_slack
        self.iterations = iterations
        #: Fit-time oid -> shard placement.  The refinement runs under a
        #: size cap, but the pure centroid-overlap rule of
        #: :meth:`assign_object` does not — on term-skewed corpora it
        #: would pile everything onto the heaviest centroid.  Remembering
        #: the capped placement keeps ``build()`` balanced.  In-memory
        #: only: a deserialized partitioner routes *new* objects by
        #: centroid overlap, while existing membership is carried by the
        #: shard corpora themselves.
        self._placement: dict[int, int] = {}
        if tree is not None and centroids is not None:
            self.fitted = True

    def fit(self, points: Sequence[Point]) -> None:
        """Point-only fallback: kd decomposition, no text clustering."""
        self._kd.fit(points)
        self._centroids = [{} for _ in range(self.n_shards)]
        self._placement = {}
        self.fitted = True

    def fit_objects(
        self, objects: Sequence["SpatialObject"], analyzer: "Analyzer" | None = None
    ) -> None:
        analyzer = analyzer or _default_analyzer()
        self._kd.fit([obj.point for obj in objects])
        ordered = sorted(objects, key=lambda obj: obj.oid)
        term_sets = {obj.oid: sorted(analyzer.terms(obj.text)) for obj in ordered}
        # Inverse document frequency: a term shared by most of the
        # corpus lives in every shard regardless of placement, so it
        # carries no routing signal; a df-2 term confined to one shard
        # lets the summary prune everywhere else.
        df: dict[str, int] = {}
        for terms in term_sets.values():
            for term in terms:
                df[term] = df.get(term, 0) + 1
        cap = max(1, math.ceil(len(ordered) / self.n_shards * (1 + self.balance_slack)))
        # A term with more holders than fit in one shard can never be
        # confined, so it carries zero routing signal; scoring it would
        # only drown out the confinable terms.
        weight = {
            term: (1.0 / (count * count) if count <= cap else 0.0)
            for term, count in df.items()
        }
        seed = {obj.oid: self._kd.assign(obj.point) for obj in ordered}
        placement = dict(seed)
        centroids: list[dict[str, int]] = [{} for _ in range(self.n_shards)]
        sizes = [0] * self.n_shards
        for obj in ordered:
            shard = placement[obj.oid]
            sizes[shard] += 1
            for term in term_sets[obj.oid]:
                centroids[shard][term] = centroids[shard].get(term, 0) + 1
        for _ in range(self.iterations):
            moved = 0
            for obj in ordered:
                terms = term_sets[obj.oid]
                current = placement[obj.oid]
                # Evaluate with the object removed so its own terms do not
                # anchor it to wherever it happens to sit.
                sizes[current] -= 1
                for term in terms:
                    remaining = centroids[current].get(term, 0) - 1
                    if remaining > 0:
                        centroids[current][term] = remaining
                    else:
                        centroids[current].pop(term, None)
                best = min(
                    (s for s in range(self.n_shards) if sizes[s] < cap),
                    key=lambda s: (
                        -sum(
                            centroids[s].get(term, 0) * weight[term]
                            for term in terms
                        ),
                        0 if s == seed[obj.oid] else 1,
                        s,
                    ),
                )
                if best != current:
                    moved += 1
                placement[obj.oid] = best
                sizes[best] += 1
                for term in terms:
                    centroids[best][term] = centroids[best].get(term, 0) + 1
            if not moved:
                break
        self._centroids = [
            self._prune({
                term: round(count * weight[term], 6)
                for term, count in centroid.items()
            })
            for centroid in centroids
        ]
        self._placement = placement
        self.fitted = True

    def _prune(self, centroid: dict[str, float]) -> dict[str, float]:
        """Keep the ``centroid_cap`` heaviest terms (mass desc, term asc)."""
        ranked = sorted(centroid.items(), key=lambda item: (-item[1], item[0]))
        return dict(ranked[: self.centroid_cap])

    def assign(self, point: Point) -> int:
        self.require_fitted()
        return self._kd.assign(point)

    def assign_object(
        self, obj: "SpatialObject", analyzer: "Analyzer" | None = None
    ) -> int:
        self.require_fitted()
        placed = self._placement.get(obj.oid)
        if placed is not None:
            return placed
        analyzer = analyzer or _default_analyzer()
        terms = sorted(analyzer.terms(obj.text))
        kd_shard = self._kd.assign(obj.point)
        if not terms:
            return kd_shard
        return min(
            range(self.n_shards),
            key=lambda s: (
                -sum(self._centroids[s].get(term, 0) for term in terms),
                0 if s == kd_shard else 1,
                s,
            ),
        )

    def to_dict(self) -> dict:
        self.require_fitted()
        return {
            "kind": self.kind,
            "n_shards": self.n_shards,
            "tree": self._kd._tree,
            "centroids": self._centroids,
            "centroid_cap": self.centroid_cap,
        }


def make_partitioner(kind: str, n_shards: int) -> SpatialPartitioner:
    """Factory: ``kind`` in {"kd", "grid", "keyword"} (case-insensitive)."""
    normalized = kind.strip().lower()
    if normalized == "kd":
        return KDPartitioner(n_shards)
    if normalized == "grid":
        return GridPartitioner(n_shards)
    if normalized == "keyword":
        return KeywordAwarePartitioner(n_shards)
    raise DatasetError(f"unknown partitioner kind {kind!r}")


def partitioner_from_dict(state: dict) -> SpatialPartitioner:
    """Rebuild a fitted partitioner from its :meth:`to_dict` payload."""
    kind = state.get("kind")
    if kind == "kd":
        return KDPartitioner(state["n_shards"], tree=state["tree"])
    if kind == "grid":
        return GridPartitioner(
            state["n_shards"],
            lo=tuple(state["lo"]),
            hi=tuple(state["hi"]),
            cells=tuple(state["cells"]),
        )
    if kind == "keyword":
        return KeywordAwarePartitioner(
            state["n_shards"],
            tree=state["tree"],
            centroids=[dict(c) for c in state["centroids"]],
            centroid_cap=state.get(
                "centroid_cap", KeywordAwarePartitioner.DEFAULT_CENTROID_CAP
            ),
        )
    raise DatasetError(f"unknown partitioner kind {kind!r}")
