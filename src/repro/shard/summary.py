"""Per-shard keyword summaries for coordinator-side routing.

A :class:`KeywordSummary` is a Bloom filter over the distinct terms of
one shard's corpus, built from the same superimposed-coding machinery as
the IR2-Tree's signatures (:class:`repro.text.signature
.HashSignatureFactory`).  The coordinator keeps one summary per shard in
its routing table and tests query keywords against it *before* paying
any shard I/O:

* a term whose signature is **not** contained in the summary is
  provably absent from the shard (no false negatives), so

  - a **conjunctive** (point/area) query can skip the shard as soon as
    *any* query term is absent — every answer must contain all terms;
  - a **ranked** query with zero-IR pruning can skip the shard only when
    *all* query terms are absent — partial matches still score.

* containment can be a **false positive** (superimposed bits collide),
  which costs a wasted shard probe but never a wrong answer.

Deletes only ever *loosen* a Bloom filter (bits cannot be cleared
per-document), so each summary carries a ``stale_deletes`` counter; the
owning engine rebuilds the summary from the shard's live objects once
enough deletes accumulate (see ``ShardedEngine._note_summary_delete``),
mirroring the effective-delete compaction of ``IIOIndex``.

Summaries serialize to JSON dicts (hex-encoded bit pattern) and ride in
the sharded manifest; manifests written before this field existed load
fine — the engine rebuilds summaries from the shard corpora instead.
"""

from __future__ import annotations

from typing import Iterable

from repro.text.signature import HashSignatureFactory

#: Default Bloom-filter width in bytes.  16384 bits with 3 bits per word
#: keeps the fill ratio around 25% (single-term false-positive rate
#: ~1.5%) for shards holding a few thousand distinct terms, while
#: costing only ~4 KiB of hex in the manifest per shard.
DEFAULT_SUMMARY_BYTES = 2048

#: Bits set per term (``m`` in the signature design formulas).
DEFAULT_BITS_PER_WORD = 3


class KeywordSummary:
    """Bloom filter over one shard's distinct terms, with staleness.

    Args:
        length_bytes: filter width in bytes.
        bits_per_word: bits set per term.
        seed: hash seed (all summaries of an engine share one scheme).
        bits: initial bit pattern (used when reloading from a manifest).
        stale_deletes: deletes absorbed since the last rebuild.
    """

    def __init__(
        self,
        length_bytes: int = DEFAULT_SUMMARY_BYTES,
        bits_per_word: int = DEFAULT_BITS_PER_WORD,
        seed: int = 0,
        bits: int = 0,
        stale_deletes: int = 0,
    ) -> None:
        self.factory = HashSignatureFactory(
            length_bytes, bits_per_word=bits_per_word, seed=seed
        )
        self.bits = bits
        self.stale_deletes = stale_deletes

    # -- Maintenance ----------------------------------------------------------

    def add_terms(self, terms: Iterable[str]) -> None:
        """Superimpose one document's distinct terms onto the filter."""
        for term in terms:
            self.bits |= self.factory.for_word(term).bits

    def note_delete(self) -> None:
        """Record one effective delete; bits stay set (filter loosens)."""
        self.stale_deletes += 1

    def rebuild(self, term_sets: Iterable[Iterable[str]]) -> None:
        """Reset and refill from the live documents' term sets."""
        self.bits = 0
        self.stale_deletes = 0
        for terms in term_sets:
            self.add_terms(terms)

    # -- Routing tests --------------------------------------------------------

    def may_contain(self, term: str) -> bool:
        """False only when ``term`` is provably absent from the shard."""
        word = self.factory.for_word(term).bits
        return self.bits & word == word

    def may_contain_all(self, terms: Iterable[str]) -> bool:
        """Conjunctive routing test: every term might be present."""
        return all(self.may_contain(term) for term in terms)

    def may_contain_any(self, terms: Iterable[str]) -> bool:
        """Disjunctive routing test: at least one term might be present.

        Vacuously true for an empty term collection — a query without
        keywords constrains nothing.
        """
        terms = list(terms)
        if not terms:
            return True
        return any(self.may_contain(term) for term in terms)

    # -- Copy / serialization -------------------------------------------------

    def copy(self) -> "KeywordSummary":
        """An independent summary with the same bits and staleness."""
        return KeywordSummary(
            length_bytes=self.factory.length_bytes,
            bits_per_word=self.factory.bits_per_word,
            seed=self.factory.seed,
            bits=self.bits,
            stale_deletes=self.stale_deletes,
        )

    def to_dict(self) -> dict:
        """JSON-serializable state; inverse of :meth:`from_dict`."""
        return {
            "length_bytes": self.factory.length_bytes,
            "bits_per_word": self.factory.bits_per_word,
            "seed": self.factory.seed,
            "bits": format(self.bits, "x"),
            "stale_deletes": self.stale_deletes,
        }

    @staticmethod
    def from_dict(state: dict) -> "KeywordSummary":
        """Rebuild a summary from its :meth:`to_dict` payload."""
        return KeywordSummary(
            length_bytes=state["length_bytes"],
            bits_per_word=state["bits_per_word"],
            seed=state["seed"],
            bits=int(state["bits"], 16),
            stale_deletes=state.get("stale_deletes", 0),
        )
