"""Sharded scatter-gather execution over partitioned engines.

Public surface:

* :class:`ShardedEngine` — N complete engines behind the single-engine
  API, with tie-aware scatter-gather query execution.
* :class:`KDPartitioner` / :class:`GridPartitioner` /
  :func:`make_partitioner` / :func:`partitioner_from_dict` — spatial
  partitioning strategies and their (de)serialization.
* :class:`KeywordSummary` — the per-shard Bloom-filter keyword summary
  the routing table consults to skip shards before any I/O.
* :class:`TopKMerger` — the thread-safe tie-aware top-k accumulator.
"""

from repro.shard.engine import FAIL_FAST, PARTIAL, ShardedEngine
from repro.shard.merge import OPEN, TopKMerger
from repro.shard.partitioner import (
    GridPartitioner,
    KDPartitioner,
    KeywordAwarePartitioner,
    SpatialPartitioner,
    make_partitioner,
    partitioner_from_dict,
)
from repro.shard.summary import KeywordSummary

__all__ = [
    "FAIL_FAST",
    "PARTIAL",
    "ShardedEngine",
    "SpatialPartitioner",
    "KDPartitioner",
    "GridPartitioner",
    "KeywordAwarePartitioner",
    "KeywordSummary",
    "make_partitioner",
    "partitioner_from_dict",
    "TopKMerger",
    "OPEN",
]
