"""Sharded engine: N independent engines behind one engine-shaped API.

:class:`ShardedEngine` partitions a dataset spatially across ``n_shards``
complete :class:`~repro.core.engine.SpatialKeywordEngine` instances —
each shard owns its own corpus, devices, and index — and answers queries
by tie-aware scatter-gather:

* every shard's partition MBB gives a lower bound on the distance of any
  result it can contribute (``MINDIST`` of the paper's Figure 3, lifted
  to whole partitions);
* shards fan out across a thread pool; incremental index kinds pull from
  their nearest-first streams and stop as soon as the next distance
  exceeds the global k-th distance, while scan kinds run their local
  top-k and merge;
* shards whose lower bound already exceeds the global k-th distance are
  pruned without any I/O;
* the routing table additionally keeps one :class:`~repro.shard.summary
  .KeywordSummary` (Bloom filter over the shard's distinct terms) per
  shard, so keyword-selective queries skip shards that provably cannot
  contain a query term before paying any I/O — recorded as the
  ``pruned_by_keywords`` outcome in the per-shard reports and fan-out
  counters;
* per-shard I/O, node, and object counters are aggregated into one
  :class:`~repro.core.query.QueryExecution` with a per-shard breakdown
  in :attr:`~repro.core.query.QueryExecution.shards`.

The public surface mirrors the single engine (``add`` / ``build`` /
``delete`` / ``search`` / ``query*`` / ``serve`` / stats), so the serving
layer, persistence, and the CLI drive both interchangeably.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator, Sequence

from repro.core.engine import SpatialKeywordEngine
from repro.core.corpus import CorpusStats
from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.core.ranking import DistanceDecayRanking, RankingCallable, validate_monotonicity
from repro.core.search import SearchCounters
from repro.errors import IndexError_, QueryError, StorageError
from repro.obs import MetricsRegistry
from repro.obs import trace as qtrace
from repro.storage.faults import retry_transient
from repro.storage.sharedread import activate_session, current_session
from repro.model import SearchResult, SpatialObject
from repro.shard.merge import TopKMerger
from repro.shard.partitioner import SpatialPartitioner, make_partitioner
from repro.shard.summary import DEFAULT_SUMMARY_BYTES, KeywordSummary
from repro.spatial.geometry import Rect, target_min_distance
from repro.storage.iostats import IOStats, collecting_io

#: Per-shard failure policies (see :class:`ShardedEngine`).
FAIL_FAST = "fail-fast"
PARTIAL = "partial"
_FAILURE_POLICIES = frozenset({FAIL_FAST, PARTIAL})

#: Keyword summaries are rebuilt from a shard's live corpus once deletes
#: accumulate past ``max(SUMMARY_STALE_MIN, live * SUMMARY_STALE_RATIO)``
#: — Bloom bits cannot be cleared per-document, so without a rebuild a
#: shard whose last holder of a term was deleted keeps attracting that
#: term's queries forever.
SUMMARY_STALE_MIN = 8
SUMMARY_STALE_RATIO = 0.25


class ShardedEngine:
    """N spatial-keyword engines behind the single-engine API.

    Args:
        n_shards: number of partitions (each a full engine).
        partitioner: partitioning strategy, "kd" (balanced recursive
            splits, the default) or "grid" (uniform cells), or a
            pre-constructed :class:`SpatialPartitioner`.
        index: index kind every shard uses ("ir2", "mir2", "rtree",
            "iio", "sig", ...).
        workers: fan-out threads per query (defaults to ``n_shards``,
            capped at 16).
        failure_policy: what a query does when one shard keeps failing
            with a :class:`~repro.errors.StorageError` after retries —
            ``"fail-fast"`` (the default) re-raises the shard's error;
            ``"partial"`` answers from the surviving shards and marks the
            execution :attr:`~repro.core.query.QueryExecution.degraded`
            with the failed shard ids.
        retries: bounded retries (with exponential backoff) per shard for
            :class:`~repro.errors.TransientDeviceError` before the
            failure policy applies.
        retry_backoff_s: initial retry backoff; doubles per retry.
        metrics: optional :class:`repro.obs.MetricsRegistry` receiving
            per-query fan-out counters (``shard.fanout.*`` plus a
            ``shard.<id>.*`` family per shard).  ``None`` records
            nothing; :class:`repro.serve.QueryService` attaches its own
            registry to an unset engine.
        **engine_kwargs: forwarded to every shard's
            :class:`SpatialKeywordEngine` (``signature_bytes``,
            ``block_size``, ``analyzer``, ...).
    """

    def __init__(
        self,
        n_shards: int = 4,
        partitioner: str | SpatialPartitioner = "kd",
        index: str = "ir2",
        workers: int | None = None,
        failure_policy: str = FAIL_FAST,
        retries: int = 2,
        retry_backoff_s: float = 0.005,
        metrics: MetricsRegistry | None = None,
        summary_bytes: int = DEFAULT_SUMMARY_BYTES,
        **engine_kwargs,
    ) -> None:
        if n_shards < 1:
            raise QueryError(f"n_shards must be >= 1, got {n_shards}")
        if failure_policy not in _FAILURE_POLICIES:
            raise QueryError(
                f"failure_policy must be one of {sorted(_FAILURE_POLICIES)}, "
                f"got {failure_policy!r}"
            )
        self.failure_policy = failure_policy
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.metrics = metrics
        self.n_shards = n_shards
        self._index_kind = index
        self._engine_kwargs = dict(engine_kwargs)
        self.partitioner = (
            partitioner
            if isinstance(partitioner, SpatialPartitioner)
            else make_partitioner(partitioner, n_shards)
        )
        if self.partitioner.n_shards != n_shards:
            raise QueryError(
                f"partitioner covers {self.partitioner.n_shards} shards, "
                f"engine expects {n_shards}"
            )
        self.shards: list[SpatialKeywordEngine] = [
            SpatialKeywordEngine(index=index, **engine_kwargs)
            for _ in range(n_shards)
        ]
        self._staged: list[SpatialObject] = []
        self._shard_of: dict[int, int] = {}
        self._mbbs: list[Rect | None] = [None] * n_shards
        self._summary_bytes = summary_bytes
        self._summaries: list[KeywordSummary | None] = [None] * n_shards
        self.built = False
        self._workers = min(workers or n_shards, 16)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_finalizer = None

    @classmethod
    def from_parts(
        cls,
        shards: Sequence[SpatialKeywordEngine],
        partitioner: SpatialPartitioner,
        shard_of: dict[int, int],
        mbbs: Sequence[Rect | None],
        failure_policy: str = FAIL_FAST,
        retries: int = 2,
        retry_backoff_s: float = 0.005,
        summaries: Sequence[KeywordSummary | None] | None = None,
    ) -> "ShardedEngine":
        """Reassemble a built sharded engine (the persistence load path).

        ``summaries`` restores persisted keyword summaries; when ``None``
        (e.g. a manifest written before summaries existed) they are
        rebuilt from the shard corpora so routing stays keyword-aware.
        """
        partitioner.require_fitted()
        self = cls.__new__(cls)
        self.failure_policy = failure_policy
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.metrics = None
        self.n_shards = len(shards)
        self.shards = list(shards)
        self._index_kind = shards[0].index_kind if shards else "ir2"
        self._engine_kwargs = {}
        self.partitioner = partitioner
        self._staged = []
        self._shard_of = dict(shard_of)
        self._mbbs = list(mbbs)
        self._summary_bytes = DEFAULT_SUMMARY_BYTES
        self.built = all(shard.index.built for shard in shards)
        self._workers = min(len(shards), 16)
        self._pool = None
        self._pool_finalizer = None
        if summaries is not None:
            self._summaries = list(summaries)
            if self._summaries and self._summaries[0] is not None:
                self._summary_bytes = self._summaries[0].factory.length_bytes
        else:
            self._summaries = [None] * self.n_shards
            self._rebuild_summaries()
        return self

    # -- Population -------------------------------------------------------------

    def add_object(self, oid: int, point: Sequence[float], text: str) -> None:
        """Stage one object (before :meth:`build`) or insert it live (after)."""
        self.add(SpatialObject(oid, tuple(float(c) for c in point), text))

    def add(self, obj: SpatialObject) -> None:
        """Stage or live-insert a :class:`~repro.model.SpatialObject`."""
        if obj.oid in self._shard_of:
            raise QueryError(f"object id {obj.oid} already present")
        if not self.built:
            # Staged objects get a provisional marker; the real shard is
            # decided when build() fits the partitioner.
            self._staged.append(obj)
            self._shard_of[obj.oid] = -1
            return
        shard_id = self.partitioner.assign_object(obj, analyzer=self.analyzer)
        self.shards[shard_id].add(obj)
        self._shard_of[obj.oid] = shard_id
        self._grow_mbb(shard_id, obj.point)
        summary = self._summaries[shard_id]
        if summary is not None:
            summary.add_terms(self.analyzer.terms(obj.text))

    def add_all(self, objects: Iterable[SpatialObject]) -> None:
        """Stage or live-insert many objects."""
        for obj in objects:
            self.add(obj)

    def build(self, bulk: bool = True) -> None:
        """Partition everything staged so far and build every shard.

        A second call (e.g. :meth:`repro.serve.QueryService.build` after
        live mutations) rebuilds each shard's index in place over its
        current corpus; objects are not re-partitioned.
        """
        if not self.built:
            self.partitioner.fit_objects(self._staged, analyzer=self.analyzer)
            for obj in self._staged:
                shard_id = self.partitioner.assign_object(
                    obj, analyzer=self.analyzer
                )
                self.shards[shard_id].add(obj)
                self._shard_of[obj.oid] = shard_id
            self._staged = []
        for shard in self.shards:
            shard.build(bulk=bulk)
        self._recompute_mbbs()
        self._rebuild_summaries()
        self.built = True

    def delete(self, oid: int) -> bool:
        """Remove an object from whichever shard holds it.

        The shard's MBB is left untouched — a too-large bound can only
        make pruning conservative, never wrong.
        """
        if not self.built:
            raise IndexError_("build() the engine before deleting objects")
        shard_id = self._shard_of.get(oid)
        if shard_id is None or shard_id < 0:
            return False
        removed = self.shards[shard_id].delete(oid)
        if removed:
            del self._shard_of[oid]
            self._note_summary_delete(shard_id)
        return removed

    def require_built(self) -> None:
        """Raise :class:`IndexError_` unless :meth:`build` has completed."""
        if not self.built:
            raise IndexError_("sharded engine has not been built yet")

    def contains(self, oid: int) -> bool:
        """Whether ``oid`` is currently live (staged or sharded)."""
        return oid in self._shard_of

    def clone_empty(self) -> "ShardedEngine":
        """A fresh, empty sharded engine with this engine's configuration.

        The snapshot maintainer's copy-on-write merges rebuild into the
        clone (restaging every live object, refitting the partitioner)
        and swap it in, leaving this engine untouched for in-flight
        readers.  Engines reassembled by :meth:`from_parts` (the
        persistence load path) derive per-shard construction kwargs from
        their first shard's stored config.
        """
        kwargs = dict(self._engine_kwargs)
        if not kwargs and self.shards:
            kwargs = {
                key: value
                for key, value in self.shards[0]._init_config.items()
                if key != "index"
            }
            kwargs["analyzer"] = self.shards[0].analyzer
        return ShardedEngine(
            n_shards=self.n_shards,
            partitioner=make_partitioner(self.partitioner.kind, self.n_shards),
            index=self._index_kind,
            workers=self._workers,
            failure_policy=self.failure_policy,
            retries=self.retries,
            retry_backoff_s=self.retry_backoff_s,
            metrics=self.metrics,
            summary_bytes=self._summary_bytes,
            **kwargs,
        )

    def _grow_mbb(self, shard_id: int, point: Sequence[float]) -> None:
        rect = Rect.from_point(point)
        mbb = self._mbbs[shard_id]
        self._mbbs[shard_id] = rect if mbb is None else mbb.union(rect)

    def _recompute_mbbs(self) -> None:
        self._mbbs = [None] * self.n_shards
        for shard_id, shard in enumerate(self.shards):
            points = [obj.point for obj in shard.corpus.objects()]
            if points:
                self._mbbs[shard_id] = Rect.union_all(
                    Rect.from_point(p) for p in points
                )

    # -- Keyword summaries -------------------------------------------------------

    @property
    def summaries(self) -> list[KeywordSummary | None]:
        """The routing table's per-shard keyword summaries (live view)."""
        return list(self._summaries)

    def _rebuild_summaries(self) -> None:
        """Refill every shard's summary from its live corpus (tight fit)."""
        self._summaries = [
            KeywordSummary(length_bytes=self._summary_bytes)
            for _ in range(self.n_shards)
        ]
        analyzer = self.analyzer
        for shard_id, shard in enumerate(self.shards):
            self._summaries[shard_id].rebuild(
                analyzer.terms(obj.text) for obj in shard.corpus.objects()
            )

    def _rebuild_summary(self, shard_id: int) -> None:
        analyzer = self.analyzer
        summary = self._summaries[shard_id]
        if summary is None:
            summary = KeywordSummary(length_bytes=self._summary_bytes)
            self._summaries[shard_id] = summary
        summary.rebuild(
            analyzer.terms(obj.text)
            for obj in self.shards[shard_id].corpus.objects()
        )

    def _note_summary_delete(self, shard_id: int) -> None:
        """Track summary staleness; rebuild once deletes loosen it too far."""
        summary = self._summaries[shard_id]
        if summary is None:
            return
        summary.note_delete()
        live = len(self.shards[shard_id])
        threshold = max(SUMMARY_STALE_MIN, int(live * SUMMARY_STALE_RATIO))
        if summary.stale_deletes >= threshold:
            self._rebuild_summary(shard_id)

    def _keyword_pruned(self, shard_id: int, terms: Sequence[str]) -> bool:
        """Conjunctive routing test: can this shard hold *all* query terms?

        Distance-first semantics require every keyword in every answer,
        so one provably absent term rules the whole shard out.  False
        positives in the Bloom filter only cost a wasted probe.
        """
        if not terms:
            return False
        summary = self._summaries[shard_id]
        return summary is not None and not summary.may_contain_all(terms)

    def _keyword_pruned_ranked(self, shard_id: int, terms: Sequence[str]) -> bool:
        """Disjunctive routing test for ranked queries under zero-IR pruning.

        Ranked scoring admits partial matches, so a shard is skippable
        only when *every* query term is provably absent (all its results
        would score zero IR and be dropped anyway).
        """
        if not terms:
            return False
        summary = self._summaries[shard_id]
        return summary is not None and not summary.may_contain_any(terms)

    # -- Queries ------------------------------------------------------------------

    def search(
        self, query: SpatialKeywordQuery, *, vocabulary=None
    ) -> QueryExecution:
        """Unified entry point; same contract as the single engine's.

        Distance-first queries (point or area) run the scatter-gather
        fan-out; ranked queries execute on every shard with one shared
        ranking function and merge by score.  ``vocabulary`` overrides
        the corpus statistics ranked scoring uses (the snapshot layer
        passes a version-wide vocabulary so dirty overlays score
        exactly); ``None`` uses the merged per-shard statistics.
        """
        self.require_built()
        if query.ranking is not None:
            return self._search_ranked(query, vocabulary=vocabulary)
        return self._scatter_gather(query)

    def search_many(
        self, queries: Sequence[SpatialKeywordQuery]
    ) -> list[QueryExecution]:
        """Execute a batch under one shared-read session (batch-aware fan-out).

        Same contract as :meth:`SpatialKeywordEngine.search_many`: answers
        are byte-identical to N serial :meth:`search` calls, and the
        session follows each query's scatter-gather into the shard worker
        threads, so hot upper tree nodes are read from each shard's device
        once per batch rather than once per query.
        """
        from repro.storage.sharedread import shared_read_session

        with shared_read_session():
            return [self.search(query) for query in queries]

    def query(
        self, point: Sequence[float], keywords: Sequence[str], k: int = 10
    ) -> QueryExecution:
        """Distance-first top-k across every shard. Delegates to :meth:`search`."""
        return self.search(SpatialKeywordQuery.of(point, keywords, k))

    def query_area(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        keywords: Sequence[str],
        k: int = 10,
    ) -> QueryExecution:
        """Area-anchored distance-first query. Delegates to :meth:`search`."""
        area = Rect(tuple(float(c) for c in lo), tuple(float(c) for c in hi))
        return self.search(SpatialKeywordQuery.of_area(area, keywords, k))

    def query_ranked(
        self,
        point: Sequence[float],
        keywords: Sequence[str],
        k: int = 10,
        ranking: RankingCallable | None = None,
        prune_zero_ir: bool = True,
    ) -> QueryExecution:
        """General ranked top-k; one ranking function shared by all shards."""
        if ranking is None:
            ranking = DistanceDecayRanking(
                half_distance=self._default_half_distance()
            )
        else:
            validate_monotonicity(ranking)
        query = SpatialKeywordQuery.of(point, keywords, k, ranking=ranking)
        self.require_built()
        return self._search_ranked(query, prune_zero_ir=prune_zero_ir)

    def query_incremental(
        self,
        point: Sequence[float],
        keywords: Sequence[str],
        counters: SearchCounters | None = None,
    ) -> Iterator[SearchResult]:
        """Lazily merged nearest-first stream across every shard."""
        return self.stream_results(
            SpatialKeywordQuery.of(point, keywords, k=1), counters=counters
        )

    def stream_results(
        self,
        query: SpatialKeywordQuery,
        counters: SearchCounters | None = None,
    ) -> Iterator[SearchResult]:
        """Incremental distance-first stream over all shards.

        A lazy k-way merge: each shard enters the merge heap as its
        partition's lower-bound distance and is only opened (paying its
        first index I/O) once that bound reaches the head of the heap, so
        consuming a few results touches only the nearest partitions.
        """
        self.require_built()
        if not self._supports_incremental():
            raise QueryError(
                f"index kind {self._index_kind!r} cannot stream results "
                "incrementally"
            )
        return self._merged_stream(query, counters)

    def _merged_stream(
        self, query: SpatialKeywordQuery, counters: SearchCounters | None
    ) -> Iterator[SearchResult]:
        sequence = itertools.count()
        heap: list[tuple[float, int, str, int, SearchResult | None]] = []
        streams: dict[int, Iterator[SearchResult]] = {}
        terms = self.analyzer.query_terms(query.keywords)
        for shard_id, mbb in enumerate(self._mbbs):
            if mbb is None:
                continue
            if self._keyword_pruned(shard_id, terms):
                continue
            bound = target_min_distance(mbb, query.target)
            heapq.heappush(heap, (bound, next(sequence), "bound", shard_id, None))

        def advance(shard_id: int) -> None:
            result = next(streams[shard_id], None)
            if result is not None:
                heapq.heappush(
                    heap,
                    (result.distance, next(sequence), "result", shard_id, result),
                )

        while heap:
            _, _, kind, shard_id, result = heapq.heappop(heap)
            if kind == "bound":
                streams[shard_id] = self.shards[shard_id].stream_results(
                    query, counters=counters
                )
                advance(shard_id)
            else:
                yield result
                advance(shard_id)

    # -- Scatter-gather internals -------------------------------------------------

    def _supports_incremental(self) -> bool:
        return bool(self.shards) and self.shards[0].index.supports_incremental

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            pool = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-shard"
            )
            self._pool = pool
            # Wake idle workers if the engine is dropped without close().
            self._pool_finalizer = weakref.finalize(
                self, pool.shutdown, wait=False
            )
        return self._pool

    def _scatter_gather(self, query: SpatialKeywordQuery) -> QueryExecution:
        bounds = [
            target_min_distance(mbb, query.target) if mbb is not None else None
            for mbb in self._mbbs
        ]
        terms = self.analyzer.query_terms(query.keywords)
        merger = TopKMerger(query.k)
        incremental = self._supports_incremental()
        reports: list[dict | None] = [None] * self.n_shards
        ios: list[IOStats] = [IOStats() for _ in range(self.n_shards)]
        errors: list[StorageError | None] = [None] * self.n_shards
        totals_lock = threading.Lock()
        totals = {"objects": 0, "false_pos": 0, "nodes": 0}
        # Captured on the dispatching thread; each fan-out worker opens
        # its own child span under it (cross-thread context propagation).
        # The batch front-end's shared-read session propagates the same
        # way, so one batch shares block reads across shard workers too.
        parent = qtrace.current_span()
        session = current_session()

        def run_shard(shard_id: int) -> None:
            report = {
                "shard": shard_id,
                "lower_bound": bounds[shard_id],
                "pruned": False,
                "pruned_by_keywords": False,
                "failed": False,
                "error": None,
                "strategy": None,
                "results_offered": 0,
                "objects_inspected": 0,
                "nodes_visited": 0,
                "random_reads": 0,
                "sequential_reads": 0,
                "retries": 0,
            }
            reports[shard_id] = report
            span = (
                parent.trace.new_span(
                    f"shard-{shard_id}", category="shard",
                    parent=parent, shard=shard_id,
                )
                if parent is not None
                else None
            )
            try:
                with qtrace.activate(span), activate_session(session):
                    search_shard(shard_id, report)
            finally:
                if span is not None:
                    span.finish()
                    if report["strategy"] is not None:
                        span.annotate(strategy=report["strategy"])
                    span.annotate(
                        lower_bound=report["lower_bound"],
                        pruned=report["pruned"],
                        pruned_by_keywords=report["pruned_by_keywords"],
                        failed=report["failed"],
                        retries=report["retries"],
                        results_offered=report["results_offered"],
                        objects_inspected=report["objects_inspected"],
                        nodes_visited=report["nodes_visited"],
                        random_reads=report["random_reads"],
                        sequential_reads=report["sequential_reads"],
                    )
                    if report["error"]:
                        span.annotate(error=report["error"])

        def search_shard(shard_id: int, report: dict) -> None:
            bound = bounds[shard_id]
            if bound is None:  # empty shard
                report["pruned"] = True
                return
            # Keyword routing first: it is deterministic (unlike the
            # threshold check, which depends on sibling-shard progress),
            # so fan-out counters for selective workloads are exact.
            if self._keyword_pruned(shard_id, terms):
                report["pruned"] = True
                report["pruned_by_keywords"] = True
                return
            if bound > merger.threshold():
                report["pruned"] = True
                return

            def count_retry(attempt: int, exc: Exception) -> None:
                report["retries"] += 1

            # Adaptive shards route each *sub-query* independently: the
            # planner decides from this shard's own statistics whether to
            # pull the nearest-first stream (tree strategies) or run the
            # local top-k as one scan.  Plan decisions are shape-cached,
            # so the search call re-planning inside the shard is free and
            # lands on the identical (deterministic) choice.
            pull_stream = incremental
            plan_for = getattr(self.shards[shard_id].index, "plan_for", None)
            if plan_for is not None:
                decision = plan_for(query)
                report["strategy"] = decision.strategy
                pull_stream = self.shards[
                    shard_id
                ].index.strategy_supports_streaming(decision.strategy)

            try:
                if pull_stream:
                    # Retrying re-offers results the failed attempt already
                    # merged; TopKMerger deduplicates by oid, so a restart
                    # from the top of the stream is idempotent.
                    execution = retry_transient(
                        lambda: self._pull_incremental(shard_id, query, merger),
                        self.retries, self.retry_backoff_s,
                        on_retry=count_retry,
                    )
                else:
                    execution = retry_transient(
                        lambda: self.shards[shard_id].search(query),
                        self.retries, self.retry_backoff_s,
                        on_retry=count_retry,
                    )
                    for result in execution.results:
                        if result.distance > merger.threshold():
                            break
                        merger.offer(result)
                        report["results_offered"] += 1
            except StorageError as exc:
                report["failed"] = True
                report["error"] = f"{type(exc).__name__}: {exc}"
                errors[shard_id] = exc
                return
            if pull_stream:
                report["results_offered"] = execution.pop("offered")
                io = execution.pop("io")
                counters = execution.pop("counters")
                objects_inspected = counters.objects_inspected
                false_positives = counters.false_positives
                nodes = io.category_reads("node")
            else:
                io = execution.io
                objects_inspected = execution.objects_inspected
                false_positives = execution.false_positive_candidates
                nodes = execution.nodes_visited
            ios[shard_id] = io
            report["objects_inspected"] = objects_inspected
            report["nodes_visited"] = nodes
            report["random_reads"] = io.random_reads
            report["sequential_reads"] = io.sequential_reads
            with totals_lock:
                totals["objects"] += objects_inspected
                totals["false_pos"] += false_positives
                totals["nodes"] += nodes

        # Submit nearest shards first: with fewer workers than shards the
        # far partitions often find the threshold already tight and prune
        # themselves without touching a block.
        order = sorted(
            (i for i in range(self.n_shards)),
            key=lambda i: bounds[i] if bounds[i] is not None else float("inf"),
        )
        pool = self._executor()
        futures = [pool.submit(run_shard, shard_id) for shard_id in order]
        for future in futures:
            future.result()

        failed = [i for i, exc in enumerate(errors) if exc is not None]
        self._record_fanout_metrics(reports)
        if parent is not None and failed:
            parent.annotate(degraded=True, failed_shards=failed)
        if failed and self.failure_policy == FAIL_FAST:
            raise errors[failed[0]]
        io = IOStats()
        for shard_io in ios:
            io = io.merged_with(shard_io)
        return QueryExecution(
            query=query,
            results=merger.results(),
            io=io,
            objects_inspected=totals["objects"],
            false_positive_candidates=totals["false_pos"],
            nodes_visited=totals["nodes"],
            algorithm=self._algorithm_label(),
            shards=[r for r in reports if r is not None],
            degraded=bool(failed),
            failed_shards=failed or None,
            plan=self._merged_plan(reports),
        )

    def _pull_incremental(
        self, shard_id: int, query: SpatialKeywordQuery, merger: TopKMerger
    ) -> dict:
        """Pull one shard's stream until it can no longer affect the top-k."""
        counters = SearchCounters()
        offered = 0
        with collecting_io() as io:
            for result in self.shards[shard_id].stream_results(
                query, counters=counters
            ):
                if result.distance > merger.threshold():
                    break
                merger.offer(result)
                offered += 1
        return {"io": io, "counters": counters, "offered": offered}

    def _search_ranked(
        self,
        query: SpatialKeywordQuery,
        prune_zero_ir: bool = True,
        vocabulary=None,
    ) -> QueryExecution:
        ranking = query.ranking
        if ranking is None:
            ranking = DistanceDecayRanking(
                half_distance=self._default_half_distance()
            )
            query = query.with_ranking(ranking)
        if not hasattr(self.shards[0].index, "execute_ranked"):
            raise QueryError(
                f"index kind {self._index_kind!r} does not support ranked queries"
            )
        # Per-shard idf values would skew scores toward whatever terms are
        # locally rare; every shard scores against the merged corpus-wide
        # vocabulary so sharded scores equal single-engine scores.
        if vocabulary is None:
            vocabulary = self._global_vocabulary()
        terms = self.analyzer.query_terms(query.keywords)
        executions: list[QueryExecution | None] = [None] * self.n_shards
        errors: list[StorageError | None] = [None] * self.n_shards
        retries_taken = [0] * self.n_shards
        nonempty = [i for i, mbb in enumerate(self._mbbs) if mbb is not None]
        # Under zero-IR pruning a shard provably holding none of the query
        # terms can only contribute zero-scored results the scorer drops
        # anyway — skip it before paying any I/O.
        kw_pruned = {
            i
            for i in nonempty
            if prune_zero_ir and self._keyword_pruned_ranked(i, terms)
        }
        parent = qtrace.current_span()
        session = current_session()
        shard_spans: list = [None] * self.n_shards

        def run_shard(shard_id: int) -> None:
            def count_retry(attempt: int, exc: Exception) -> None:
                retries_taken[shard_id] += 1

            span = (
                parent.trace.new_span(
                    f"shard-{shard_id}", category="shard",
                    parent=parent, shard=shard_id,
                )
                if parent is not None
                else None
            )
            shard_spans[shard_id] = span
            try:
                with qtrace.activate(span), activate_session(session):
                    executions[shard_id] = retry_transient(
                        lambda: self.shards[shard_id].index.execute_ranked(
                            query, ranking, prune_zero_ir=prune_zero_ir,
                            vocabulary=vocabulary,
                        ),
                        self.retries, self.retry_backoff_s,
                        on_retry=count_retry,
                    )
            except StorageError as exc:
                errors[shard_id] = exc
            finally:
                if span is not None:
                    span.finish()

        pool = self._executor()
        for future in [
            pool.submit(run_shard, i) for i in nonempty if i not in kw_pruned
        ]:
            future.result()

        failed = [i for i, exc in enumerate(errors) if exc is not None]
        if parent is not None and failed:
            parent.annotate(degraded=True, failed_shards=failed)
        if failed and self.failure_policy == FAIL_FAST:
            raise errors[failed[0]]
        merged: list[SearchResult] = []
        io = IOStats()
        objects = false_pos = nodes = 0
        reports = []
        for shard_id in nonempty:
            if shard_id in kw_pruned:
                report = {
                    "shard": shard_id,
                    "lower_bound": None,
                    "pruned": True,
                    "pruned_by_keywords": True,
                    "failed": False,
                    "error": None,
                    "strategy": None,
                    "results_offered": 0,
                    "objects_inspected": 0,
                    "nodes_visited": 0,
                    "random_reads": 0,
                    "sequential_reads": 0,
                    "retries": 0,
                }
                reports.append(report)
                if parent is not None:
                    span = parent.trace.new_span(
                        f"shard-{shard_id}", category="shard",
                        parent=parent, shard=shard_id,
                    )
                    span.finish()
                    span.annotate(pruned=True, pruned_by_keywords=True)
                continue
            execution = executions[shard_id]
            if execution is None:  # failed shard under the partial policy
                exc = errors[shard_id]
                reports.append({
                    "shard": shard_id,
                    "lower_bound": None,
                    "pruned": False,
                    "pruned_by_keywords": False,
                    "failed": True,
                    "error": f"{type(exc).__name__}: {exc}",
                    "strategy": None,
                    "results_offered": 0,
                    "objects_inspected": 0,
                    "nodes_visited": 0,
                    "random_reads": 0,
                    "sequential_reads": 0,
                    "retries": retries_taken[shard_id],
                })
                if shard_spans[shard_id] is not None:
                    shard_spans[shard_id].annotate(
                        failed=True,
                        error=f"{type(exc).__name__}: {exc}",
                        retries=retries_taken[shard_id],
                    )
                continue
            merged.extend(execution.results)
            io = io.merged_with(execution.io)
            objects += execution.objects_inspected
            false_pos += execution.false_positive_candidates
            nodes += execution.nodes_visited
            strategy = (execution.plan or {}).get("strategy")
            reports.append({
                "shard": shard_id,
                "lower_bound": None,
                "pruned": False,
                "pruned_by_keywords": False,
                "failed": False,
                "error": None,
                "strategy": strategy,
                "results_offered": len(execution.results),
                "objects_inspected": execution.objects_inspected,
                "nodes_visited": execution.nodes_visited,
                "random_reads": execution.io.random_reads,
                "sequential_reads": execution.io.sequential_reads,
                "retries": retries_taken[shard_id],
            })
            if shard_spans[shard_id] is not None:
                if strategy is not None:
                    shard_spans[shard_id].annotate(strategy=strategy)
                shard_spans[shard_id].annotate(
                    failed=False,
                    retries=retries_taken[shard_id],
                    results_offered=len(execution.results),
                    objects_inspected=execution.objects_inspected,
                    nodes_visited=execution.nodes_visited,
                    random_reads=execution.io.random_reads,
                    sequential_reads=execution.io.sequential_reads,
                )
        self._record_fanout_metrics(reports)
        merged.sort(key=lambda r: (-r.score, r.distance, r.obj.oid))
        return QueryExecution(
            query=query,
            results=merged[: query.k],
            io=io,
            objects_inspected=objects,
            false_positive_candidates=false_pos,
            nodes_visited=nodes,
            algorithm=f"{self._algorithm_label()}-RANKED",
            shards=reports,
            degraded=bool(failed),
            failed_shards=failed or None,
            plan=self._merged_plan(reports),
        )

    @staticmethod
    def _merged_plan(reports: list[dict | None]) -> dict | None:
        """Summarize per-shard routing into one execution-level record.

        ``strategy`` is the sorted, "+"-joined set of strategies the
        shards chose (often a single name; mixed routing shows as e.g.
        ``"iio+ir2"``); ``per_shard`` maps shard id -> strategy.  None
        when no shard ran an adaptive index.
        """
        per_shard = {
            str(report["shard"]): report["strategy"]
            for report in reports
            if report is not None and report.get("strategy") is not None
        }
        if not per_shard:
            return None
        return {
            "strategy": "+".join(sorted(set(per_shard.values()))),
            "per_shard": per_shard,
        }

    def _global_vocabulary(self):
        """Merged document-frequency statistics across every shard.

        Shards hold disjoint objects, so summing per-shard frequencies
        reproduces the single-engine vocabulary exactly.  Recomputed per
        ranked query — cheap next to index I/O, and always consistent
        with live inserts and deletes.
        """
        vocabulary = self.shards[0].corpus.vocabulary
        for shard in self.shards[1:]:
            vocabulary = vocabulary.merged_with(shard.corpus.vocabulary)
        return vocabulary

    def _default_half_distance(self) -> float:
        """10% of the *global* extent, identical on every shard.

        Each shard's own default would depend on its partition's extent;
        resolving the ranking once here keeps sharded scores equal to the
        single-engine scores over the same corpus.
        """
        points = [obj.point for obj in self.objects()]
        if not points:
            return 1.0
        dims = len(points[0])
        spans = [
            max(p[d] for p in points) - min(p[d] for p in points)
            for d in range(dims)
        ]
        extent = max(spans) if spans else 1.0
        return max(extent * 0.1, 1e-9)

    def _algorithm_label(self) -> str:
        return f"SHARDED-{self._index_kind.upper()}x{self.n_shards}"

    def _record_fanout_metrics(self, reports: list[dict | None]) -> None:
        """Emit one query's per-shard reports into the metrics registry.

        Records both the fleet-wide ``shard.fanout.*`` counters and a
        per-shard ``shard.<id>.*`` family, so a hot or flaky partition is
        visible individually.  A no-op without a registry attached.
        """
        m = self.metrics
        if m is None:
            return
        m.counter("shard.fanout.queries").inc()
        for report in reports:
            if report is None:
                continue
            shard_id = report["shard"]
            if report["pruned"]:
                m.counter("shard.fanout.pruned").inc()
                m.counter(f"shard.{shard_id}.pruned").inc()
                if report.get("pruned_by_keywords"):
                    m.counter("shard.fanout.pruned_by_keywords").inc()
                    m.counter(f"shard.{shard_id}.pruned_by_keywords").inc()
                continue
            m.counter("shard.fanout.searched").inc()
            m.counter(f"shard.{shard_id}.searched").inc()
            if report["failed"]:
                m.counter("shard.fanout.failed").inc()
                m.counter(f"shard.{shard_id}.failed").inc()
            if report["retries"]:
                m.counter("shard.fanout.retried").inc(report["retries"])
                m.counter(f"shard.{shard_id}.retried").inc(report["retries"])
            if report["results_offered"]:
                m.counter("shard.fanout.offers").inc(report["results_offered"])
                m.counter(f"shard.{shard_id}.offers").inc(
                    report["results_offered"]
                )

    # -- Serving ----------------------------------------------------------------

    def serve(self, workers: int = 4, **kwargs):
        """Wrap this engine in a concurrent :class:`~repro.serve.QueryService`."""
        from repro.serve import QueryService

        return QueryService(self, workers=workers, **kwargs)

    # -- Introspection ----------------------------------------------------------

    @property
    def index_kind(self) -> str:
        """The index kind string every shard was constructed with."""
        return self._index_kind

    @property
    def analyzer(self):
        """The tokenizer shared by every shard."""
        return self.shards[0].analyzer

    @property
    def shard_mbbs(self) -> list[Rect | None]:
        """Each shard's minimum bounding box (None for empty shards)."""
        return list(self._mbbs)

    def shard_of(self, oid: int) -> int | None:
        """Shard id currently holding ``oid`` (None when absent/staged)."""
        shard_id = self._shard_of.get(oid)
        return shard_id if shard_id is not None and shard_id >= 0 else None

    def get_object(self, oid: int) -> SpatialObject | None:
        """Load one live object by id (None when absent or only staged)."""
        shard_id = self.shard_of(oid)
        if shard_id is None:
            return None
        return self.shards[shard_id].get_object(oid)

    def objects(self) -> Iterator[SpatialObject]:
        """Yield every live object across all shards (plus staged ones)."""
        for shard in self.shards:
            yield from shard.objects()
        yield from self._staged

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards) + len(self._staged)

    def corpus_stats(self) -> CorpusStats:
        """Aggregate dataset statistics across every shard (Table 1 shape)."""
        total = sum(len(shard) for shard in self.shards)
        if total == 0:
            return CorpusStats(0.0, 0, 0.0, 0, 0.0)
        per_shard = [shard.corpus_stats() for shard in self.shards]
        unique_terms = set()
        for shard in self.shards:
            unique_terms.update(shard.corpus.vocabulary.terms())
        weighted_words = sum(
            s.avg_unique_words_per_object * s.total_objects for s in per_shard
        )
        weighted_blocks = sum(
            s.avg_blocks_per_object * s.total_objects for s in per_shard
        )
        return CorpusStats(
            size_mb=sum(s.size_mb for s in per_shard),
            total_objects=total,
            avg_unique_words_per_object=weighted_words / total,
            unique_words=len(unique_terms),
            avg_blocks_per_object=weighted_blocks / total,
        )

    def index_size_mb(self) -> float:
        """Summed index footprint across every shard."""
        return sum(shard.index_size_mb() for shard in self.shards)

    def io_stats(self) -> IOStats:
        """Merged running I/O counters across every shard's devices."""
        io = IOStats()
        for shard in self.shards:
            io = io.merged_with(shard.io_stats())
        return io

    def reset_io(self) -> None:
        """Zero the I/O counters on every shard."""
        for shard in self.shards:
            shard.reset_io()

    # -- Lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Shut the fan-out thread pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
