"""Concurrent serving layer over the paper's single-query engine.

The research core executes one query at a time; this package adds the
production wrapper the ROADMAP's north star asks for:

* :class:`QueryService` — thread-pooled dispatch; in the default
  snapshot-maintenance mode queries pin immutable published engine
  versions (:class:`EngineVersion`) and never block on writers, whose
  mutations buffer into a :class:`SnapshotMaintainer` write buffer and
  merge in the background (the legacy ``"rwlock"`` mode keeps the
  original readers-writer lock);
* :class:`BatchScheduler` / :class:`BatchConfig` — the batch front-end:
  arrival-window grouping, duplicate coalescing, one shared-read
  session per group, and admission control
  (:class:`~repro.errors.ServiceOverloadError` shedding);
* :class:`QueryResultCache` — LRU memoization of identical queries with
  explicit invalidation on every engine mutation;
* :class:`TraceSpan` / :class:`TraceLog` — per-query tracing (queue
  wait, search time, I/O counts, cache disposition);
* :class:`ServiceStats` — lifetime aggregates.

Quick start::

    from repro import SpatialKeywordEngine
    from repro.serve import BatchConfig, QueryService

    engine = SpatialKeywordEngine(index="ir2")
    ...
    engine.build()
    with QueryService(engine, workers=8, batching=BatchConfig()) as service:
        executions = service.run_batch(queries)
        print(service.stats().summary())
"""

from repro.serve.maintenance import (
    EngineVersion,
    SnapshotMaintainer,
    WriteBuffer,
)
from repro.serve.resultcache import QueryResultCache
from repro.serve.scheduler import BatchConfig, BatchGroup, BatchScheduler
from repro.serve.service import (
    RWLOCK,
    SNAPSHOT,
    QueryService,
    ReadWriteLock,
    ServiceStats,
)
from repro.serve.tracing import TraceLog, TraceSpan

__all__ = [
    "BatchConfig",
    "BatchGroup",
    "BatchScheduler",
    "EngineVersion",
    "QueryResultCache",
    "QueryService",
    "RWLOCK",
    "ReadWriteLock",
    "SNAPSHOT",
    "ServiceStats",
    "SnapshotMaintainer",
    "TraceLog",
    "TraceSpan",
    "WriteBuffer",
]
