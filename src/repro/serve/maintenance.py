"""Snapshot (copy-on-write) index maintenance for the serving layer.

The original serving layer serialized every mutation against the whole
reader pool with a writer-preferring :class:`~repro.serve.service.
ReadWriteLock`: one insert stalls *all* arriving queries until the
writer drains — fatal at production write rates.  This module replaces
that with versioned snapshot reads, the memtable/LSM idea applied to the
paper's structures:

* the engine state visible to queries is an immutable published
  :class:`EngineVersion` — a built base engine plus a flat overlay of
  buffered inserts and deleted oids.  Readers grab the current version
  with one attribute read and never block on writers;
* ``add``/``delete`` append to a log-structured :class:`WriteBuffer`
  and atomically publish a new version (the overlay is consulted at
  query time: buffered inserts are merged into the top-k, deleted oids
  are masked out of the base answer);
* when the buffer reaches ``merge_threshold``, a background merge folds
  it into a *fresh* base engine (copy-on-write: the old base is never
  mutated after publication, so in-flight readers stay on a consistent
  snapshot) and publishes the rebuilt version with an empty overlay.

Two buffer epochs make merges non-blocking for writers too: the buffer
being folded is *frozen* while a new *active* buffer keeps receiving
writes; the published overlay is always the flat composition of the two.

Determinism contract: for any published version, a distance-first query
answered through :meth:`EngineVersion.search` equals the brute-force
oracle over that version's live objects — the overlay merge uses the
same conjunctive keyword filter, the same distance function, and the
same ``(distance, oid)`` tie-break as every other cut path in the
repository.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace
from typing import Callable, Iterator

from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.errors import QueryError, VersionRetiredError
from repro.model import SearchResult, SpatialObject, result_sort_key
from repro.obs import MetricsRegistry
from repro.spatial.geometry import target_point_distance
from repro.text.irmodel import ir_score


#: A frozen buffer at most this fraction of the base's live objects is
#: folded *incrementally* — live inserts/deletes applied to a structural
#: copy of the base — instead of a full clone_empty()+add_all+build
#: rebuild.  Above the ratio a bulk rebuild is cheaper (and produces the
#: better-packed bulk-loaded tree).
INCREMENTAL_MERGE_MAX_RATIO = 0.25


def engine_is_built(engine) -> bool:
    """Whether a (single or sharded) engine has a built index."""
    built = getattr(engine, "built", None)
    if built is not None:
        return bool(built)
    return bool(engine.index.built)


class WriteBuffer:
    """One epoch of buffered mutations (the log-structured memtable).

    Applied on top of an underlying engine state, the buffer's live set
    is ``(base - deleted - inserts.keys()) + inserts.values()``: the
    masked set is ``deleted | inserts.keys()`` (a re-inserted oid masks
    the base's stale copy), and the buffered inserts are the overlay's
    own contribution.  Mutated only under the maintainer's mutex.
    """

    __slots__ = ("inserts", "deleted")

    def __init__(self) -> None:
        self.inserts: dict[int, SpatialObject] = {}
        self.deleted: set[int] = set()

    @property
    def depth(self) -> int:
        """Buffered operations pending a merge."""
        return len(self.inserts) + len(self.deleted)

    def record_insert(self, obj: SpatialObject) -> None:
        # A previously-buffered delete of the same oid stays in
        # ``deleted``: it still has to mask any base/frozen copy, and
        # the re-inserted object wins because ``inserts`` is consulted
        # first everywhere.
        self.inserts[obj.oid] = obj

    def record_delete(self, oid: int) -> None:
        self.inserts.pop(oid, None)
        self.deleted.add(oid)

    def composed_with(self, later: "WriteBuffer") -> "WriteBuffer":
        """Flatten ``self`` then ``later`` into one equivalent buffer."""
        merged = WriteBuffer()
        merged.inserts = dict(self.inserts)
        merged.deleted = set(self.deleted)
        for oid in later.deleted:
            merged.record_delete(oid)
        for obj in later.inserts.values():
            merged.record_insert(obj)
        return merged


class EngineVersion:
    """One immutable published engine state: base engine + flat overlay.

    Readers treat every attribute as frozen; the maintainer constructs a
    new instance for every publication and never mutates an old one (the
    base engine itself is copy-on-write — once a version is published
    its base is only ever *read*).

    Attributes:
        version: monotonically increasing publication number.
        base: the built engine this version reads (single or sharded).
        inserts: buffered objects not yet folded into ``base``.
        deleted: buffered deletions (oids masked out of ``base``).
    """

    __slots__ = ("version", "base", "inserts", "deleted", "_vocabulary")

    def __init__(
        self,
        version: int,
        base,
        inserts: dict[int, SpatialObject],
        deleted: frozenset[int],
    ) -> None:
        self.version = version
        self.base = base
        self.inserts = inserts
        self.deleted = deleted
        # Lazily computed effective vocabulary for ranked queries on a
        # dirty snapshot; the computation is deterministic, so the
        # benign unlocked double-compute race is safe.
        self._vocabulary = None

    @property
    def buffer_depth(self) -> int:
        """Overlay operations pending a merge (0 = clean snapshot)."""
        return len(self.inserts) + len(self.deleted)

    @property
    def dirty(self) -> bool:
        return bool(self.inserts or self.deleted)

    @property
    def masked(self) -> set[int]:
        """Oids whose base copies must not appear in an answer."""
        return set(self.deleted) | set(self.inserts)

    def contains(self, oid: int) -> bool:
        """Whether ``oid`` is live in this version."""
        if oid in self.inserts:
            return True
        if oid in self.deleted:
            return False
        return self.base.contains(oid)

    def objects(self) -> Iterator[SpatialObject]:
        """Every live object of this version (the oracle's input set)."""
        masked = self.masked
        for obj in self.base.objects():
            if obj.oid not in masked:
                yield obj
        yield from self.inserts.values()

    def __len__(self) -> int:
        alive_in_base = len(self.base) - sum(
            1 for oid in self.masked if self.base.contains(oid)
        )
        return alive_in_base + len(self.inserts)

    # -- Queries ----------------------------------------------------------------

    def search(self, query: SpatialKeywordQuery) -> QueryExecution:
        """Answer ``query`` on this version; never blocks on writers.

        A clean version delegates straight to the base engine.  A dirty
        one runs the base search with ``k`` inflated by the masked-set
        size (masking can then never starve the answer below ``k``),
        drops masked oids, merges the matching buffered inserts, and
        re-cuts at ``k`` under the canonical ``(distance, oid)`` order —
        reproducing the brute-force oracle over :meth:`objects` exactly.
        The overlay itself costs no I/O, so the execution's per-query
        I/O delta stays the base search's exact attribution.
        """
        if not self.dirty:
            return self.base.search(query)
        if query.ranking is not None:
            return self._search_ranked(query)
        masked = self.masked
        base_execution = self.base.search(replace(query, k=query.k + len(masked)))
        results = [
            result
            for result in base_execution.results
            if result.obj.oid not in masked
        ]
        analyzer = self.base.analyzer
        terms = analyzer.query_terms(query.keywords)
        for obj in self.inserts.values():
            if analyzer.contains_all(obj.text, terms):
                overlay = SearchResult(
                    obj, target_point_distance(obj.point, query.target)
                )
                overlay.score = -overlay.distance
                results.append(overlay)
        results.sort(key=result_sort_key)
        return replace(
            base_execution, query=query, results=results[: query.k]
        )

    def _search_ranked(self, query: SpatialKeywordQuery) -> QueryExecution:
        """Ranked query on a dirty snapshot, without forcing a flush.

        The base search runs with this version's *effective* vocabulary
        (base statistics minus masked documents plus buffered inserts) so
        every base survivor's idf — and therefore its score — is exactly
        what a flushed engine would compute.  Buffered inserts are scored
        through the same :func:`~repro.text.irmodel.ir_score` the index
        scorer uses, zero-IR overlays are dropped (matching the default
        ``prune_zero_ir`` semantics of the served ranked path), and the
        merged list is re-cut at ``k`` under the canonical ranked order
        ``(-score, distance, oid)``.
        """
        ranking = query.ranking
        analyzer = self.base.analyzer
        terms = analyzer.query_terms(query.keywords)
        vocabulary = self._effective_vocabulary()
        masked = self.masked
        base_execution = self.base.search(
            replace(query, k=query.k + len(masked)), vocabulary=vocabulary
        )
        results = [
            result
            for result in base_execution.results
            if result.obj.oid not in masked
        ]
        for oid in sorted(self.inserts):
            obj = self.inserts[oid]
            relevance = ir_score(obj.text, terms, vocabulary, analyzer)
            if relevance == 0.0:
                continue
            distance = target_point_distance(obj.point, query.target)
            results.append(
                SearchResult(
                    obj,
                    distance,
                    score=ranking(distance, relevance),
                    ir_score=relevance,
                )
            )
        results.sort(key=lambda r: (-r.score, r.distance, r.obj.oid))
        return replace(
            base_execution, query=query, results=results[: query.k]
        )

    def _effective_vocabulary(self):
        """This version's corpus statistics: base ⊖ masked ⊕ inserts.

        Exactly the vocabulary the base would hold after folding the
        overlay, so dirty-snapshot ranked scores are byte-identical to
        post-flush scores.  Computed once per version and memoized.
        """
        vocabulary = self._vocabulary
        if vocabulary is None:
            analyzer = self.base.analyzer
            base_vocab = getattr(self.base, "_global_vocabulary", None)
            vocabulary = (
                base_vocab() if base_vocab is not None
                else self.base.corpus.vocabulary
            ).copy()
            for oid in sorted(self.masked):
                obj = self.base.get_object(oid)
                if obj is not None:
                    vocabulary.remove_document(analyzer.terms(obj.text))
            for oid in sorted(self.inserts):
                vocabulary.add_document(
                    analyzer.terms(self.inserts[oid].text)
                )
            self._vocabulary = vocabulary
        return vocabulary


class SnapshotMaintainer:
    """Owns the write buffer, the merge loop, and version publication.

    One maintainer fronts one base engine.  All mutations go through
    :meth:`add` / :meth:`delete` / :meth:`rebuild`; every effective
    mutation publishes a new :class:`EngineVersion` atomically (readers
    see either the old complete version or the new complete one, never a
    torn intermediate).  Reads go through :attr:`current` — a single
    attribute load, no lock shared with writers.

    Args:
        engine: the (possibly not yet built) engine to front.
        merge_threshold: buffered operations that trigger a background
            merge (``None`` disables automatic merging; ``flush`` and
            ``rebuild`` still fold).
        metrics: registry receiving ``engine.version`` and
            ``maintenance.*`` gauges/counters/histograms.
        tracer: optional :class:`repro.obs.trace.QueryTracer`; merges
            emit a ``merge`` span tree with fold counts and duration.
        version_window: published versions retained for answer-at-version
            reads (:meth:`version_at`), the current one included.  Every
            retained version stays fully readable — its base engine is
            copy-on-write and its overlay immutable — so the window
            bounds the extra memory old bases can pin after merges.
    """

    def __init__(
        self,
        engine,
        merge_threshold: int | None = 64,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        version_window: int = 8,
    ) -> None:
        if merge_threshold is not None and merge_threshold < 1:
            raise QueryError(
                f"merge_threshold must be >= 1 or None, got {merge_threshold}"
            )
        if version_window < 1:
            raise QueryError(
                f"version_window must be >= 1, got {version_window}"
            )
        self.merge_threshold = merge_threshold
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        #: Called with the freshly built base after every merge swap —
        #: the service re-attaches planner metrics to the new engine.
        self.on_base_swap: Callable | None = None
        #: Test hook: called between building the merged base and
        #: publishing it (a slow merge must never block readers).
        self.merge_hook: Callable[[], None] | None = None
        self._mutex = threading.Lock()  # buffers + publication
        self._merge_lock = threading.Lock()  # one merge at a time
        self._base = engine
        self._active = WriteBuffer()
        self._frozen: WriteBuffer | None = None
        self._merge_pending = False
        self._merge_thread: threading.Thread | None = None
        self._current = EngineVersion(0, engine, {}, frozenset())
        self.version_window = version_window
        # Recently published versions, newest last (answer-at-version
        # window).  Appends happen under ``_mutex``; readers copy under
        # it too, so iteration never races an eviction.
        self._retained: deque[EngineVersion] = deque(maxlen=version_window)
        self._retained.append(self._current)
        self.merges = 0
        self.incremental_merges = 0
        self.merge_failures = 0
        #: Buffer-to-base size ratio below which merges fold into a copy
        #: of the base instead of rebuilding; set to 0.0 to always
        #: rebuild (e.g. to force bulk-packed trees).
        self.incremental_ratio = INCREMENTAL_MERGE_MAX_RATIO
        self._publish_gauges(self._current)

    # -- Read side --------------------------------------------------------------

    @property
    def current(self) -> EngineVersion:
        """The published version; one atomic attribute read, lock-free."""
        return self._current

    @property
    def base(self):
        """The current base engine (changes only at merge publication)."""
        return self._base

    def retained_versions(self) -> list[int]:
        """Version numbers answerable via :meth:`version_at`, oldest first."""
        with self._mutex:
            return [version.version for version in self._retained]

    def version_at(self, version: int) -> EngineVersion:
        """The retained :class:`EngineVersion` numbered ``version``.

        Raises :class:`~repro.errors.VersionRetiredError` when the
        requested version has aged out of the retention window (or was
        never published).  Retained versions are immutable and their
        bases copy-on-write, so the returned version answers queries
        exactly as it did when it was current.
        """
        with self._mutex:
            for retained in reversed(self._retained):
                if retained.version == version:
                    return retained
            oldest = self._retained[0].version if self._retained else None
            newest = self._retained[-1].version if self._retained else None
        raise VersionRetiredError(version, oldest, newest)

    # -- Publication ------------------------------------------------------------

    def _publish_locked(self) -> EngineVersion:
        """Compose the epochs and publish a new version (mutex held)."""
        if self._frozen is not None:
            overlay = self._frozen.composed_with(self._active)
        else:
            overlay = self._active
        version = EngineVersion(
            self._current.version + 1,
            self._base,
            dict(overlay.inserts),
            frozenset(overlay.deleted),
        )
        self._current = version
        self._retained.append(version)
        return version

    def _publish_gauges(self, version: EngineVersion) -> None:
        self.metrics.gauge("engine.version").set(version.version)
        self.metrics.gauge("maintenance.buffer_depth").set(
            version.buffer_depth
        )

    # -- Write side -------------------------------------------------------------

    def add(self, obj: SpatialObject) -> EngineVersion:
        """Buffer one insert; returns the version it published.

        Never blocks readers.  Before the base is built there are no
        snapshots to protect, so staged adds go straight to the engine
        (matching the direct engine surface); afterwards they land in
        the active buffer.
        """
        with self._mutex:
            if not engine_is_built(self._base):
                self._base.add(obj)
                version = self._publish_locked()
            else:
                if self._current.contains(obj.oid):
                    raise QueryError(f"object id {obj.oid} already present")
                self._active.record_insert(obj)
                version = self._publish_locked()
        self._publish_gauges(version)
        self._maybe_schedule_merge()
        return version

    def delete(self, oid: int) -> EngineVersion | None:
        """Buffer one delete; returns the version it published.

        ``None`` (and no effect at all) when ``oid`` is not live — a
        no-op delete publishes nothing, so the result cache and planner
        statistics are left untouched."""
        with self._mutex:
            if not engine_is_built(self._base):
                # Matches the direct engine surface: raises IndexError_.
                self._base.delete(oid)
                return None
            if not self._current.contains(oid):
                return None
            self._active.record_delete(oid)
            version = self._publish_locked()
        self._publish_gauges(version)
        self._maybe_schedule_merge()
        return version

    def rebuild(self, bulk: bool = True) -> None:
        """(Re)build the index, folding the buffer (``service.build()``).

        The first build (base not yet built) runs in place — no reader
        can have a snapshot of an unbuilt index.  Later rebuilds are
        copy-on-write like any merge: the current base keeps serving
        in-flight readers while a fresh engine is built and swapped in.
        """
        with self._merge_lock:
            if not engine_is_built(self._base):
                self._base.build(bulk=bulk)
                with self._mutex:
                    version = self._publish_locked()
                self._publish_gauges(version)
                return
            with self._mutex:
                self._frozen = self._active
                self._active = WriteBuffer()
            self._fold_frozen(bulk=bulk, reason="rebuild")

    def flush(self, reason: str = "flush") -> EngineVersion:
        """Fold everything buffered; returns the resulting clean version.

        Waits for any in-flight background merge, then merges until the
        overlay is empty (a concurrent writer can dirty the new version
        again immediately — callers get *a* clean version, not an
        exclusive one).
        """
        while True:
            with self._merge_lock:
                with self._mutex:
                    if self._active.depth == 0:
                        return self._current
                    self._frozen = self._active
                    self._active = WriteBuffer()
                self._fold_frozen(reason=reason)

    # -- Merge internals --------------------------------------------------------

    def _maybe_schedule_merge(self) -> None:
        if self.merge_threshold is None:
            return
        with self._mutex:
            if self._merge_pending or self._active.depth < self.merge_threshold:
                return
            self._merge_pending = True
        thread = threading.Thread(
            target=self._background_merge, name="repro-merge", daemon=True
        )
        self._merge_thread = thread
        thread.start()

    def _background_merge(self) -> None:
        try:
            with self._merge_lock:
                with self._mutex:
                    if self._active.depth == 0:
                        return
                    self._frozen = self._active
                    self._active = WriteBuffer()
                self._fold_frozen(reason="threshold")
        except Exception:
            # Failure already accounted by _fold_frozen; a background
            # merge has no caller to re-raise to.
            pass
        finally:
            with self._mutex:
                self._merge_pending = False

    def _fold_frozen(
        self, bulk: bool = True, reason: str = "threshold"
    ) -> None:
        """Fold the frozen epoch into a fresh base and publish it.

        Caller holds ``_merge_lock`` and has moved the active buffer
        into ``_frozen``.  The old base is never touched: the new base
        is either a structural *copy* of the old base with the frozen
        overlay applied through live ``insert_object``/``delete`` calls
        (when the buffer is small relative to the base — see
        :data:`INCREMENTAL_MERGE_MAX_RATIO`) or a :meth:`clone_empty`
        rebuilt from the old base's live objects plus the frozen
        overlay.  Either way the replacement is swapped in atomically.
        On failure the frozen epoch is recomposed under the (newer)
        active buffer so no buffered write is ever lost.
        """
        frozen = self._frozen
        assert frozen is not None
        started = time.perf_counter()
        trace = (
            self.tracer.begin("merge", start=started)
            if self.tracer is not None
            else None
        )
        root = trace.root if trace is not None else None
        if root is not None:
            root.category = "maintenance"
        mode = "rebuild"
        try:
            masked = set(frozen.deleted) | set(frozen.inserts)
            rebuilt = None
            base_live = len(self._base)
            if self.incremental_ratio > 0.0 and frozen.depth <= max(
                1, int(base_live * self.incremental_ratio)
            ):
                from repro.persist import copy_built_engine

                rebuilt = copy_built_engine(self._base)
            if rebuilt is not None:
                mode = "incremental"
                for oid in sorted(masked):
                    if rebuilt.contains(oid):
                        rebuilt.delete(oid)
                for oid in sorted(frozen.inserts):
                    rebuilt.add(frozen.inserts[oid])
            else:
                rebuilt = self._base.clone_empty()
                rebuilt.add_all(
                    obj for obj in self._base.objects() if obj.oid not in masked
                )
                rebuilt.add_all(frozen.inserts.values())
                rebuilt.build(bulk=bulk)
            if self.merge_hook is not None:
                self.merge_hook()
        except Exception:
            with self._mutex:
                self._active = frozen.composed_with(self._active)
                self._frozen = None
                version = self._publish_locked()
            self.merge_failures += 1
            self.metrics.counter("maintenance.merge_failures").inc()
            self._publish_gauges(version)
            if root is not None:
                root.annotate(reason=reason, failed=True)
                root.finish()
                self.tracer.commit(
                    trace, (time.perf_counter() - started) * 1000.0
                )
            raise
        with self._mutex:
            self._base = rebuilt
            self._frozen = None
            version = self._publish_locked()
        self.merges += 1
        duration_ms = (time.perf_counter() - started) * 1000.0
        self.metrics.counter("maintenance.merges").inc()
        if mode == "incremental":
            self.incremental_merges += 1
            self.metrics.counter("maintenance.incremental_merges").inc()
        self.metrics.histogram("maintenance.merge_ms").observe(duration_ms)
        self._publish_gauges(version)
        if self.on_base_swap is not None:
            self.on_base_swap(rebuilt)
        if root is not None:
            root.annotate(
                reason=reason,
                mode=mode,
                folded_inserts=len(frozen.inserts),
                folded_deletes=len(frozen.deleted),
                version=version.version,
            )
            root.finish()
            self.tracer.commit(trace, duration_ms)
