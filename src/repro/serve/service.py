"""Concurrent query service over a built engine.

The paper's algorithms are strictly single-query; this module turns a
built engine — a :class:`SpatialKeywordEngine` or a
:class:`repro.shard.ShardedEngine`, anything exposing the unified
``search()`` surface — into something that can take parallel traffic
while staying byte-for-byte faithful to them:

* queries are dispatched across a thread pool and executed by the
  engine's unmodified search algorithms;
* per-query I/O accounting is exact under concurrency because each
  execution collects its own delta in a thread-local collector
  (:func:`repro.storage.iostats.collecting_io`) instead of diffing the
  shared device counters;
* mutations never stall the reader pool: in the default ``"snapshot"``
  maintenance mode every query pins an immutable published
  :class:`~repro.serve.maintenance.EngineVersion` with one lock-free
  attribute read, while ``add``/``delete``/``build`` append to a
  write buffer that a background merge folds into a copy-on-write
  replacement engine (see :mod:`repro.serve.maintenance`); the legacy
  ``"rwlock"`` mode keeps the original readers-writer lock, where a
  writer drains and blocks all readers;
* an LRU result cache (:class:`~repro.serve.resultcache.QueryResultCache`)
  answers repeated queries from memory, is invalidated on every
  *effective* mutation, and stamps every entry with the engine version
  that produced it so a reader pinned to one version can never be
  answered from another; both cache hits and cached entries carry
  *copies* of the result objects, so a caller mutating a returned
  result can never corrupt later answers;
* every execution carries a :class:`~repro.serve.tracing.TraceSpan`
  (queue wait, search time, I/O counts, cache disposition), aggregated
  into a :class:`ServiceStats` summary;
* per-stage latency histograms (queue wait, lock wait, search, merge),
  cache / degradation / retry counters, and a slow-query log are
  recorded into a :class:`repro.obs.MetricsRegistry`, snapshotted by
  :attr:`ServiceStats.metrics` and :meth:`QueryService.export_metrics`;
* attaching a :class:`repro.obs.trace.QueryTracer` turns on hierarchical
  tracing: sampled (and slow) queries get a full span tree — service
  root, per-shard fan-out, engine phases, block-level I/O events — whose
  ``trace_id`` lands on the flat span and in the slow-query log, and
  which exports to Chrome trace-event JSON via
  :meth:`QueryService.export_chrome_trace`.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import warnings
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.errors import ServiceError, ServiceOverloadError
from repro.model import SpatialObject
from repro.obs import COUNT_BUCKETS, MetricsRegistry, SlowQueryLog, export_engine
from repro.obs import trace as qtrace
from repro.obs.export import render_prometheus
from repro.obs.querylog import QueryLogWriter
from repro.obs.trace import QueryTracer
from repro.plan import attach_planner_metrics
from repro.serve.maintenance import EngineVersion, SnapshotMaintainer
from repro.serve.resultcache import QueryResultCache
from repro.serve.scheduler import (
    BatchConfig,
    BatchGroup,
    BatchMember,
    BatchScheduler,
)
from repro.serve.tracing import (
    CACHE_BYPASS,
    CACHE_COALESCED,
    CACHE_HIT,
    CACHE_MISS,
    TraceLog,
    TraceSpan,
)
from repro.storage.faults import retry_transient
from repro.storage.iostats import IOStats
from repro.storage.sharedread import SharedReadSession, activate_session

#: Maintenance modes (see :class:`QueryService`).
SNAPSHOT = "snapshot"
RWLOCK = "rwlock"
_MAINTENANCE_MODES = frozenset({SNAPSHOT, RWLOCK})


def _resolve_result(future: Future, result) -> None:
    """Complete a submission future, tolerating cancellation races."""
    try:
        future.set_result(result)
    except InvalidStateError:
        pass  # cancelled between pickup and completion


def _resolve_exception(future: Future, exc: BaseException) -> None:
    """Fail a submission future, tolerating cancellation races."""
    if future.cancelled():
        return
    try:
        future.set_exception(exc)
    except InvalidStateError:
        pass


class ReadWriteLock:
    """A simple writer-preferring readers-writer lock.

    Any number of readers may hold the lock together; a writer waits for
    them to drain and then holds it exclusively.  Arriving readers queue
    behind a waiting writer so mutations cannot starve under a steady
    query stream.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


@dataclass
class ServiceStats:
    """Aggregate counters for one service's lifetime (a frozen snapshot).

    Attributes:
        queries: completed query executions (including cache hits).
        cache_hits: executions answered from the result cache.
        cache_misses: executions that ran the search algorithms (with the
            cache enabled); with caching disabled both counters stay 0.
        errors: executions that raised.
        degraded: executions answered with partial results because one
            or more shards failed (see
            :attr:`repro.core.query.QueryExecution.degraded`).
        batches: batch groups executed (0 with batching disabled).
        coalesced: executions answered by riding along on an identical
            in-flight query of the same batch group.
        shed: submissions refused with
            :class:`~repro.errors.ServiceOverloadError` because the
            admission queue was at ``max_pending``.
        io: element-wise sum of every execution's per-query I/O delta
            (``io.shared_reads`` counts batch-session hits, which cost
            no device I/O).
        queue_wait_ms_total: summed queue wait across executions.
        search_ms_total: summed search time across executions.
        retries: transient-error retries spent across executions.
        metrics: JSON-ready :meth:`repro.obs.MetricsRegistry.snapshot`
            taken with this stats snapshot — per-stage latency
            histograms, cache/degradation/retry counters, per-shard
            fan-out counters, and device/buffer-pool gauges.
    """

    queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    errors: int = 0
    degraded: int = 0
    batches: int = 0
    coalesced: int = 0
    shed: int = 0
    io: IOStats = field(default_factory=IOStats)
    queue_wait_ms_total: float = 0.0
    search_ms_total: float = 0.0
    retries: int = 0
    metrics: dict = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Hits as a fraction of cache-eligible executions."""
        eligible = self.cache_hits + self.cache_misses
        return self.cache_hits / eligible if eligible else 0.0

    @property
    def avg_queue_wait_ms(self) -> float:
        return self.queue_wait_ms_total / self.queries if self.queries else 0.0

    @property
    def avg_search_ms(self) -> float:
        return self.search_ms_total / self.queries if self.queries else 0.0

    def as_dict(self) -> dict:
        """JSON-serializable summary (the ``--serve-trace`` header)."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "errors": self.errors,
            "degraded": self.degraded,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "shed": self.shed,
            "retries": self.retries,
            "avg_queue_wait_ms": self.avg_queue_wait_ms,
            "avg_search_ms": self.avg_search_ms,
            "random_reads": self.io.random_reads,
            "sequential_reads": self.io.sequential_reads,
            "shared_reads": self.io.shared_reads,
            "objects_loaded": self.io.objects_loaded,
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        io = self.io
        return (
            f"{self.queries} queries ({self.cache_hits} cache hits, "
            f"{self.errors} errors, {self.degraded} degraded), "
            f"avg wait {self.avg_queue_wait_ms:.2f} ms, "
            f"avg search {self.avg_search_ms:.2f} ms, "
            f"{io.random_reads} random + {io.sequential_reads} sequential reads, "
            f"{io.objects_loaded} objects loaded"
        )


class QueryService:
    """Thread-pooled, cached, traced front-end for one built engine.

    Args:
        engine: a built :class:`SpatialKeywordEngine` or
            :class:`repro.shard.ShardedEngine` (building it through the
            service afterwards is also supported via :meth:`build`).
        workers: worker threads answering queries.
        cache: enable the LRU result cache.
        cache_capacity: maximum cached executions.
        trace_capacity: maximum retained trace spans (None = unbounded).
        retries: bounded retries (exponential backoff) per execution for
            :class:`~repro.errors.TransientDeviceError` raised by the
            engine's devices.  A :class:`~repro.shard.ShardedEngine` also
            retries internally per shard; this is the outer guard for
            single engines and fail-fast sharded ones.
        retry_backoff_s: initial retry backoff; doubles per retry.
        metrics: the :class:`repro.obs.MetricsRegistry` to record into; a
            private one is created when omitted.  A sharded engine with
            no registry of its own is attached to the service's, so its
            fan-out counters land in the same snapshot.
        slow_query_ms: total-latency threshold above which a query's
            span is admitted to the slow-query log.
        slow_log_capacity: maximum spans retained by the slow-query log
            (the slowest ones win when it overflows).
        tracer: a :class:`repro.obs.trace.QueryTracer` enabling
            hierarchical tracing (None = off).  A tracer attached
            without its own slow threshold inherits ``slow_query_ms``,
            so every slow-log entry links to a retained span tree by
            ``trace_id``.
        batching: enable the batch front-end — a
            :class:`~repro.serve.scheduler.BatchConfig` (or ``True`` for
            the defaults; ``None``/``False`` disables).  When enabled,
            submissions are grouped by a :class:`~repro.serve.scheduler.
            BatchScheduler` (arrival window / ``submit_many``), duplicate
            in-flight queries coalesce onto one execution, every group
            runs under one shared-read session (one block read serves
            the whole group), and — when ``max_pending`` is set — excess
            submissions shed with
            :class:`~repro.errors.ServiceOverloadError`.
        maintenance: how mutations coexist with the reader pool.
            ``"snapshot"`` (the default) publishes immutable engine
            versions that queries pin with one lock-free read; writes
            buffer into an overlay and a background merge folds them
            into a copy-on-write replacement engine
            (:mod:`repro.serve.maintenance`) — readers never block on
            writers.  ``"rwlock"`` keeps the original readers-writer
            lock: mutations drain and exclude every reader (retained as
            the measured baseline and for callers that want strict
            read-your-writes without versioning).
        merge_threshold: buffered writes that trigger a background merge
            in snapshot mode (``None`` disables automatic merging;
            :meth:`build` and ranked queries still fold the buffer).
        query_log: workload capture — a
            :class:`repro.obs.querylog.QueryLogWriter` or a path string.
            Every answered query (both submission paths, batched or
            not, including failures) appends one JSON-lines record with
            its shape, plan, fan-out, I/O, latency stages, and result
            digest; see :mod:`repro.obs.querylog`.  A path constructs a
            writer owned (and closed) by the service, recording into the
            service's metrics registry; a writer instance is shared and
            left open on :meth:`close`.
        query_log_sample: capture every Nth query (applies only when
            ``query_log`` is a path; a passed writer keeps its own
            sampling).  Unsampled queries pay one counter increment.

    Submission surface: :meth:`submit` (one query → ``Future``),
    :meth:`submit_many` (a batch → list of ``Future``\\ s, the batch
    entry point), and :meth:`search` (synchronous).  ``submit_query`` /
    ``query(point, keywords, k)`` / ``execute`` remain as deprecation
    shims.

    The service is a context manager; :meth:`close` drains the pool::

        with QueryService(engine, workers=8) as service:
            executions = service.run_batch(queries)
    """

    def __init__(
        self,
        engine: SpatialKeywordEngine,
        workers: int = 4,
        cache: bool = True,
        cache_capacity: int = 256,
        trace_capacity: int | None = None,
        retries: int = 2,
        retry_backoff_s: float = 0.005,
        metrics: MetricsRegistry | None = None,
        slow_query_ms: float = 100.0,
        slow_log_capacity: int = 32,
        tracer: QueryTracer | None = None,
        batching: BatchConfig | bool | None = None,
        maintenance: str = SNAPSHOT,
        merge_threshold: int | None = 64,
        query_log: QueryLogWriter | str | None = None,
        query_log_sample: int = 1,
    ) -> None:
        if workers < 1:
            raise ServiceError("a query service needs at least one worker")
        if maintenance not in _MAINTENANCE_MODES:
            raise ServiceError(
                f"maintenance must be one of {sorted(_MAINTENANCE_MODES)}, "
                f"got {maintenance!r}"
            )
        self.tracer = tracer
        if tracer is not None and tracer.slow_query_ms is None:
            tracer.slow_query_ms = slow_query_ms
        self._engine = engine
        self.workers = workers
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._owns_query_log = isinstance(query_log, str)
        if isinstance(query_log, str):
            query_log = QueryLogWriter(
                query_log,
                sample_every=query_log_sample,
                metrics=self.metrics,
            )
        self.query_log: QueryLogWriter | None = query_log
        self.maintenance = maintenance
        self._maintainer: SnapshotMaintainer | None = None
        if maintenance == SNAPSHOT:
            self._maintainer = SnapshotMaintainer(
                engine,
                merge_threshold=merge_threshold,
                metrics=self.metrics,
                tracer=tracer,
            )
            # Copy-on-write merges swap fresh engines in; each one gets
            # wired into the service's observability like the first.
            self._maintainer.on_base_swap = self._adopt_engine
        self._adopt_engine(engine)
        self.slow_log = SlowQueryLog(
            threshold_ms=slow_query_ms, capacity=slow_log_capacity
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._rw = ReadWriteLock()
        self.cache = QueryResultCache(cache_capacity) if cache else None
        self.trace_log = TraceLog(trace_capacity)
        self._qid = itertools.count()
        self._closed = False
        if batching is True:
            batching = BatchConfig()
        elif batching is False:
            batching = None
        self.batching: BatchConfig | None = batching
        self._scheduler = (
            BatchScheduler(batching, self._dispatch_group)
            if batching is not None
            else None
        )
        # Admission depth: submissions admitted but not yet completed.
        self._depth_lock = threading.Lock()
        self._pending = 0
        # Aggregates, guarded by one lock.
        self._stats_lock = threading.Lock()
        self._queries = 0
        self._hits = 0
        self._misses = 0
        self._errors = 0
        self._degraded = 0
        self._batches = 0
        self._coalesced = 0
        self._shed = 0
        self._retries_taken = 0
        self._io = IOStats()
        self._queue_ms = 0.0
        self._search_ms = 0.0

    @property
    def engine(self):
        """The current base engine (snapshot merges swap in fresh ones)."""
        if self._maintainer is not None:
            return self._maintainer.base
        return self._engine

    @property
    def engine_version(self) -> int | None:
        """The currently published snapshot version (None in rwlock mode)."""
        if self._maintainer is None:
            return None
        return self._maintainer.current.version

    @property
    def buffer_depth(self) -> int:
        """Buffered writes not yet merged (always 0 in rwlock mode)."""
        if self._maintainer is None:
            return 0
        return self._maintainer.current.buffer_depth

    @property
    def maintainer(self) -> SnapshotMaintainer | None:
        """The snapshot maintainer (None in rwlock mode)."""
        return self._maintainer

    def _adopt_engine(self, engine) -> None:
        """Wire an engine (initial or freshly merged) into observability."""
        if getattr(engine, "metrics", False) is None:
            # A sharded engine built without a registry inherits ours.
            engine.metrics = self.metrics
        # Adaptive ("auto") indexes get their planner counters
        # (planner.chosen.* / planner.won.*) recorded here too.
        attach_planner_metrics(engine, self.metrics)

    @contextmanager
    def _pinned_version(self) -> Iterator[EngineVersion | None]:
        """Pin the engine state one execution (or batch group) reads.

        Snapshot mode yields the current published version — a single
        lock-free attribute read, so a concurrent writer or merge can
        never block this reader.  Lock mode runs the block under the
        readers-writer lock via :meth:`ReadWriteLock.read_locked` (the
        context manager, never a manual acquire/release pair, so a
        failed acquire cannot underflow the reader count) and yields
        None.
        """
        if self._maintainer is not None:
            yield self._maintainer.current
        else:
            with self._rw.read_locked():
                yield None

    # -- Query dispatch ---------------------------------------------------------

    def submit(
        self,
        query: SpatialKeywordQuery | Sequence[float],
        keywords: Sequence[str] | None = None,
        k: int = 10,
    ) -> Future:
        """Asynchronously run one query; returns a ``Future``.

        The one async entry point: pass a
        :class:`~repro.core.query.SpatialKeywordQuery`.  With batching
        enabled the submission joins the open arrival-window group (and
        may coalesce onto an identical in-flight query); otherwise it
        dispatches straight to the worker pool.

        The pre-redesign shape ``submit(point, keywords, k)`` still
        works but emits a :class:`DeprecationWarning`.
        """
        if keywords is not None or not isinstance(query, SpatialKeywordQuery):
            warnings.warn(
                "QueryService.submit(point, keywords, k) is deprecated; "
                "pass a SpatialKeywordQuery — "
                "submit(SpatialKeywordQuery.of(point, keywords, k))",
                DeprecationWarning,
                stacklevel=2,
            )
            query = SpatialKeywordQuery.of(
                query, keywords if keywords is not None else (), k
            )
        return self._submit_one(query)

    def submit_many(
        self, queries: Iterable[SpatialKeywordQuery]
    ) -> list[Future]:
        """Asynchronously run a batch; one ``Future`` per query, in order.

        The batch entry point: with batching enabled the queries form
        their own group(s) (flushed immediately — no arrival window, so
        execution is deterministic), duplicates coalesce within each
        group, and each group runs under one shared-read session.  With
        batching disabled this is simply N :meth:`submit` calls.
        """
        queries = [self._require_query(query) for query in queries]
        if self._closed:
            raise ServiceError("cannot submit to a closed QueryService")
        if self._scheduler is None:
            return [self._submit_direct(query) for query in queries]
        self._admit(len(queries))
        members = [self._make_member(query) for query in queries]
        try:
            self._scheduler.submit_group(members)
        except ServiceError:
            self._release(len(queries))
            raise
        return [member.future for member in members]

    def search(
        self,
        query: SpatialKeywordQuery,
        at_version: int | None = None,
    ) -> QueryExecution:
        """Synchronously run one query (``submit(query).result()``).

        ``at_version`` answers the query against a specific *retained*
        published snapshot version instead of the current one — a
        consistent read-at-timestamp over the maintainer's bounded
        retention window (``version_window`` versions).  The execution's
        :attr:`~repro.core.query.QueryExecution.engine_version` echoes
        the version that answered.  Raises
        :class:`~repro.errors.VersionRetiredError` when the version has
        aged out of the window (or never existed), and
        :class:`~repro.errors.ServiceError` in rwlock mode, which
        publishes no versions.  Versioned reads bypass the batch
        scheduler (they must not coalesce with current-version traffic)
        but are captured, traced, and counted like any other query.
        """
        query = self._require_query(query)
        if at_version is None:
            return self._submit_one(query).result()
        if self._maintainer is None:
            raise ServiceError(
                "answer-at-version requires snapshot maintenance; "
                "the rwlock mode publishes no versions"
            )
        pinned = self._maintainer.version_at(at_version)
        if self._closed:
            raise ServiceError("cannot submit to a closed QueryService")
        try:
            future = self._pool.submit(
                self._execute, query, next(self._qid), time.perf_counter(),
                pinned,
            )
        except RuntimeError as exc:
            raise ServiceError("cannot submit to a closed QueryService") from exc
        return future.result()

    def run_batch(
        self, queries: Iterable[SpatialKeywordQuery]
    ) -> list[QueryExecution]:
        """Dispatch a whole batch and wait; results keep the batch order."""
        return [future.result() for future in self.submit_many(queries)]

    # -- Deprecated entry points (pre-redesign surface) -------------------------

    def submit_query(self, query: SpatialKeywordQuery) -> Future:
        """Deprecated alias for :meth:`submit`."""
        warnings.warn(
            "QueryService.submit_query() is deprecated; use submit(query)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._submit_one(self._require_query(query))

    def query(
        self, point: Sequence[float], keywords: Sequence[str], k: int = 10
    ) -> QueryExecution:
        """Deprecated; use :meth:`search` with a constructed query."""
        warnings.warn(
            "QueryService.query(point, keywords, k) is deprecated; use "
            "search(SpatialKeywordQuery.of(point, keywords, k))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._submit_one(
            SpatialKeywordQuery.of(point, keywords, k)
        ).result()

    def execute(self, query: SpatialKeywordQuery) -> QueryExecution:
        """Deprecated alias for :meth:`search`."""
        warnings.warn(
            "QueryService.execute() is deprecated; use search(query)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._submit_one(self._require_query(query)).result()

    # -- Submission internals ---------------------------------------------------

    @staticmethod
    def _require_query(query) -> SpatialKeywordQuery:
        if not isinstance(query, SpatialKeywordQuery):
            raise ServiceError(
                f"expected a SpatialKeywordQuery, got {type(query).__name__}"
            )
        return query

    def _submit_one(self, query: SpatialKeywordQuery) -> Future:
        if self._closed:
            raise ServiceError("cannot submit to a closed QueryService")
        if self._scheduler is None:
            return self._submit_direct(query)
        self._admit(1)
        member = self._make_member(query)
        try:
            self._scheduler.submit(member)
        except ServiceError:
            self._release(1)
            raise
        return member.future

    def _submit_direct(self, query: SpatialKeywordQuery) -> Future:
        """The unbatched path: one query straight onto the worker pool."""
        try:
            return self._pool.submit(
                self._execute, query, next(self._qid), time.perf_counter()
            )
        except RuntimeError as exc:
            # close() ran between the _closed check and the submit.
            raise ServiceError("cannot submit to a closed QueryService") from exc

    def _make_member(self, query: SpatialKeywordQuery) -> BatchMember:
        future: Future = Future()
        future.add_done_callback(self._on_future_done)
        return BatchMember(query, future, next(self._qid), time.perf_counter())

    def _admit(self, count: int) -> None:
        """Admission control: claim ``count`` queue slots or shed."""
        config = self.batching
        with self._depth_lock:
            if (
                config.max_pending is not None
                and self._pending + count > config.max_pending
            ):
                pending = self._pending
                with self._stats_lock:
                    self._shed += count
                self.metrics.counter("service.shed").inc(count)
                raise ServiceOverloadError(pending, config.max_pending)
            self._pending += count
            depth = self._pending
        self.metrics.gauge("service.queue_depth").set(depth)

    def _release(self, count: int) -> None:
        with self._depth_lock:
            self._pending -= count
            depth = self._pending
        self.metrics.gauge("service.queue_depth").set(depth)

    def _on_future_done(self, future: Future) -> None:
        self._release(1)

    @property
    def queue_depth(self) -> int:
        """Submissions admitted but not yet completed (the shed gauge)."""
        with self._depth_lock:
            return self._pending

    def _dispatch_group(self, group: BatchGroup) -> None:
        """Hand a flushed group to the worker pool (scheduler callback)."""
        try:
            self._pool.submit(self._execute_group, group)
        except RuntimeError:
            exc = ServiceError("cannot execute batch: QueryService is closed")
            for member in group.members:
                for each in (member, *member.followers):
                    _resolve_exception(each.future, exc)

    # -- The worker body --------------------------------------------------------

    def _execute(
        self,
        query: SpatialKeywordQuery,
        query_id: int,
        submitted_at: float,
        pinned: EngineVersion | None = None,
    ) -> QueryExecution:
        span = TraceSpan(
            query_id=query_id,
            keywords=query.keywords,
            k=query.k,
            submitted_at=submitted_at,
            started_at=time.perf_counter(),
            worker=threading.current_thread().name,
        )
        # The hierarchical trace's root span covers started_at →
        # finished_at (the worker's active window).  Queue wait stays an
        # annotation: a span stretching back to submitted_at would
        # overlap the previous query's tree on this worker's lane.
        trace = (
            self.tracer.begin("query", start=span.started_at)
            if self.tracer is not None
            else None
        )
        # An at_version read carries its own already-resolved pinned
        # version (a retained snapshot); everything else pins the
        # current state via _pinned_version().
        pin_context = (
            nullcontext(pinned)
            if pinned is not None
            else self._pinned_version()
        )
        try:
            with qtrace.activate(trace.root if trace is not None else None):
                with pin_context as version:
                    span.lock_acquired_at = time.perf_counter()
                    if version is not None:
                        span.engine_version = version.version
                    execution = self._answer(query, span, version)
        except Exception as exc:
            span.finished_at = time.perf_counter()
            span.error = f"{type(exc).__name__}: {exc}"
            self._finish_trace(span, trace)
            self.trace_log.append(span)
            with self._stats_lock:
                self._errors += 1
                self._retries_taken += span.retries
            self.metrics.counter("service.errors").inc()
            self.slow_log.offer(span)
            if self.query_log is not None:
                self.query_log.offer(span, None, query=query)
            raise
        self._annotate_span(span, execution)
        span.finished_at = time.perf_counter()
        self._finish_trace(span, trace)
        self.trace_log.append(span)
        self._note_completed(span, execution)
        self.slow_log.offer(span)
        if self.query_log is not None:
            self.query_log.offer(span, execution)
        return execution

    @staticmethod
    def _annotate_span(span: TraceSpan, execution: QueryExecution) -> None:
        """Copy one completed execution's outcome onto its flat span."""
        span.algorithm = execution.algorithm
        span.strategy = (execution.plan or {}).get("strategy")
        span.random_reads = execution.io.random_reads
        span.sequential_reads = execution.io.sequential_reads
        span.shared_reads = execution.io.shared_reads
        span.objects_loaded = execution.io.objects_loaded
        if execution.shards is not None:
            span.pruned_by_keywords = sum(
                1 for shard in execution.shards
                if shard.get("pruned_by_keywords")
            )
        span.num_results = len(execution.results)
        execution.trace = span

    def _note_completed(
        self, span: TraceSpan, execution: QueryExecution
    ) -> None:
        """Fold one completed execution into the aggregates and metrics."""
        with self._stats_lock:
            self._queries += 1
            if span.cache == CACHE_HIT:
                self._hits += 1
            elif span.cache == CACHE_MISS:
                self._misses += 1
            elif span.cache == CACHE_COALESCED:
                self._coalesced += 1
            if execution.degraded:
                self._degraded += 1
            self._retries_taken += span.retries
            self._io = self._io.merged_with(execution.io)
            self._queue_ms += span.queue_wait_ms
            self._search_ms += span.search_ms
        self._record_metrics(span, execution)

    def _finish_trace(self, span: TraceSpan, trace) -> None:
        """Close a query's span tree and decide whether it is retained.

        Runs *before* the flat span reaches the trace log and the
        slow-query log, so when the tracer keeps the trace both carry
        its ``trace_id``.
        """
        if trace is None:
            return
        root = trace.root
        if root is not None:
            root.finish(span.finished_at)
        span.emit_phases(trace)
        if self.tracer.commit(trace, span.total_ms):
            span.trace_id = trace.trace_id

    def _record_metrics(
        self, span: TraceSpan, execution: QueryExecution
    ) -> None:
        """Emit one completed execution into the metrics registry."""
        m = self.metrics
        m.counter("service.queries").inc()
        m.counter(f"service.cache.{span.cache}").inc()
        if execution.degraded:
            m.counter("service.degraded").inc()
        if span.retries:
            m.counter("service.retries").inc(span.retries)
        m.histogram("service.queue_wait_ms").observe(span.queue_wait_ms)
        m.histogram("service.lock_wait_ms").observe(span.lock_wait_ms)
        m.histogram("service.search_ms").observe(span.engine_ms)
        m.histogram("service.merge_ms").observe(span.merge_ms)
        m.histogram("service.total_ms").observe(span.total_ms)
        m.histogram(
            "service.reads_per_query", buckets=COUNT_BUCKETS
        ).observe(execution.io.random_reads + execution.io.sequential_reads)

    def _answer(
        self,
        query: SpatialKeywordQuery,
        span: TraceSpan,
        version: EngineVersion | None = None,
    ) -> QueryExecution:
        """Resolve one query against a pinned engine state: cache, search.

        ``version`` is the snapshot the caller pinned (None in rwlock
        mode, where the read lock is already held).  Cache lookups and
        stores carry the version stamp, so an answer computed against
        one version can never serve a reader pinned to another.
        """
        stamp = version.version if version is not None else None
        if self.cache is not None:
            cached = self.cache.get(query, version=stamp)
            if cached is not None:
                span.cache = CACHE_HIT
                span.search_done_at = time.perf_counter()
                # A fresh execution carrying *copies* of the cached
                # results — a caller mutating its answer in place must
                # never reach the cached entry.  A hit costs no I/O and
                # inspects no objects.
                return QueryExecution(
                    query=query,
                    results=[result.copy() for result in cached.results],
                    io=IOStats(),
                    objects_inspected=0,
                    false_positive_candidates=0,
                    nodes_visited=0,
                    algorithm=cached.algorithm,
                    plan=dict(cached.plan) if cached.plan is not None else None,
                    engine_version=stamp,
                )
            span.cache = CACHE_MISS
        else:
            span.cache = CACHE_BYPASS

        def count_retry(attempt: int, exc: Exception) -> None:
            span.retries += 1

        target = version if version is not None else self.engine
        execution = retry_transient(
            lambda: target.search(query),
            self.retries, self.retry_backoff_s,
            on_retry=count_retry,
        )
        execution.engine_version = stamp
        span.search_done_at = time.perf_counter()
        if self.cache is not None and not execution.degraded:
            # A degraded (partial) answer must not outlive the fault that
            # caused it: once the shard recovers, the same query should
            # run fully, not replay the partial result from cache.
            # The cached entry gets its own result copies so the caller
            # of *this* (miss) execution cannot mutate them afterwards.
            self.cache.put(query, execution.with_result_copies(), version=stamp)
        return execution

    # -- Batched group execution ------------------------------------------------

    def _execute_group(self, group: BatchGroup) -> None:
        """Worker body for one flushed batch group.

        One pinned engine state (a published snapshot version, or one
        read-lock acquisition in rwlock mode) and one shared-read
        session cover the whole group; members execute sequentially
        (answers are byte-identical to serial execution on the pinned
        state), each with its own flat span and per-query I/O delta.
        The hierarchical trace gets a "batch" root with one "query"
        child per executed member.
        """
        group_started = time.perf_counter()
        trace = (
            self.tracer.begin("batch", start=group_started)
            if self.tracer is not None
            else None
        )
        batch_root = trace.root if trace is not None else None
        if batch_root is not None:
            batch_root.category = "batch"
        session = SharedReadSession()
        produced: list[
            tuple[TraceSpan, QueryExecution | None, SpatialKeywordQuery]
        ] = []
        with self._pinned_version() as version:
            lock_acquired = time.perf_counter()
            if version is not None:
                group.engine_version = version.version
            with qtrace.activate(batch_root), activate_session(session):
                first = True
                for member in group.members:
                    started = group_started if first else time.perf_counter()
                    locked = lock_acquired if first else started
                    first = False
                    produced.extend(
                        self._run_member(
                            member, group.batch_id, trace, batch_root,
                            started, locked, version,
                        )
                    )
        group_end = time.perf_counter()
        total = len(group)
        if trace is not None:
            if batch_root is not None:
                trace.new_span(
                    "lock-wait", category="service", parent=batch_root,
                    start=group_started, end=lock_acquired,
                    tid=batch_root.tid,
                )
                batch_root.annotate(
                    batch_id=group.batch_id,
                    batch_size=total,
                    coalesced=total - len(group.members),
                    shared_reads=session.hits,
                )
                if group.engine_version is not None:
                    batch_root.annotate(engine_version=group.engine_version)
                batch_root.finish(group_end)
            if self.tracer.commit(trace, (group_end - group_started) * 1000.0):
                for span, _, _ in produced:
                    span.trace_id = trace.trace_id
        # Query-log capture runs after the batch's trace_id assignment
        # so records link to the retained trace like unbatched ones.
        for span, execution, query in produced:
            self.trace_log.append(span)
            self.slow_log.offer(span)
            if self.query_log is not None:
                self.query_log.offer(span, execution, query=query)
        with self._stats_lock:
            self._batches += 1
        self.metrics.counter("service.batches").inc()
        self.metrics.histogram(
            "service.batch.size", buckets=COUNT_BUCKETS
        ).observe(total)

    def _run_member(
        self,
        member: BatchMember,
        batch_id: int,
        trace,
        batch_root,
        started: float,
        lock_acquired: float,
        version: EngineVersion | None = None,
    ) -> list[tuple[TraceSpan, QueryExecution | None, SpatialKeywordQuery]]:
        """Execute one member (plus its coalesced followers) of a group.

        Runs against the group's pinned engine state (snapshot version
        or held read lock) and shared-read session.  Returns
        ``(span, execution, query)`` triples (leader first; a failed
        member's execution is None), already folded into the aggregates;
        the caller appends them to the trace, slow-query, and query
        logs once the batch's ``trace_id`` is known.  A member failure
        resolves its own futures and never aborts the rest of the group.
        """
        query = member.query
        span = TraceSpan(
            query_id=member.query_id,
            keywords=query.keywords,
            k=query.k,
            submitted_at=member.submitted_at,
            started_at=started,
            worker=threading.current_thread().name,
            batch_id=batch_id,
        )
        span.lock_acquired_at = lock_acquired
        if version is not None:
            span.engine_version = version.version
        alive = member.future.set_running_or_notify_cancel()
        followers = [
            follower
            for follower in member.followers
            if follower.future.set_running_or_notify_cancel()
        ]
        if not alive and not followers:
            return []  # everyone cancelled before pickup; skip the work
        qspan = (
            trace.new_span("query", category="query", parent=batch_root,
                           start=started)
            if trace is not None
            else None
        )
        try:
            with qtrace.activate(qspan):
                execution = self._answer(query, span, version)
        except Exception as exc:
            span.finished_at = time.perf_counter()
            span.error = f"{type(exc).__name__}: {exc}"
            if qspan is not None:
                qspan.finish(span.finished_at)
            if trace is not None:
                span.emit_phases(trace, parent=qspan)
            failures = (1 if alive else 0) + len(followers)
            with self._stats_lock:
                self._errors += failures
                self._retries_taken += span.retries
            self.metrics.counter("service.errors").inc(failures)
            if alive:
                _resolve_exception(member.future, exc)
            failed = [(span, None, query)]
            for follower in followers:
                fspan = self._follower_span(
                    follower, span, batch_id,
                    error=span.error,
                )
                failed.append((fspan, None, follower.query))
                _resolve_exception(follower.future, exc)
            return failed
        finished = time.perf_counter()
        self._annotate_span(span, execution)
        span.finished_at = finished
        if qspan is not None:
            qspan.finish(finished)
        if trace is not None:
            span.emit_phases(trace, parent=qspan)
        self._note_completed(span, execution)
        if alive:
            _resolve_result(member.future, execution)
        produced = [(span, execution, query)]
        for follower in followers:
            follower_execution = self._follower_execution(
                follower.query, execution
            )
            fspan = self._follower_span(follower, span, batch_id)
            fspan.algorithm = execution.algorithm
            fspan.strategy = span.strategy
            fspan.num_results = len(follower_execution.results)
            follower_execution.trace = fspan
            self._note_completed(fspan, follower_execution)
            _resolve_result(follower.future, follower_execution)
            produced.append((fspan, follower_execution, follower.query))
        return produced

    @staticmethod
    def _follower_span(
        follower: BatchMember, leader_span: TraceSpan, batch_id: int,
        error: str | None = None,
    ) -> TraceSpan:
        """A flat span for a coalesced rider (zero-width execution).

        The follower never held the lock or touched a device; its span
        records queue wait (submission → leader completion) and the
        ``"coalesced"`` disposition.
        """
        finished = leader_span.finished_at
        span = TraceSpan(
            query_id=follower.query_id,
            keywords=follower.query.keywords,
            k=follower.query.k,
            cache=CACHE_COALESCED,
            submitted_at=follower.submitted_at,
            started_at=leader_span.started_at,
            worker=leader_span.worker,
            batch_id=batch_id,
            error=error,
            engine_version=leader_span.engine_version,
        )
        span.lock_acquired_at = finished
        span.search_done_at = finished
        span.finished_at = finished
        return span

    @staticmethod
    def _follower_execution(
        query: SpatialKeywordQuery, leader: QueryExecution
    ) -> QueryExecution:
        """An independent copy of the leader's answer for a coalesced rider.

        Built through :meth:`QueryExecution.with_result_copies` so no two
        callers ever share mutable result objects; the follower's own
        I/O delta is zero (it executed nothing), keeping per-query
        attribution exact — the per-query deltas of a batch still sum to
        the device totals.
        """
        copy = leader.with_result_copies()
        return replace(
            copy,
            query=query,
            io=IOStats(),
            objects_inspected=0,
            false_positive_candidates=0,
            nodes_visited=0,
            trace=None,
            shards=None,
            plan=dict(leader.plan) if leader.plan is not None else None,
            failed_shards=(
                list(leader.failed_shards) if leader.failed_shards else None
            ),
        )

    # -- Mutations (buffered in snapshot mode; exclusive in rwlock mode) --------

    def add_object(self, oid: int, point: Sequence[float], text: str) -> None:
        """Insert one object; invalidates the result cache."""
        self.add(SpatialObject(oid, tuple(float(c) for c in point), text))

    def add(self, obj: SpatialObject) -> None:
        """Insert one :class:`SpatialObject`; invalidates the result cache.

        Snapshot mode buffers the insert and publishes a new version
        without ever blocking a reader; rwlock mode takes the write lock
        and mutates the engine in place.
        """
        if self._maintainer is not None:
            self._maintainer.add(obj)
            self._invalidate()
            return
        with self._rw.write_locked():
            self.engine.add(obj)
            self._invalidate()

    def delete(self, oid: int) -> bool:
        """Delete one object; invalidates the result cache *if effective*.

        A delete of an oid that is not live is a no-op and must leave
        the service untouched: no cold-started result cache, no planner
        statistics bump, no plan-cache flush.
        """
        if self._maintainer is not None:
            removed = self._maintainer.delete(oid) is not None
        else:
            with self._rw.write_locked():
                removed = self.engine.delete(oid)
        if removed:
            self._invalidate()
        return removed

    def build(self, bulk: bool = True) -> None:
        """(Re)build the engine's index; invalidates the result cache.

        Snapshot mode folds the write buffer and rebuilds copy-on-write
        (in-flight readers keep their pinned version); rwlock mode
        rebuilds in place under the write lock.
        """
        if self._maintainer is not None:
            self._maintainer.rebuild(bulk=bulk)
            self._invalidate()
            return
        with self._rw.write_locked():
            self.engine.build(bulk=bulk)
            self._invalidate()

    def flush(self) -> int:
        """Fold every buffered write into the base engine (snapshot mode).

        Returns the resulting published version (the current version
        in rwlock mode, where there is nothing to fold: 0).
        """
        if self._maintainer is None:
            return 0
        return self._maintainer.flush().version

    def save(self, directory: str) -> str:
        """Persist a consistent engine snapshot; returns the manifest path.

        Safe against concurrent writers and merges: snapshot mode first
        folds the write buffer (waiting out any in-flight merge) and
        saves the resulting clean version's base — a save issued
        mid-merge captures a consistent published version, never a torn
        half-mutation.  Rwlock mode saves under the read lock, excluding
        writers for the duration.
        """
        from repro.persist import save_engine

        if self._maintainer is not None:
            version = self._maintainer.flush(reason="save")
            return save_engine(version.base, directory)
        with self._rw.read_locked():
            return save_engine(self.engine, directory)

    def _invalidate(self) -> None:
        if self.cache is not None:
            self.cache.invalidate()

    # -- Introspection ----------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent snapshot of the service-lifetime aggregates.

        Refreshes the storage/buffer-pool gauges from the engine's
        devices first, so :attr:`ServiceStats.metrics` carries a
        current metrics snapshot alongside the counters.
        """
        export_engine(self.metrics, self.engine)
        with self._stats_lock:
            return ServiceStats(
                queries=self._queries,
                cache_hits=self._hits,
                cache_misses=self._misses,
                errors=self._errors,
                degraded=self._degraded,
                batches=self._batches,
                coalesced=self._coalesced,
                shed=self._shed,
                io=self._io.snapshot(),
                queue_wait_ms_total=self._queue_ms,
                search_ms_total=self._search_ms,
                retries=self._retries_taken,
                metrics=self.metrics.snapshot(),
            )

    def slow_queries(self) -> list[TraceSpan]:
        """The retained slow-query spans, slowest first."""
        return self.slow_log.spans()

    def export_metrics(
        self, path: str | None = None, fmt: str = "json"
    ) -> str:
        """Render the service's metrics; optionally write them to ``path``.

        ``fmt="json"`` (the default, the CLI's ``serve --serve-metrics``
        output) renders the service summary, metrics snapshot, and
        slow-query log as one JSON document.  ``fmt="prometheus"``
        renders the metrics snapshot in the Prometheus text exposition
        format (:func:`repro.obs.export.render_prometheus`) for
        scraping.  Returns the rendered payload either way; ``path``
        being None skips the write (pre-redesign callers that passed a
        path positionally keep working unchanged).
        """
        stats = self.stats()
        if fmt == "prometheus":
            payload = render_prometheus(stats.metrics)
        elif fmt == "json":
            payload = json.dumps(
                {
                    "service": stats.as_dict(),
                    "metrics": stats.metrics,
                    "slow_queries": self.slow_log.as_dicts(),
                },
                indent=2,
            )
        else:
            raise ServiceError(
                f"unknown metrics format {fmt!r}; use 'json' or 'prometheus'"
            )
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(payload)
        return payload

    def trace_spans(self) -> list[TraceSpan]:
        """Snapshot of the retained per-query trace spans."""
        return self.trace_log.spans()

    def export_traces(
        self, path: str, executions: Iterable[QueryExecution] | None = None
    ) -> None:
        """Dump the service summary plus every retained span to JSON.

        Args:
            path: output file.
            executions: optionally, completed executions to embed as
                JSON payloads (:meth:`QueryExecution.to_dict`) under an
                ``"executions"`` key — results, per-query I/O, and the
                per-shard breakdown for sharded engines.
        """
        extra: dict = {"service": self.stats().as_dict()}
        if executions is not None:
            extra["executions"] = [
                execution.to_dict() for execution in executions
            ]
        self.trace_log.dump_json(path, extra=extra)

    def traces(self) -> list:
        """The retained hierarchical traces (empty without a tracer)."""
        return self.tracer.traces() if self.tracer is not None else []

    def export_chrome_trace(self, path: str) -> None:
        """Write the retained span trees as Chrome trace-event JSON.

        Load the file in Perfetto (https://ui.perfetto.dev) or
        ``chrome://tracing``; requires a :class:`QueryTracer` attached
        at construction.
        """
        if self.tracer is None:
            raise ServiceError(
                "hierarchical tracing is not enabled; construct the "
                "service with a QueryTracer"
            )
        self.tracer.dump_chrome(path, extra={"workers": self.workers})

    # -- Lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Drain in-flight queries and shut the worker pool down.

        With batching enabled the scheduler's open window group is
        flushed first, so every admitted submission's future completes
        before the pool drains.  A service-owned query-log writer (one
        constructed from a path) is drained and finalized; a caller-
        provided writer is left open for its owner to close.
        """
        if not self._closed:
            self._closed = True
            if self._scheduler is not None:
                self._scheduler.close()
            self._pool.shutdown(wait=True)
            if self.query_log is not None and self._owns_query_log:
                self.query_log.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
