"""Thread-safe LRU cache of query results for the serving layer.

A production deployment sees heavily repeated queries (the same hot spots,
the same keyword combinations), and a distance-first top-k answer is a
pure function of the engine state it ran against — so identical queries
can be answered from memory without touching a single block.
:class:`QueryResultCache` memoizes :class:`~repro.core.query.QueryExecution`
objects keyed on the query's *semantic identity*: spatial target (point or
area), keyword tuple, ``k``, and the ranking function (if any).

Correctness has two layers:

* **Explicit invalidation** — any effective mutation of the underlying
  engine may change answers, so :class:`repro.serve.QueryService` calls
  :meth:`QueryResultCache.invalidate` on every write that actually
  changed something.  A generation counter is exposed so tests can
  assert the flush happened.
* **Per-version stamping** — under snapshot maintenance every entry is
  stamped with the :class:`~repro.serve.maintenance.EngineVersion`
  number that produced it, and :meth:`get` drops entries whose stamp
  differs from the reader's pinned version.  This closes the race
  invalidation alone cannot: an execution pinned to version *V* may
  finish (and :meth:`put` its answer) *after* a writer published *V+1*
  and invalidated — the stale stamp keeps that late write from ever
  answering a *V+1* reader.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.query import QueryExecution, SpatialKeywordQuery

#: Cache key: (point, area, keywords, k, ranking).  ``Rect`` is a frozen
#: dataclass of tuples, so area queries are hashable too; ranking
#: callables hash by identity, so distinct ranking objects never collide.
CacheKey = tuple


class QueryResultCache:
    """LRU map from query identity to a completed execution.

    Args:
        capacity: maximum number of cached executions (must be >= 1).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("result cache capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        # key -> (execution, engine-version stamp or None)
        self._entries: OrderedDict[
            CacheKey, tuple[QueryExecution, int | None]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.generation = 0

    @staticmethod
    def key_of(query: SpatialKeywordQuery) -> CacheKey:
        """The semantic identity of a query (its answer's determinants)."""
        return (query.point, query.area, query.keywords, query.k, query.ranking)

    def get(
        self, query: SpatialKeywordQuery, version: int | None = None
    ) -> QueryExecution | None:
        """Return the cached execution for ``query``, if any.

        Args:
            query: the lookup key.
            version: the reader's pinned engine version; an entry
                stamped with a *different* version is stale (the engine
                moved underneath it) and is dropped on sight.  ``None``
                (the lock-based maintenance mode) skips the check.

        Bumps the hit or miss counter and refreshes LRU recency.
        """
        key = self.key_of(query)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            cached, stamp = entry
            if version is not None and stamp != version:
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return cached

    def put(
        self,
        query: SpatialKeywordQuery,
        execution: QueryExecution,
        version: int | None = None,
    ) -> None:
        """Memoize a completed execution (evicting the LRU entry if full).

        ``version`` stamps the entry with the engine version that
        answered it; later :meth:`get` calls pinned to another version
        will refuse it.
        """
        key = self.key_of(query)
        with self._lock:
            self._entries[key] = (execution, version)
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def invalidate(self) -> int:
        """Drop every cached answer; returns the number of entries dropped.

        Called by the service on any effective engine mutation.  Hit and
        miss counters survive (they describe service history, not current
        contents); the generation counter increments so staleness is
        observable.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.generation += 1
            return dropped

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, query: SpatialKeywordQuery) -> bool:
        with self._lock:
            return self.key_of(query) in self._entries
