"""Lightweight per-query tracing for the concurrent service layer.

Every execution dispatched through :class:`repro.serve.QueryService`
carries one :class:`TraceSpan` recording the span of its life inside the
service: when it was submitted, how long it waited in the worker queue,
how long the search itself took, how much I/O it performed, and whether
it was answered from the result cache.  Spans are collected in a
thread-safe :class:`TraceLog` and can be exported as JSON (the CLI's
``serve --serve-trace`` dump) for offline latency analysis.

Timestamps use :func:`time.perf_counter` — monotonic and comparable
within one process, not wall-clock times.

Since the hierarchical tracing layer (:mod:`repro.obs.trace`) landed,
this flat span is a *view over the root span* of a query's span tree:
when the service's :class:`~repro.obs.trace.QueryTracer` retains a trace
for a query, the span carries its ``trace_id`` and its timestamps equal
the root span's interval (``work_ms`` == root duration).  The flat keys
exported by :meth:`TraceSpan.as_dict` are unchanged, so existing
``--serve-trace`` consumers keep working.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.trace import Trace, atomic_write_json

#: Cache dispositions a span can carry.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_BYPASS = "bypass"  # caching disabled for the service
CACHE_COALESCED = "coalesced"  # answered by another in-flight duplicate


@dataclass
class TraceSpan:
    """The traced lifecycle of one query execution inside the service.

    Attributes:
        query_id: service-wide monotonically increasing sequence number.
        algorithm: executing index label ("IR2", "RTREE", ...).
        strategy: the adaptive planner's chosen strategy (e.g. "iio",
            or a "+"-joined set for mixed sharded routing); None for
            fixed index kinds — makes misrouted slow queries
            attributable in the slow-query log and trace report.
        keywords: the query's keywords.
        k: requested result count.
        cache: one of ``"hit"`` / ``"miss"`` / ``"bypass"``.
        submitted_at: perf-counter time the query entered the service.
        started_at: perf-counter time a worker picked it up.
        lock_acquired_at: perf-counter time the worker obtained the read
            lock (0.0 if it never got that far).
        search_done_at: perf-counter time the engine search (or the
            cache lookup, for hits) returned (0.0 if it never got there).
        finished_at: perf-counter time the execution completed.
        random_reads: per-query random block reads.
        sequential_reads: per-query sequential block reads.
        shared_reads: block reads served by the batch's shared-read
            session instead of the device (0 outside batched execution).
        objects_loaded: per-query logical object loads.
        pruned_by_keywords: shards this query skipped entirely because
            keyword routing proved they hold no matching term (0 for
            unsharded executions and coalesced followers, which fanned
            out to nothing) — mirrors the per-shard
            ``pruned_by_keywords`` flags on
            :attr:`repro.core.query.QueryExecution.shards`.
        num_results: number of results returned.
        retries: transient-error retries spent by this execution.
        worker: name of the thread that executed the query.
        error: exception message when the execution failed, else None.
        trace_id: id of the retained hierarchical trace for this query
            (None when the query was not sampled / not retained).
        batch_id: id of the batch group this query executed in (None for
            unbatched execution).  The ``cache`` disposition
            ``"coalesced"`` marks members answered by another in-flight
            duplicate of the same batch.
        engine_version: the published engine snapshot this query was
            pinned to (snapshot maintenance mode); None under the
            lock-based mode.  In snapshot mode :attr:`lock_acquired_at`
            records the instant the version was pinned, so
            :attr:`lock_wait_ms` measures (near-zero) pin time instead
            of read-lock wait.
    """

    query_id: int
    algorithm: str = ""
    strategy: str | None = None
    keywords: tuple[str, ...] = ()
    k: int = 0
    cache: str = CACHE_BYPASS
    submitted_at: float = 0.0
    started_at: float = 0.0
    lock_acquired_at: float = 0.0
    search_done_at: float = 0.0
    finished_at: float = 0.0
    random_reads: int = 0
    sequential_reads: int = 0
    shared_reads: int = 0
    objects_loaded: int = 0
    pruned_by_keywords: int = 0
    num_results: int = 0
    retries: int = 0
    worker: str = ""
    error: str | None = None
    trace_id: str | None = None
    batch_id: int | None = None
    engine_version: int | None = None

    @property
    def queue_wait_ms(self) -> float:
        """Milliseconds the query waited before a worker picked it up."""
        return max(0.0, self.started_at - self.submitted_at) * 1000.0

    @property
    def search_ms(self) -> float:
        """Milliseconds the search itself took (cache hits are ~0).

        Measured ``lock_acquired_at → search_done_at`` — the engine call
        proper, excluding lock wait and merge/finalize, which
        :attr:`lock_wait_ms` and :attr:`merge_ms` already report
        separately.  (Historically this measured the whole
        ``started_at → finished_at`` window, double-counting both;
        that value is still available as :attr:`work_ms`.)
        """
        if not self.lock_acquired_at or not self.search_done_at:
            return 0.0
        return max(0.0, self.search_done_at - self.lock_acquired_at) * 1000.0

    @property
    def work_ms(self) -> float:
        """Milliseconds from worker pickup to completion (the old
        ``search_ms``): lock wait + engine search + merge/finalize."""
        return max(0.0, self.finished_at - self.started_at) * 1000.0

    @property
    def lock_wait_ms(self) -> float:
        """Milliseconds spent waiting for the read lock (0.0 if unknown)."""
        if not self.lock_acquired_at:
            return 0.0
        return max(0.0, self.lock_acquired_at - self.started_at) * 1000.0

    @property
    def engine_ms(self) -> float:
        """Milliseconds inside the engine search / cache lookup proper."""
        if not self.lock_acquired_at or not self.search_done_at:
            return 0.0
        return max(0.0, self.search_done_at - self.lock_acquired_at) * 1000.0

    @property
    def merge_ms(self) -> float:
        """Milliseconds merging/finalizing the answer (cache put, span)."""
        if not self.search_done_at:
            return 0.0
        return max(0.0, self.finished_at - self.search_done_at) * 1000.0

    @property
    def total_ms(self) -> float:
        """Milliseconds from submission to completion."""
        return max(0.0, self.finished_at - self.submitted_at) * 1000.0

    def as_dict(self) -> dict:
        """JSON-serializable view of the span (the ``--serve-trace`` rows)."""
        return {
            "query_id": self.query_id,
            "algorithm": self.algorithm,
            "strategy": self.strategy,
            "keywords": list(self.keywords),
            "k": self.k,
            "cache": self.cache,
            "queue_wait_ms": self.queue_wait_ms,
            "lock_wait_ms": self.lock_wait_ms,
            "engine_ms": self.engine_ms,
            "merge_ms": self.merge_ms,
            "search_ms": self.search_ms,
            "work_ms": self.work_ms,
            "total_ms": self.total_ms,
            "random_reads": self.random_reads,
            "sequential_reads": self.sequential_reads,
            "shared_reads": self.shared_reads,
            "objects_loaded": self.objects_loaded,
            "pruned_by_keywords": self.pruned_by_keywords,
            "num_results": self.num_results,
            "retries": self.retries,
            "worker": self.worker,
            "error": self.error,
            "trace_id": self.trace_id,
            "batch_id": self.batch_id,
            "engine_version": self.engine_version,
        }

    def emit_phases(self, trace: Trace, parent=None) -> None:
        """Synthesize phase spans for this query under ``parent``.

        ``parent`` defaults to ``trace``'s root (the unbatched case: the
        query *is* the root).  Under batched execution the batch span is
        the root and each member query passes its own "query" span here,
        so the tree reads batch root → member query → phases.

        The engine search itself is traced live (it opens its own spans
        while running); the lock-wait and finalize phases only exist as
        flat timestamps on this span, so once the query completes they
        are back-filled as already-finished children of the parent.  The
        parent's interval is ``started_at → finished_at``: queue wait is
        deliberately *not* a span (the query was idle, and a span would
        overlap the previous query's tree on the same worker lane) — it
        stays an annotation on the parent.
        """
        root = parent if parent is not None else trace.root
        if root is None:
            return
        if self.batch_id is not None:
            root.annotate(batch_id=self.batch_id)
        root.annotate(
            query_id=self.query_id,
            algorithm=self.algorithm,
            keywords=list(self.keywords),
            k=self.k,
            cache=self.cache,
            queue_wait_ms=self.queue_wait_ms,
            worker=self.worker,
        )
        if self.strategy is not None:
            root.annotate(strategy=self.strategy)
        if self.pruned_by_keywords:
            root.annotate(pruned_by_keywords=self.pruned_by_keywords)
        if self.engine_version is not None:
            root.annotate(engine_version=self.engine_version)
        if self.error is not None:
            root.annotate(error=self.error)
        if self.lock_acquired_at and self.started_at:
            trace.new_span(
                "lock-wait", category="service", parent=root,
                start=self.started_at, end=self.lock_acquired_at,
                tid=root.tid,
            )
        if self.search_done_at and self.finished_at:
            trace.new_span(
                "finalize", category="service", parent=root,
                start=self.search_done_at, end=self.finished_at,
                tid=root.tid,
            )


class TraceLog:
    """Append-only, thread-safe collection of :class:`TraceSpan` objects.

    Args:
        capacity: maximum retained spans; the oldest are dropped once the
            log is full.  ``None`` retains everything.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("trace log capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: list[TraceSpan] = []
        self._dropped = 0

    def append(self, span: TraceSpan) -> None:
        """Record one finished span."""
        with self._lock:
            self._spans.append(span)
            if self.capacity is not None and len(self._spans) > self.capacity:
                overflow = len(self._spans) - self.capacity
                del self._spans[:overflow]
                self._dropped += overflow

    def spans(self) -> list[TraceSpan]:
        """A snapshot of the retained spans, in completion order."""
        with self._lock:
            return list(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted because the log reached its capacity."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Forget every retained span (the drop counter too)."""
        with self._lock:
            self._spans = []
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def as_dicts(self) -> list[dict]:
        """Every retained span as a JSON-ready dict."""
        return [span.as_dict() for span in self.spans()]

    def dump_json(self, path: str, extra: dict | None = None) -> None:
        """Write the spans (plus optional metadata) to ``path`` as JSON.

        The write is atomic (tmp file + fsync + rename, the persist
        layer's protocol), so a crash mid-dump never leaves a truncated
        file, and the payload carries the ``dropped`` counter so a log
        truncated by its capacity bound is detectable offline.
        """
        with self._lock:
            spans = list(self._spans)
            dropped = self._dropped
        payload = dict(extra or {})
        payload["dropped"] = dropped
        payload["spans"] = [span.as_dict() for span in spans]
        atomic_write_json(path, payload)
