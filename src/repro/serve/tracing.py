"""Lightweight per-query tracing for the concurrent service layer.

Every execution dispatched through :class:`repro.serve.QueryService`
carries one :class:`TraceSpan` recording the span of its life inside the
service: when it was submitted, how long it waited in the worker queue,
how long the search itself took, how much I/O it performed, and whether
it was answered from the result cache.  Spans are collected in a
thread-safe :class:`TraceLog` and can be exported as JSON (the CLI's
``serve --serve-trace`` dump) for offline latency analysis.

Timestamps use :func:`time.perf_counter` — monotonic and comparable
within one process, not wall-clock times.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

#: Cache dispositions a span can carry.
CACHE_HIT = "hit"
CACHE_MISS = "miss"
CACHE_BYPASS = "bypass"  # caching disabled for the service


@dataclass
class TraceSpan:
    """The traced lifecycle of one query execution inside the service.

    Attributes:
        query_id: service-wide monotonically increasing sequence number.
        algorithm: executing index label ("IR2", "RTREE", ...).
        keywords: the query's keywords.
        k: requested result count.
        cache: one of ``"hit"`` / ``"miss"`` / ``"bypass"``.
        submitted_at: perf-counter time the query entered the service.
        started_at: perf-counter time a worker picked it up.
        lock_acquired_at: perf-counter time the worker obtained the read
            lock (0.0 if it never got that far).
        search_done_at: perf-counter time the engine search (or the
            cache lookup, for hits) returned (0.0 if it never got there).
        finished_at: perf-counter time the execution completed.
        random_reads: per-query random block reads.
        sequential_reads: per-query sequential block reads.
        objects_loaded: per-query logical object loads.
        num_results: number of results returned.
        retries: transient-error retries spent by this execution.
        worker: name of the thread that executed the query.
        error: exception message when the execution failed, else None.
    """

    query_id: int
    algorithm: str = ""
    keywords: tuple[str, ...] = ()
    k: int = 0
    cache: str = CACHE_BYPASS
    submitted_at: float = 0.0
    started_at: float = 0.0
    lock_acquired_at: float = 0.0
    search_done_at: float = 0.0
    finished_at: float = 0.0
    random_reads: int = 0
    sequential_reads: int = 0
    objects_loaded: int = 0
    num_results: int = 0
    retries: int = 0
    worker: str = ""
    error: str | None = None

    @property
    def queue_wait_ms(self) -> float:
        """Milliseconds the query waited before a worker picked it up."""
        return max(0.0, self.started_at - self.submitted_at) * 1000.0

    @property
    def search_ms(self) -> float:
        """Milliseconds the search itself took (cache hits are ~0)."""
        return max(0.0, self.finished_at - self.started_at) * 1000.0

    @property
    def lock_wait_ms(self) -> float:
        """Milliseconds spent waiting for the read lock (0.0 if unknown)."""
        if not self.lock_acquired_at:
            return 0.0
        return max(0.0, self.lock_acquired_at - self.started_at) * 1000.0

    @property
    def engine_ms(self) -> float:
        """Milliseconds inside the engine search / cache lookup proper."""
        if not self.lock_acquired_at or not self.search_done_at:
            return 0.0
        return max(0.0, self.search_done_at - self.lock_acquired_at) * 1000.0

    @property
    def merge_ms(self) -> float:
        """Milliseconds merging/finalizing the answer (cache put, span)."""
        if not self.search_done_at:
            return 0.0
        return max(0.0, self.finished_at - self.search_done_at) * 1000.0

    @property
    def total_ms(self) -> float:
        """Milliseconds from submission to completion."""
        return max(0.0, self.finished_at - self.submitted_at) * 1000.0

    def as_dict(self) -> dict:
        """JSON-serializable view of the span (the ``--serve-trace`` rows)."""
        return {
            "query_id": self.query_id,
            "algorithm": self.algorithm,
            "keywords": list(self.keywords),
            "k": self.k,
            "cache": self.cache,
            "queue_wait_ms": self.queue_wait_ms,
            "lock_wait_ms": self.lock_wait_ms,
            "engine_ms": self.engine_ms,
            "merge_ms": self.merge_ms,
            "search_ms": self.search_ms,
            "total_ms": self.total_ms,
            "random_reads": self.random_reads,
            "sequential_reads": self.sequential_reads,
            "objects_loaded": self.objects_loaded,
            "num_results": self.num_results,
            "retries": self.retries,
            "worker": self.worker,
            "error": self.error,
        }


class TraceLog:
    """Append-only, thread-safe collection of :class:`TraceSpan` objects.

    Args:
        capacity: maximum retained spans; the oldest are dropped once the
            log is full.  ``None`` retains everything.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("trace log capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: list[TraceSpan] = []
        self._dropped = 0

    def append(self, span: TraceSpan) -> None:
        """Record one finished span."""
        with self._lock:
            self._spans.append(span)
            if self.capacity is not None and len(self._spans) > self.capacity:
                overflow = len(self._spans) - self.capacity
                del self._spans[:overflow]
                self._dropped += overflow

    def spans(self) -> list[TraceSpan]:
        """A snapshot of the retained spans, in completion order."""
        with self._lock:
            return list(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted because the log reached its capacity."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Forget every retained span (the drop counter too)."""
        with self._lock:
            self._spans = []
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def as_dicts(self) -> list[dict]:
        """Every retained span as a JSON-ready dict."""
        return [span.as_dict() for span in self.spans()]

    def dump_json(self, path: str, extra: dict | None = None) -> None:
        """Write the spans (plus optional metadata) to ``path`` as JSON."""
        payload = dict(extra or {})
        payload["spans"] = self.as_dicts()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
