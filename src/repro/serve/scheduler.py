"""Batch scheduling for the serving layer: group, coalesce, share work.

Under heavy traffic many in-flight queries are duplicates or near
neighbours of each other.  :class:`BatchScheduler` is the admission path
:class:`repro.serve.QueryService` uses when batching is enabled:

* **window grouping** — submissions arriving within ``window_ms`` of the
  first one are collected into one group; the group flushes when the
  window expires, when it reaches ``max_batch`` members, or immediately
  when a whole batch is handed over via :meth:`submit_group` (the
  deterministic ``submit_many`` path);
* **coalescing** — a submission whose semantic identity (the result
  cache's key: point, area, keywords, k, ranking) matches a member
  already waiting in the open group rides along as a *follower*: one
  execution answers both, and each follower receives its own copies of
  the results so no two callers alias one answer;
* **shared work** — the service runs every flushed group through one
  shared-read session (:mod:`repro.storage.sharedread`), so a block any
  member reads is read from the device once per group.

The scheduler itself only groups; execution, futures, tracing, and
accounting stay in the service.  Flushes hand a :class:`BatchGroup` to
the ``dispatch`` callable (the service submits it to its worker pool).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.query import SpatialKeywordQuery
from repro.errors import ServiceError
from repro.serve.resultcache import QueryResultCache


@dataclass(frozen=True)
class BatchConfig:
    """Tuning knobs for the batch front-end.

    Attributes:
        window_ms: how long the first submission of a group waits for
            company before the group flushes (0 flushes every submission
            immediately in its own group — batching off in all but name).
        max_batch: maximum members per group; a full group flushes
            without waiting for the window.
        max_pending: admission bound — maximum submissions admitted but
            not yet completed before the service sheds new ones with
            :class:`~repro.errors.ServiceOverloadError`.  ``None``
            disables shedding.
        coalesce: merge duplicate in-flight (query, k) pairs within a
            group onto one execution.
    """

    window_ms: float = 2.0
    max_batch: int = 16
    max_pending: int | None = None
    coalesce: bool = True

    def __post_init__(self) -> None:
        if self.window_ms < 0:
            raise ServiceError("batch window_ms must be >= 0")
        if self.max_batch < 1:
            raise ServiceError("batch max_batch must be >= 1")
        if self.max_pending is not None and self.max_pending < 1:
            raise ServiceError("batch max_pending must be >= 1 (or None)")


class BatchMember:
    """One query waiting in (or executing with) a batch group.

    ``followers`` holds coalesced duplicates: submissions with the same
    semantic identity admitted while this member was waiting.  They do
    not execute; the service resolves each follower's future with its
    own copy of this member's answer.
    """

    __slots__ = ("query", "future", "query_id", "submitted_at", "followers")

    def __init__(
        self, query: SpatialKeywordQuery, future, query_id: int,
        submitted_at: float,
    ) -> None:
        self.query = query
        self.future = future
        self.query_id = query_id
        self.submitted_at = submitted_at
        self.followers: list[BatchMember] = []


class BatchGroup:
    """A flushed set of members executed together under one session.

    Under snapshot maintenance the executing service pins the whole
    group to one published engine version (recorded here as
    ``engine_version``): every member of the group answers from the same
    immutable snapshot even while writers publish newer versions
    mid-batch.
    """

    __slots__ = ("batch_id", "members", "engine_version")

    def __init__(self, batch_id: int, members: list[BatchMember]) -> None:
        self.batch_id = batch_id
        self.members = members
        self.engine_version: int | None = None

    def __len__(self) -> int:
        """Total submissions in the group, followers included."""
        return sum(1 + len(m.followers) for m in self.members)


class BatchScheduler:
    """Groups submissions into :class:`BatchGroup`\\ s and dispatches them.

    Args:
        config: grouping and coalescing knobs.
        dispatch: called with each flushed :class:`BatchGroup`; must not
            block (the service submits the group to its worker pool).
    """

    def __init__(
        self, config: BatchConfig, dispatch: Callable[[BatchGroup], None]
    ) -> None:
        self.config = config
        self._dispatch = dispatch
        self._lock = threading.Lock()
        self._members: list[BatchMember] = []
        self._by_key: dict = {}
        self._timer: threading.Timer | None = None
        self._batch_seq = itertools.count()
        self._closed = False
        self.coalesced = 0
        self.batches = 0

    # -- Admission --------------------------------------------------------------

    def submit(self, member: BatchMember) -> None:
        """Admit one submission into the open window group."""
        group = None
        with self._lock:
            if self._closed:
                raise ServiceError("cannot submit to a closed BatchScheduler")
            if self.config.coalesce:
                key = QueryResultCache.key_of(member.query)
                leader = self._by_key.get(key)
                if leader is not None:
                    leader.followers.append(member)
                    self.coalesced += 1
                    return
                self._by_key[key] = member
            self._members.append(member)
            if len(self._members) >= self.config.max_batch:
                group = self._take_locked()
            elif self._timer is None:
                timer = threading.Timer(
                    self.config.window_ms / 1000.0, self._flush_window
                )
                timer.daemon = True
                self._timer = timer
                timer.start()
        if group is not None:
            self._dispatch(group)

    def submit_group(self, members: Sequence[BatchMember]) -> None:
        """Admit an explicit batch; flush immediately (deterministic).

        Any window group already open flushes first, as its own group —
        an explicit batch never merges with ambient traffic, so a caller
        of ``submit_many`` always knows exactly which queries share one
        session.  The batch is chunked by ``max_batch``; duplicates
        coalesce within each chunk.
        """
        groups: list[BatchGroup] = []
        with self._lock:
            if self._closed:
                raise ServiceError("cannot submit to a closed BatchScheduler")
            if self._members:
                groups.append(self._take_locked())
            chunk: list[BatchMember] = []
            by_key: dict = {}
            for member in members:
                if self.config.coalesce:
                    key = QueryResultCache.key_of(member.query)
                    leader = by_key.get(key)
                    if leader is not None:
                        leader.followers.append(member)
                        self.coalesced += 1
                        continue
                    by_key[key] = member
                chunk.append(member)
                if len(chunk) >= self.config.max_batch:
                    groups.append(self._make_group(chunk))
                    chunk, by_key = [], {}
            if chunk:
                groups.append(self._make_group(chunk))
        for group in groups:
            self._dispatch(group)

    # -- Flushing ---------------------------------------------------------------

    def _make_group(self, members: list[BatchMember]) -> BatchGroup:
        self.batches += 1
        return BatchGroup(next(self._batch_seq), members)

    def _take_locked(self) -> BatchGroup:
        """Detach the open window group (caller holds the lock)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        group = self._make_group(self._members)
        self._members = []
        self._by_key = {}
        return group

    def _flush_window(self) -> None:
        """Timer body: the window expired, flush whatever gathered."""
        with self._lock:
            self._timer = None
            group = self._take_locked() if self._members else None
        if group is not None:
            self._dispatch(group)

    def flush(self) -> None:
        """Flush the open window group now (tests and close)."""
        with self._lock:
            group = self._take_locked() if self._members else None
        if group is not None:
            self._dispatch(group)

    @property
    def pending(self) -> int:
        """Submissions waiting in the open window group (followers too)."""
        with self._lock:
            return sum(1 + len(m.followers) for m in self._members)

    def close(self) -> None:
        """Flush any open group and refuse further submissions."""
        with self._lock:
            self._closed = True
            group = self._take_locked() if self._members else None
        if group is not None:
            self._dispatch(group)
