"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses separate storage-level
failures from index-level and query-level misuse, mirroring the layering of
the package (storage -> spatial/text -> core).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class StorageError(ReproError):
    """Base class for block-device and page-store failures."""


class BlockOutOfRangeError(StorageError):
    """A block index outside the device's allocated range was accessed."""

    def __init__(self, block_id: int, num_blocks: int) -> None:
        super().__init__(
            f"block {block_id} out of range (device has {num_blocks} blocks)"
        )
        self.block_id = block_id
        self.num_blocks = num_blocks


class BlockSizeError(StorageError):
    """Data written to a block does not fit the device's block size."""

    def __init__(self, data_len: int, block_size: int) -> None:
        super().__init__(
            f"payload of {data_len} bytes does not fit block size {block_size}"
        )
        self.data_len = data_len
        self.block_size = block_size


class AllocationError(StorageError):
    """The extent allocator was asked for an invalid allocation or free."""


class DeviceFaultError(StorageError):
    """A block device failed an individual read or write.

    Raised (deliberately) by
    :class:`repro.storage.faults.FaultInjectingDevice` and reserved for
    real backends hitting unrecoverable media errors.  Callers that can
    degrade gracefully (the sharded scatter-gather, the serving layer)
    treat this as a *permanent* per-device failure.
    """


class TransientDeviceError(DeviceFaultError):
    """A device failure that is expected to succeed when retried.

    The retry helpers (:func:`repro.storage.faults.retry_transient`) and
    the query layers retry this bounded-with-backoff before giving up and
    treating it like a permanent :class:`DeviceFaultError`.
    """


class SerializationError(StorageError):
    """A node or object image could not be encoded or decoded."""


class PageNotFoundError(StorageError):
    """A node id has no extent registered in the page store."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id} is not stored in this page store")
        self.node_id = node_id


class ObjectNotFoundError(StorageError):
    """An object pointer does not refer to a stored object."""

    def __init__(self, pointer: int) -> None:
        super().__init__(f"no object stored at pointer {pointer}")
        self.pointer = pointer


class IndexError_(ReproError):
    """Base class for index construction and maintenance failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class TreeInvariantError(IndexError_):
    """An R-Tree / IR2-Tree structural invariant was violated."""


class SignatureLengthError(IndexError_):
    """Signatures of incompatible lengths were combined."""

    def __init__(self, left_bits: int, right_bits: int) -> None:
        super().__init__(
            f"cannot combine signatures of {left_bits} and {right_bits} bits"
        )
        self.left_bits = left_bits
        self.right_bits = right_bits


class QueryError(ReproError):
    """A malformed query was submitted (bad k, empty keywords, etc.)."""


class DatasetError(ReproError):
    """A dataset file or generator configuration is invalid."""


class PersistError(DatasetError):
    """An on-disk engine directory failed an integrity check.

    Raised by :mod:`repro.persist` when a saved engine's files are
    missing, truncated, or fail their manifest SHA-256 digests.  Subclass
    of :class:`DatasetError` so pre-existing callers that catch the
    broader class keep working.
    """


class ServiceError(ReproError):
    """The concurrent query service was misused (e.g. submit after close)."""


class ServiceOverloadError(ServiceError):
    """The service shed a submission because its admission queue is full.

    Raised by :class:`repro.serve.QueryService` when batching is enabled
    with a bounded ``max_pending`` and the number of queued-but-unfinished
    submissions already sits at that bound.  Carries the depth observed at
    shed time so callers can implement client-side backoff.
    """

    def __init__(self, pending: int, max_pending: int) -> None:
        super().__init__(
            f"service overloaded: {pending} submissions pending "
            f"(max_pending={max_pending})"
        )
        self.pending = pending
        self.max_pending = max_pending


class VersionRetiredError(ServiceError):
    """An answer-at-version read asked for a version no longer retained.

    Raised by :meth:`repro.serve.QueryService.search` (``at_version=``)
    when the requested snapshot version has aged out of the
    maintainer's bounded retention window — or never existed.  Carries
    the requested version and the retained range so callers can fall
    back to the current version explicitly.
    """

    def __init__(
        self, requested: int, oldest: int | None, newest: int | None
    ) -> None:
        if oldest is None or newest is None:
            detail = "no versions are retained"
        else:
            detail = f"retained versions are {oldest}..{newest}"
        super().__init__(
            f"engine version {requested} is retired: {detail}"
        )
        self.requested = requested
        self.oldest = oldest
        self.newest = newest
