"""Contiguous extent allocation on a block device.

IR2-Tree and MIR2-Tree nodes can exceed one disk block ("we allocate
additional disk block(s) to an IR2-Tree node when needed", Section IV), and
the paper's accounting charges one random access plus sequential accesses
for the remainder.  That only works when a node's blocks are *contiguous*,
which is this allocator's job: it hands out extents (runs of consecutive
block ids), reuses freed extents, and grows the device tail when no free
extent fits.

The allocator uses first-fit over a sorted free list with coalescing of
adjacent free extents.  It is deliberately simple — the workloads here are
build-mostly — but fully correct, so delete-heavy tests exercise reuse.
"""

from __future__ import annotations

import bisect

from repro.errors import AllocationError


class ExtentAllocator:
    """First-fit allocator of contiguous block extents.

    Args:
        start: first block id the allocator may hand out (ids below it are
            reserved, e.g. for a superblock).
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise AllocationError(f"start block must be >= 0, got {start}")
        self._tail = start
        self._start = start
        # Sorted list of (start, length) free extents, non-adjacent by
        # construction (adjacent extents are coalesced on free()).
        self._free: list[tuple[int, int]] = []

    @property
    def tail(self) -> int:
        """One past the highest block id ever allocated."""
        return self._tail

    @property
    def free_blocks(self) -> int:
        """Total number of blocks currently on the free list."""
        return sum(length for _, length in self._free)

    @property
    def allocated_blocks(self) -> int:
        """Blocks handed out and not yet freed."""
        return (self._tail - self._start) - self.free_blocks

    def allocate(self, length: int) -> int:
        """Allocate ``length`` contiguous blocks; return the first block id.

        First-fit: the earliest free extent at least ``length`` blocks long
        is used (splitting off the remainder); otherwise the device tail is
        extended.
        """
        if length <= 0:
            raise AllocationError(f"extent length must be positive, got {length}")
        for i, (start, free_len) in enumerate(self._free):
            if free_len >= length:
                if free_len == length:
                    del self._free[i]
                else:
                    self._free[i] = (start + length, free_len - length)
                return start
        start = self._tail
        self._tail += length
        return start

    def free(self, start: int, length: int) -> None:
        """Return the extent ``[start, start+length)`` to the free list.

        Adjacent free extents are coalesced so future large allocations can
        reuse the space.  Freeing blocks that were never allocated, or
        double-freeing, raises :class:`AllocationError`.
        """
        if length <= 0:
            raise AllocationError(f"extent length must be positive, got {length}")
        if start < self._start or start + length > self._tail:
            raise AllocationError(
                f"extent [{start}, {start + length}) outside allocated range "
                f"[{self._start}, {self._tail})"
            )
        i = bisect.bisect_left(self._free, (start, 0))
        prev_extent = self._free[i - 1] if i > 0 else None
        next_extent = self._free[i] if i < len(self._free) else None
        if prev_extent is not None and prev_extent[0] + prev_extent[1] > start:
            raise AllocationError(f"double free of extent starting at {start}")
        if next_extent is not None and start + length > next_extent[0]:
            raise AllocationError(f"double free of extent starting at {start}")

        merge_prev = prev_extent is not None and prev_extent[0] + prev_extent[1] == start
        merge_next = next_extent is not None and start + length == next_extent[0]
        if merge_prev and merge_next:
            self._free[i - 1] = (
                prev_extent[0],
                prev_extent[1] + length + next_extent[1],
            )
            del self._free[i]
        elif merge_prev:
            self._free[i - 1] = (prev_extent[0], prev_extent[1] + length)
        elif merge_next:
            self._free[i] = (start, length + next_extent[1])
        else:
            self._free.insert(i, (start, length))
        self._trim_tail()

    def reallocate(self, start: int, old_length: int, new_length: int) -> int:
        """Resize an extent, preferring in-place growth or shrink.

        Returns the (possibly new) start block.  When the extent cannot grow
        in place it is freed and a fresh extent allocated, mirroring how a
        node that outgrows its blocks is rewritten elsewhere on disk.
        """
        if new_length == old_length:
            return start
        if new_length < old_length:
            self.free(start + new_length, old_length - new_length)
            return start
        # Try growing into the device tail.
        if start + old_length == self._tail:
            self._tail += new_length - old_length
            return start
        # Try growing into an adjacent free extent.
        i = bisect.bisect_left(self._free, (start + old_length, 0))
        if i < len(self._free):
            next_start, next_len = self._free[i]
            needed = new_length - old_length
            if next_start == start + old_length and next_len >= needed:
                if next_len == needed:
                    del self._free[i]
                else:
                    self._free[i] = (next_start + needed, next_len - needed)
                return start
        self.free(start, old_length)
        return self.allocate(new_length)

    def _trim_tail(self) -> None:
        """Shrink the tail when the last free extent touches it."""
        while self._free:
            start, length = self._free[-1]
            if start + length == self._tail:
                self._tail = start
                self._free.pop()
            else:
                break

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExtentAllocator(tail={self._tail}, "
            f"free={self.free_blocks}, allocated={self.allocated_blocks})"
        )
