"""Disk substrate: block devices, I/O accounting, page and object stores.

Everything above this package treats storage through these abstractions so
the paper's disk-access metrics (random vs. sequential block accesses,
object accesses, structure sizes) are measured, not estimated.
"""

from repro.storage.allocator import ExtentAllocator
from repro.storage.block import (
    DEFAULT_BLOCK_SIZE,
    BlockDevice,
    FileBlockDevice,
    InMemoryBlockDevice,
)
from repro.storage.cache import BufferPoolDevice
from repro.storage.faults import (
    CrashTimer,
    FaultInjectingDevice,
    FaultPlan,
    SimulatedCrash,
    inject_engine_faults,
    retry_transient,
)
from repro.storage.iostats import AccessCounts, IOStats, collecting_io
from repro.storage.sharedread import (
    SharedReadSession,
    activate_session,
    current_session,
    shared_read_session,
)
from repro.storage.objectstore import OBJECT_CATEGORY, ObjectStore, decode_row, encode_row
from repro.storage.pagestore import PageStore
from repro.storage.serialization import (
    HEADER_SIZE,
    blocks_per_node,
    decode_node,
    encode_node,
    entry_size,
    node_byte_size,
    node_capacity,
)
from repro.storage.timing import DEFAULT_DRIVE, DriveModel

__all__ = [
    "AccessCounts",
    "BlockDevice",
    "BufferPoolDevice",
    "CrashTimer",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_DRIVE",
    "DriveModel",
    "ExtentAllocator",
    "FaultInjectingDevice",
    "FaultPlan",
    "FileBlockDevice",
    "HEADER_SIZE",
    "IOStats",
    "InMemoryBlockDevice",
    "SimulatedCrash",
    "OBJECT_CATEGORY",
    "ObjectStore",
    "PageStore",
    "SharedReadSession",
    "activate_session",
    "blocks_per_node",
    "collecting_io",
    "current_session",
    "shared_read_session",
    "decode_node",
    "decode_row",
    "encode_node",
    "encode_row",
    "entry_size",
    "inject_engine_faults",
    "node_byte_size",
    "node_capacity",
    "retry_transient",
]
