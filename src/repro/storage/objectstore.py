"""Object store: the plain-text object file.

Section VI: "The spatial objects are stored in a plain text file and the
leaf nodes of the tree data structures store pointers to the object
locations in the file."  This module reproduces that layout.  Objects are
tab-delimited rows (id, coordinates, document text) appended to a block
device; an object pointer (``ObjPtr``) is the byte offset of the row.

``LoadObject`` reads every block the row spans — one random access plus
sequential accesses for continuation blocks — and bumps the logical
``objects_loaded`` counter that Figures 11b/14b report as "object
accesses".  Table 1's "average # disk blocks per object" is exactly the
mean number of blocks such a load touches.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import ObjectNotFoundError, SerializationError
from repro.model import SpatialObject
from repro.storage.block import BlockDevice

#: Row terminator; document text is sanitized so it cannot contain one.
_ROW_END = b"\n"

#: Category label for object-file accesses in IOStats.
OBJECT_CATEGORY = "object"


def encode_row(obj: SpatialObject) -> bytes:
    """Encode an object as one tab-delimited text row.

    Layout: ``oid <TAB> dims <TAB> c_0 <TAB> ... <TAB> c_{d-1} <TAB> text``.
    Tabs and newlines inside the document are replaced with spaces so the
    row remains a single line, matching the paper's plain-text file format.
    """
    clean_text = obj.text.replace("\t", " ").replace("\n", " ").replace("\r", " ")
    fields = [str(obj.oid), str(obj.dims)]
    fields.extend(repr(c) for c in obj.point)
    fields.append(clean_text)
    return "\t".join(fields).encode("utf-8") + _ROW_END


def decode_row(row: bytes) -> SpatialObject:
    """Parse one row produced by :func:`encode_row`."""
    try:
        text_row = row.rstrip(b"\n").decode("utf-8")
        fields = text_row.split("\t")
        oid = int(fields[0])
        dims = int(fields[1])
        point = tuple(float(c) for c in fields[2 : 2 + dims])
        text = fields[2 + dims] if len(fields) > 2 + dims else ""
        if len(point) != dims:
            raise ValueError(f"expected {dims} coordinates, got {len(point)}")
    except (ValueError, IndexError, UnicodeDecodeError) as exc:
        raise SerializationError(f"malformed object row: {exc}") from exc
    return SpatialObject(oid, point, text)


class ObjectStore:
    """Append-only tab-delimited object file with per-row byte pointers.

    Args:
        device: backing block device (its stats record object-file I/O).
    """

    def __init__(self, device: BlockDevice) -> None:
        self.device = device
        self._end = 0  # byte offset one past the last row
        self._count = 0
        self._pointers: dict[int, int] = {}  # oid -> ObjPtr (for delete())

    # -- Writing ---------------------------------------------------------------

    def append(self, obj: SpatialObject) -> int:
        """Append an object row; return its pointer (byte offset).

        The blocks the row spans are written through the device, so build
        I/O is counted (relevant for the maintenance experiments).
        """
        row = encode_row(obj)
        pointer = self._end
        self._write_bytes(pointer, row)
        self._end += len(row)
        self._count += 1
        self._pointers[obj.oid] = pointer
        return pointer

    def bulk_append(self, objects: Iterable[SpatialObject]) -> list[int]:
        """Append many objects; return their pointers in order."""
        return [self.append(obj) for obj in objects]

    def _write_bytes(self, offset: int, data: bytes) -> None:
        """Write ``data`` at byte ``offset`` via read-modify-write of blocks."""
        block_size = self.device.block_size
        first = offset // block_size
        last = (offset + len(data) - 1) // block_size
        pos = 0
        for block_id in range(first, last + 1):
            block_lo = block_id * block_size
            in_block_off = max(offset, block_lo) - block_lo
            take = min(block_size - in_block_off, len(data) - pos)
            if in_block_off == 0 and take == block_size:
                chunk = data[pos : pos + take]
            else:
                if block_id < self.device.num_blocks:
                    existing = bytearray(self.device._read_raw(block_id))
                else:
                    existing = bytearray(block_size)
                existing[in_block_off : in_block_off + take] = data[pos : pos + take]
                chunk = bytes(existing)
            self.device.write_block(block_id, chunk, OBJECT_CATEGORY)
            pos += take

    # -- Reading ----------------------------------------------------------------

    def load(self, pointer: int) -> SpatialObject:
        """The paper's ``LoadObject``: fetch the object at ``pointer``.

        Charges one block read per block the row spans (first random, rest
        sequential) and one logical object access.
        """
        if pointer < 0 or pointer >= self._end:
            raise ObjectNotFoundError(pointer)
        block_size = self.device.block_size
        row = bytearray()
        block_id = pointer // block_size
        in_block = pointer % block_size
        while True:
            block = self.device.read_block(block_id, OBJECT_CATEGORY)
            newline = block.find(_ROW_END, in_block)
            if newline >= 0:
                row.extend(block[in_block : newline + 1])
                break
            row.extend(block[in_block:])
            block_id += 1
            in_block = 0
            if block_id >= self.device.num_blocks:
                raise ObjectNotFoundError(pointer)
        self.device.stats.record_object_load()
        obj = decode_row(bytes(row))
        if obj.oid not in self._pointers:
            raise ObjectNotFoundError(pointer)
        return obj

    def blocks_for(self, pointer: int) -> int:
        """Blocks a :meth:`load` of ``pointer`` touches (for Table 1 stats)."""
        row_len = self._row_length(pointer)
        block_size = self.device.block_size
        first = pointer // block_size
        last = (pointer + row_len - 1) // block_size
        return last - first + 1

    def _row_length(self, pointer: int) -> int:
        """Length in bytes of the row at ``pointer`` (uncounted scan)."""
        block_size = self.device.block_size
        block_id = pointer // block_size
        in_block = pointer % block_size
        length = 0
        while block_id < self.device.num_blocks:
            block = self.device._read_raw(block_id)
            newline = block.find(_ROW_END, in_block)
            if newline >= 0:
                return length + (newline - in_block) + 1
            length += block_size - in_block
            block_id += 1
            in_block = 0
        raise ObjectNotFoundError(pointer)

    # -- Maintenance ---------------------------------------------------------------

    def pointer_of(self, oid: int) -> int:
        """Pointer of the live object with identifier ``oid``."""
        pointer = self._pointers.get(oid)
        if pointer is None:
            raise ObjectNotFoundError(oid)
        return pointer

    def delete(self, oid: int) -> int:
        """Tombstone the object with identifier ``oid``; return its pointer.

        The row bytes remain in the file (append-only log); the pointer is
        simply forgotten, as the paper's Delete only removes the tree entry.
        """
        pointer = self._pointers.pop(oid, None)
        if pointer is None:
            raise ObjectNotFoundError(oid)
        self._count -= 1
        return pointer

    # -- Introspection ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def iter_objects(self) -> Iterator[tuple[int, SpatialObject]]:
        """Yield ``(pointer, object)`` pairs without I/O accounting.

        For offline statistics (Table 1) and dataset export only.
        """
        for oid in sorted(self._pointers):
            pointer = self._pointers[oid]
            yield pointer, self._load_uncounted(pointer)

    def _load_uncounted(self, pointer: int) -> SpatialObject:
        block_size = self.device.block_size
        row = bytearray()
        block_id = pointer // block_size
        in_block = pointer % block_size
        while block_id < self.device.num_blocks:
            block = self.device._read_raw(block_id)
            newline = block.find(_ROW_END, in_block)
            if newline >= 0:
                row.extend(block[in_block : newline + 1])
                return decode_row(bytes(row))
            row.extend(block[in_block:])
            block_id += 1
            in_block = 0
        raise ObjectNotFoundError(pointer)

    @property
    def size_bytes(self) -> int:
        """Bytes of row data written (excluding trailing block padding)."""
        return self._end

    @property
    def size_mb(self) -> float:
        """Size of the object file in megabytes."""
        return self.size_bytes / (1024 * 1024)
