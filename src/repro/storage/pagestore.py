"""Page store: tree nodes on a block device.

Maps node ids to contiguous block extents on a
:class:`~repro.storage.block.BlockDevice` and moves node byte images in and
out.  Reading or writing a node costs one random block access plus
(extent length - 1) sequential accesses — the accounting behind the thick
and thin bars of the paper's Figures 9b-14b.

The id -> extent directory is kept in memory and its lookups are *not*
charged as I/O.  This is faithful to the paper's setting: there, a
``NodePtr`` *is* the physical block address of the child node, so following
a pointer requires no directory at all.  Our directory merely emulates
physical pointers while letting nodes be relocated when they grow.
"""

from __future__ import annotations

from repro.errors import PageNotFoundError
from repro.storage.allocator import ExtentAllocator
from repro.storage.block import BlockDevice


class PageStore:
    """Node-image persistence with extent allocation and I/O accounting.

    Args:
        device: backing block device.
        category: label under which node accesses are recorded in the
            device's :class:`~repro.storage.iostats.IOStats`.
    """

    def __init__(self, device: BlockDevice, category: str = "node") -> None:
        self.device = device
        self.category = category
        self._allocator = ExtentAllocator()
        self._directory: dict[int, tuple[int, int]] = {}
        self._next_id = 0

    # -- Node id management --------------------------------------------------

    def new_node_id(self) -> int:
        """Reserve and return a fresh node id (no blocks allocated yet)."""
        node_id = self._next_id
        self._next_id += 1
        return node_id

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._directory

    def __len__(self) -> int:
        return len(self._directory)

    def node_ids(self) -> list[int]:
        """Ids of all currently stored nodes."""
        return list(self._directory)

    # -- I/O -------------------------------------------------------------------

    def write(self, node_id: int, image: bytes, reserve_blocks: int | None = None) -> None:
        """Store a node image, (re)allocating its extent as needed.

        Corresponds to the paper's ``StoreNode``: charged as one random
        write plus sequential writes for any additional blocks.

        Args:
            node_id: id of the node being stored.
            image: serialized node bytes.
            reserve_blocks: minimum extent size; trees pass the full-
                capacity node footprint here so a node's blocks are
                reserved up front (the paper sizes nodes by capacity —
                "two disk blocks per node" — not by current fill) and
                in-place updates never relocate the node.
        """
        needed = self.device.blocks_needed(len(image))
        if reserve_blocks is not None and reserve_blocks > needed:
            needed = reserve_blocks
        extent = self._directory.get(node_id)
        if extent is None:
            start = self._allocator.allocate(needed)
        else:
            start, old_len = extent
            start = self._allocator.reallocate(start, old_len, needed)
        self._directory[node_id] = (start, needed)
        # Pad to the full extent: storing a node writes all of its blocks
        # (and guarantees later extent reads never run past the device end).
        padded = image.ljust(needed * self.device.block_size, b"\x00")
        self.device.write_extent(start, padded, self.category)

    def read(self, node_id: int) -> bytes:
        """Load a node image.

        Corresponds to the paper's ``LoadNode``: one random read plus
        sequential reads for any additional blocks.
        """
        extent = self._directory.get(node_id)
        if extent is None:
            raise PageNotFoundError(node_id)
        start, length = extent
        return self.device.read_extent(start, length, self.category)

    def delete(self, node_id: int) -> None:
        """Free a node's blocks and forget its id."""
        extent = self._directory.pop(node_id, None)
        if extent is None:
            raise PageNotFoundError(node_id)
        self._allocator.free(*extent)

    # -- Introspection -----------------------------------------------------------

    def extent_of(self, node_id: int) -> tuple[int, int]:
        """Return ``(start_block, num_blocks)`` for a stored node."""
        extent = self._directory.get(node_id)
        if extent is None:
            raise PageNotFoundError(node_id)
        return extent

    @property
    def used_blocks(self) -> int:
        """Blocks currently holding live node images."""
        return sum(length for _, length in self._directory.values())

    @property
    def size_bytes(self) -> int:
        """On-disk footprint of live nodes in bytes."""
        return self.used_blocks * self.device.block_size

    @property
    def size_mb(self) -> float:
        """On-disk footprint of live nodes in megabytes."""
        return self.size_bytes / (1024 * 1024)
