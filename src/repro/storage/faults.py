"""Deterministic fault injection for the storage layer.

Durability claims are worthless untested: this module makes the failure
modes a disk can actually exhibit — read/write errors, torn (partial)
writes, silent bit flips — reproducible on demand, so the recovery paths
in :mod:`repro.persist`, :class:`repro.shard.ShardedEngine`, and
:mod:`repro.serve` are exercised by real tests instead of hand-waving.

* :class:`FaultPlan` is a seedable schedule of faults: scripted ordinals
  ("fail the 3rd read"), probabilistic rates, transient vs. permanent
  errors, and a total failure budget ("fail twice, then recover").
* :class:`FaultInjectingDevice` wraps any
  :class:`~repro.storage.block.BlockDevice` and applies a plan to every
  block access, sharing the wrapped device's :class:`IOStats` so the
  paper's access accounting is unchanged.
* :func:`inject_engine_faults` installs such wrappers across all of one
  engine's devices (object file + index structure) in place.
* :func:`retry_transient` is the bounded exponential-backoff retry loop
  the query layers use for :class:`~repro.errors.TransientDeviceError`.
* :class:`SimulatedCrash` / :class:`CrashTimer` simulate a process kill
  at a chosen fault point inside :func:`repro.persist.save_engine`
  (``SimulatedCrash`` derives from :class:`BaseException` so ordinary
  cleanup handlers do not run — exactly like a real crash).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable

from repro.errors import DeviceFaultError, TransientDeviceError
from repro.storage.block import BlockDevice


class SimulatedCrash(BaseException):
    """A process kill simulated at a named fault point.

    Deliberately **not** a :class:`~repro.errors.ReproError` — and not
    even an :class:`Exception` — so that neither library error handling
    nor best-effort cleanup code intercepts it: whatever state is on disk
    when it fires is exactly what a power loss would have left.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


class CrashTimer:
    """Fault-point hook that records points and optionally crashes.

    Pass an instance to :func:`repro.persist.saving_fault_hook`.  With
    ``crash_at=None`` it only records the sequence of fault-point labels
    (use one dry run to enumerate them); with ``crash_at=i`` it raises
    :class:`SimulatedCrash` when the ``i``-th point (0-based) is reached.
    """

    def __init__(self, crash_at: int | None = None) -> None:
        self.crash_at = crash_at
        self.points: list[str] = []

    def __call__(self, point: str) -> None:
        index = len(self.points)
        self.points.append(point)
        if self.crash_at is not None and index == self.crash_at:
            raise SimulatedCrash(point)


class FaultPlan:
    """A deterministic, seedable schedule of device faults.

    One plan may be shared by several :class:`FaultInjectingDevice`
    wrappers (e.g. an engine's object and index devices), in which case
    the read/write ordinals count across all of them — "the 5th block
    access anywhere" is a well-defined fault site.

    Args:
        seed: RNG seed for the probabilistic fault draws.
        read_error_rate: probability that any read raises.
        write_error_rate: probability that any write raises.
        bitflip_rate: probability that a read's payload comes back with
            one random bit flipped (silently — no exception).
        fail_read_at: 0-based read ordinals that raise (scripted faults).
        fail_write_at: 0-based write ordinals that raise.
        torn_write_at: 0-based write ordinals that persist only the first
            half of the block and then raise — a torn sector.
        transient: raise :class:`TransientDeviceError` (retryable)
            instead of the permanent :class:`DeviceFaultError`.
        max_failures: stop raising after this many injected failures
            (``None`` = unlimited); models a fault that clears.
    """

    def __init__(
        self,
        seed: int = 0,
        read_error_rate: float = 0.0,
        write_error_rate: float = 0.0,
        bitflip_rate: float = 0.0,
        fail_read_at: tuple[int, ...] | frozenset[int] = (),
        fail_write_at: tuple[int, ...] | frozenset[int] = (),
        torn_write_at: tuple[int, ...] | frozenset[int] = (),
        transient: bool = False,
        max_failures: int | None = None,
    ) -> None:
        self.read_error_rate = read_error_rate
        self.write_error_rate = write_error_rate
        self.bitflip_rate = bitflip_rate
        self.fail_read_at = frozenset(fail_read_at)
        self.fail_write_at = frozenset(fail_write_at)
        self.torn_write_at = frozenset(torn_write_at)
        self.transient = transient
        self.max_failures = max_failures
        self.reads_seen = 0
        self.writes_seen = 0
        self.failures_injected = 0
        self.bitflips_injected = 0
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def disarm(self) -> None:
        """Stop injecting anything further (the fault 'clears')."""
        with self._lock:
            self.read_error_rate = 0.0
            self.write_error_rate = 0.0
            self.bitflip_rate = 0.0
            self.fail_read_at = frozenset()
            self.fail_write_at = frozenset()
            self.torn_write_at = frozenset()

    def _error(self, message: str) -> DeviceFaultError:
        self.failures_injected += 1
        cls = TransientDeviceError if self.transient else DeviceFaultError
        return cls(message)

    def _budget_left(self) -> bool:
        return self.max_failures is None or self.failures_injected < self.max_failures

    def on_read(self, name: str, block_id: int) -> bool:
        """Decide one read's fate; returns True when the payload should
        come back bit-flipped.  Raises to fail the read."""
        with self._lock:
            ordinal = self.reads_seen
            self.reads_seen += 1
            fail = ordinal in self.fail_read_at or (
                self.read_error_rate > 0.0
                and self._rng.random() < self.read_error_rate
            )
            if fail and self._budget_left():
                raise self._error(
                    f"injected read fault on {name} block {block_id} "
                    f"(read #{ordinal})"
                )
            return (
                self.bitflip_rate > 0.0
                and self._rng.random() < self.bitflip_rate
            )

    def on_write(self, name: str, block_id: int) -> bool:
        """Decide one write's fate; returns True for a torn write (the
        caller persists a partial block, then raises via
        :meth:`torn_error`).  Raises directly for a clean write fault."""
        with self._lock:
            ordinal = self.writes_seen
            self.writes_seen += 1
            if ordinal in self.torn_write_at and self._budget_left():
                return True
            fail = ordinal in self.fail_write_at or (
                self.write_error_rate > 0.0
                and self._rng.random() < self.write_error_rate
            )
            if fail and self._budget_left():
                raise self._error(
                    f"injected write fault on {name} block {block_id} "
                    f"(write #{ordinal})"
                )
            return False

    def torn_error(self, name: str, block_id: int) -> DeviceFaultError:
        with self._lock:
            return self._error(
                f"injected torn write on {name} block {block_id}"
            )

    def flip_bit(self, data: bytes) -> bytes:
        """Flip one RNG-chosen bit of ``data`` (silent corruption)."""
        with self._lock:
            self.bitflips_injected += 1
            position = self._rng.randrange(len(data) * 8)
        corrupted = bytearray(data)
        corrupted[position // 8] ^= 1 << (position % 8)
        return bytes(corrupted)


class FaultInjectingDevice(BlockDevice):
    """A block device that fails, tears, and corrupts on schedule.

    Wraps any :class:`BlockDevice`; every counted access consults the
    :class:`FaultPlan` before (writes) or after (reads) delegating to the
    wrapped device.  The wrapper shares the inner device's
    :class:`~repro.storage.iostats.IOStats`, and only the inner device
    records accesses — accounting is identical to running unwrapped.

    Args:
        inner: the device actually holding the blocks.
        plan: the fault schedule; constructed from ``plan_kwargs`` when
            omitted.
        **plan_kwargs: forwarded to :class:`FaultPlan` when ``plan`` is
            omitted.
    """

    def __init__(
        self, inner: BlockDevice, plan: FaultPlan | None = None, **plan_kwargs
    ) -> None:
        super().__init__(
            inner.block_size, inner.stats, name=f"faulty({inner.name})"
        )
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan(**plan_kwargs)

    @property
    def num_blocks(self) -> int:
        return self.inner.num_blocks

    # Raw hooks delegate uncounted (iter_blocks and friends); the counted
    # read/write paths below are overridden wholesale so the inner device
    # alone does the accounting.
    def _read_raw(self, block_id: int) -> bytes:
        return self.inner._read_raw(block_id)

    def _write_raw(self, block_id: int, data: bytes) -> None:
        self.inner._write_raw(block_id, data)

    def _grow_to(self, num_blocks: int) -> None:
        self.inner._grow_to(num_blocks)

    def read_block(self, block_id: int, category: str = "data") -> bytes:
        flip = self.plan.on_read(self.name, block_id)
        data = self.inner.read_block(block_id, category)
        if flip:
            data = self.plan.flip_bit(data)
        return data

    def write_block(self, block_id: int, data: bytes, category: str = "data") -> None:
        torn = self.plan.on_write(self.name, block_id)
        if torn:
            # Persist only the first half of the payload — the sector
            # boundary a power loss actually tears at — then fail.
            self.inner.write_block(block_id, data[: self.block_size // 2], category)
            raise self.plan.torn_error(self.name, block_id)
        self.inner.write_block(block_id, data, category)


def inject_engine_faults(
    engine, plan: FaultPlan | None = None, **plan_kwargs
) -> FaultPlan:
    """Install fault-injecting wrappers over one engine's devices.

    Wraps both the object-file device and the index device of a single
    :class:`~repro.core.engine.SpatialKeywordEngine` **in place** (every
    structure holding a device reference is repointed), sharing one
    :class:`FaultPlan` so access ordinals count across the whole engine.
    For a :class:`~repro.shard.ShardedEngine`, call this per shard —
    per-shard plans are what degradation tests need anyway.

    Returns the (shared) plan, so tests can inspect counters or
    :meth:`~FaultPlan.disarm` it.
    """
    plan = plan if plan is not None else FaultPlan(**plan_kwargs)
    corpus = engine.corpus
    wrapped_objects = FaultInjectingDevice(corpus.device, plan)
    corpus.device = wrapped_objects
    corpus.store.device = wrapped_objects
    index = engine.index
    inner_index = index.device
    wrapped_index = FaultInjectingDevice(inner_index, plan)
    index.device = wrapped_index
    # Repoint every sub-structure that kept its own reference to the
    # index device (page store, inverted index, signature file).
    for attr in ("pages", "index", "sigfile"):
        sub = getattr(index, attr, None)
        if sub is not None and getattr(sub, "device", None) is inner_index:
            sub.device = wrapped_index
    return plan


def retry_transient(
    fn: Callable,
    retries: int = 2,
    backoff_s: float = 0.005,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, TransientDeviceError], None] | None = None,
):
    """Call ``fn``, retrying :class:`TransientDeviceError` with backoff.

    Args:
        fn: zero-argument callable to run.
        retries: maximum number of *re*-tries after the first attempt.
        backoff_s: initial sleep; doubles per retry (bounded overall by
            ``backoff_s * (2**retries - 1)``).
        sleep: injection point for tests (defaults to :func:`time.sleep`).
        on_retry: observer called as ``on_retry(attempt, error)`` once per
            retry actually taken (not for the final, re-raised failure) —
            the metrics layer counts retries through this hook.

    Permanent :class:`~repro.errors.DeviceFaultError` and every other
    exception propagate immediately; the last transient error propagates
    once the retry budget is exhausted.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except TransientDeviceError as exc:
            if attempt >= retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(backoff_s * (2 ** attempt))
            attempt += 1
