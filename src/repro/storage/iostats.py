"""Disk access accounting.

The paper's evaluation (Section VI) compares algorithms primarily by the
number of *disk block accesses*, split into **random** and **sequential**
accesses (the thick bars and thin lines of Figures 9b-14b), observing that
"the execution time is primarily proportional to the random access numbers".

:class:`IOStats` is the single source of truth for that accounting.  Every
:class:`~repro.storage.block.BlockDevice` owns one and reports each block
read/write to it.  An access to block ``b`` is classified *sequential* when
it immediately follows an access to block ``b - 1`` on the same device (the
head does not move), and *random* otherwise.  Multi-block node reads are
therefore 1 random + (n-1) sequential accesses, which is exactly the
mechanism that makes the MIR2-Tree trade sequential accesses for random ones
in the paper's figures.

Counters are additionally broken down by a free-form *category* string
("node", "object", "postings", ...) so experiments can report object
accesses (Figures 11b and 14b) separately from index-node accesses.

Concurrency
-----------

Counter updates are read-modify-write sequences, so every mutation is
protected by a per-``IOStats`` lock: devices shared between threads (the
serving layer in :mod:`repro.serve` dispatches queries across a pool)
never lose counts.  Per-*execution* accounting cannot come from
snapshot/diff of a shared device under concurrency — another thread's
accesses would land inside the window — so :func:`collecting_io` installs
a **thread-local collector**: every access the *current thread* records on
any device is also tallied (with its already-decided random/sequential
classification) into a private :class:`IOStats`, giving each query its own
isolated I/O delta regardless of what other threads do.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Optional tracing bridge, installed by :mod:`repro.obs.trace` when it is
#: imported.  The storage layer must stay import-cycle-free with the
#: observability package, so instead of importing it we expose two module
#: globals that default to ``None`` (a single cheap check per access).
#: When set, every classified block access is forwarded as
#: ``sink(op, block_id, category, is_sequential)`` and every logical
#: object load as ``sink(count)``, firing at exactly the code points the
#: counters tally — which is what lets span-tree event counts reconcile
#: exactly with per-query :func:`collecting_io` deltas.
_TRACE_BLOCK_SINK = None
_TRACE_OBJECT_SINK = None
#: Fired as ``sink(block_id, category)`` for every *shared-read hit*: a
#: block served from an active :class:`~repro.storage.sharedread.
#: SharedReadSession` instead of the device.  Kept distinct from the block
#: sink so trace-event block counts still reconcile exactly with the
#: random/sequential read counters (shared hits touch neither the device
#: nor the head position).
_TRACE_SHARED_SINK = None

#: Thread-local stack of active per-execution collectors.
_collectors = threading.local()


def _collector_stack() -> list["IOStats"]:
    stack = getattr(_collectors, "stack", None)
    if stack is None:
        stack = _collectors.stack = []
    return stack


@contextmanager
def collecting_io() -> Iterator["IOStats"]:
    """Collect every I/O event the current thread records, on any device.

    Usage::

        with collecting_io() as io:
            run_query()
        print(io.random_reads)  # this thread's accesses only

    Collectors nest (each active collector on the thread receives every
    event) and are invisible to other threads, which is what makes
    per-query accounting exact under concurrent execution.
    """
    collector = IOStats()
    stack = _collector_stack()
    stack.append(collector)
    try:
        yield collector
    finally:
        # Remove by identity, not equality: IOStats is a dataclass whose
        # generated __eq__ compares counter values, and nested collectors
        # that saw the same events are equal — list.remove() would delete
        # the wrong (usually the outer) one.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is collector:
                del stack[i]
                break


@dataclass
class AccessCounts:
    """Read/write counters for one access pattern (random or sequential)."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Total accesses (reads plus writes)."""
        return self.reads + self.writes

    def copy(self) -> "AccessCounts":
        """Return an independent copy of these counters."""
        return AccessCounts(self.reads, self.writes)


@dataclass
class IOStats:
    """Running disk-access statistics for one block device.

    Attributes:
        random: counts of accesses that required a head seek.
        sequential: counts of accesses contiguous with the previous one.
        by_category: per-category (random_reads, seq_reads, random_writes,
            seq_writes) 4-tuples, keyed by the category string passed to
            :meth:`record_read` / :meth:`record_write`.
        objects_loaded: number of *logical objects* materialized from the
            object store (not blocks); Figures 11b/14b report this metric.
        shared_reads: block reads satisfied by a batch's
            :class:`~repro.storage.sharedread.SharedReadSession` instead of
            the device.  These cost no I/O (they are *not* part of
            ``total_reads`` and do not move the head); the counter exists so
            per-query attribution under batched execution stays exact:
            ``reads + shared_reads`` is what the query would have cost run
            alone.
    """

    random: AccessCounts = field(default_factory=AccessCounts)
    sequential: AccessCounts = field(default_factory=AccessCounts)
    by_category: dict = field(default_factory=dict)
    objects_loaded: int = 0
    shared_reads: int = 0
    _last_block: int | None = field(default=None, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record_read(self, block_id: int, category: str = "data") -> bool:
        """Record a read of ``block_id``; return True if it was sequential."""
        with self._lock:
            is_seq = self._classify(block_id)
            self._tally_read(is_seq, category)
        for collector in _collector_stack():
            if collector is not self:
                with collector._lock:
                    collector._tally_read(is_seq, category)
        if _TRACE_BLOCK_SINK is not None:
            _TRACE_BLOCK_SINK("read", block_id, category, is_seq)
        return is_seq

    def record_write(self, block_id: int, category: str = "data") -> bool:
        """Record a write of ``block_id``; return True if it was sequential."""
        with self._lock:
            is_seq = self._classify(block_id)
            self._tally_write(is_seq, category)
        for collector in _collector_stack():
            if collector is not self:
                with collector._lock:
                    collector._tally_write(is_seq, category)
        if _TRACE_BLOCK_SINK is not None:
            _TRACE_BLOCK_SINK("write", block_id, category, is_seq)
        return is_seq

    def record_object_load(self, count: int = 1) -> None:
        """Record that ``count`` logical objects were materialized."""
        with self._lock:
            self.objects_loaded += count
        for collector in _collector_stack():
            if collector is not self:
                with collector._lock:
                    collector.objects_loaded += count
        if _TRACE_OBJECT_SINK is not None:
            _TRACE_OBJECT_SINK(count)

    def record_shared_read(self, block_id: int, category: str = "data") -> None:
        """Record a read satisfied by a shared-read session (zero I/O).

        Deliberately does *not* touch the random/sequential counters or the
        head position: the device was never asked for the block, so serial
        and batched runs of the remaining (real) accesses classify
        identically.
        """
        with self._lock:
            self.shared_reads += 1
        for collector in _collector_stack():
            if collector is not self:
                with collector._lock:
                    collector.shared_reads += 1
        if _TRACE_SHARED_SINK is not None:
            _TRACE_SHARED_SINK(block_id, category)

    def _tally_read(self, is_seq: bool, category: str) -> None:
        """Apply one pre-classified read (caller holds the lock)."""
        if is_seq:
            self.sequential.reads += 1
        else:
            self.random.reads += 1
        self._bump(category, 1 if is_seq else 0)

    def _tally_write(self, is_seq: bool, category: str) -> None:
        """Apply one pre-classified write (caller holds the lock)."""
        if is_seq:
            self.sequential.writes += 1
        else:
            self.random.writes += 1
        self._bump(category, 3 if is_seq else 2)

    def _classify(self, block_id: int) -> bool:
        """Classify the access and advance the head position."""
        is_seq = self._last_block is not None and block_id == self._last_block + 1
        self._last_block = block_id
        return is_seq

    def _bump(self, category: str, slot: int) -> None:
        counts = self.by_category.setdefault(category, [0, 0, 0, 0])
        counts[slot] += 1

    # -- Aggregate views ---------------------------------------------------

    @property
    def random_reads(self) -> int:
        return self.random.reads

    @property
    def sequential_reads(self) -> int:
        return self.sequential.reads

    @property
    def random_writes(self) -> int:
        return self.random.writes

    @property
    def sequential_writes(self) -> int:
        return self.sequential.writes

    @property
    def total_reads(self) -> int:
        return self.random.reads + self.sequential.reads

    @property
    def total_writes(self) -> int:
        return self.random.writes + self.sequential.writes

    @property
    def total_accesses(self) -> int:
        return self.random.total + self.sequential.total

    def category_reads(self, category: str) -> int:
        """Total reads (random + sequential) recorded under ``category``."""
        counts = self.by_category.get(category)
        if counts is None:
            return 0
        return counts[0] + counts[1]

    def category_random_reads(self, category: str) -> int:
        """Random reads recorded under ``category``."""
        counts = self.by_category.get(category)
        if counts is None:
            return 0
        return counts[0]

    # -- Lifecycle ---------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter (head position is also forgotten)."""
        with self._lock:
            self.random = AccessCounts()
            self.sequential = AccessCounts()
            self.by_category = {}
            self.objects_loaded = 0
            self.shared_reads = 0
            self._last_block = None

    def snapshot(self) -> "IOStats":
        """Return a frozen, internally consistent copy of the counters."""
        with self._lock:
            snap = IOStats(
                random=self.random.copy(),
                sequential=self.sequential.copy(),
                by_category={k: list(v) for k, v in self.by_category.items()},
                objects_loaded=self.objects_loaded,
                shared_reads=self.shared_reads,
            )
        return snap

    def diff(self, earlier: "IOStats") -> "IOStats":
        """Return the counter delta between ``self`` and an earlier snapshot."""
        categories: dict = {}
        for key, now in self.by_category.items():
            before = earlier.by_category.get(key, [0, 0, 0, 0])
            categories[key] = [n - b for n, b in zip(now, before)]
        for key, before in earlier.by_category.items():
            if key not in categories:
                categories[key] = [-b for b in before]
        return IOStats(
            random=AccessCounts(
                self.random.reads - earlier.random.reads,
                self.random.writes - earlier.random.writes,
            ),
            sequential=AccessCounts(
                self.sequential.reads - earlier.sequential.reads,
                self.sequential.writes - earlier.sequential.writes,
            ),
            by_category=categories,
            objects_loaded=self.objects_loaded - earlier.objects_loaded,
            shared_reads=self.shared_reads - earlier.shared_reads,
        )

    def merged_with(self, other: "IOStats") -> "IOStats":
        """Return the element-wise sum of two stats objects.

        Used to aggregate accesses across several devices (tree file,
        object file, postings file) into one per-query figure.
        """
        categories = {k: list(v) for k, v in self.by_category.items()}
        for key, counts in other.by_category.items():
            merged = categories.setdefault(key, [0, 0, 0, 0])
            for i, value in enumerate(counts):
                merged[i] += value
        return IOStats(
            random=AccessCounts(
                self.random.reads + other.random.reads,
                self.random.writes + other.random.writes,
            ),
            sequential=AccessCounts(
                self.sequential.reads + other.sequential.reads,
                self.sequential.writes + other.sequential.writes,
            ),
            by_category=categories,
            objects_loaded=self.objects_loaded + other.objects_loaded,
            shared_reads=self.shared_reads + other.shared_reads,
        )

    def summary(self) -> str:
        """One-line human-readable summary of the counters."""
        text = (
            f"random: {self.random.reads}r/{self.random.writes}w, "
            f"sequential: {self.sequential.reads}r/{self.sequential.writes}w, "
            f"objects: {self.objects_loaded}"
        )
        if self.shared_reads:
            text += f", shared: {self.shared_reads}"
        return text
