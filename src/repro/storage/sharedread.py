"""Shared-read sessions: one block read serves a whole batch of queries.

Under heavy traffic many concurrent queries descend the same hot upper
tree nodes and postings blocks.  The batch front-end in
:mod:`repro.serve` executes a *group* of queries under one
:class:`SharedReadSession`: the first query to touch a block pays the
real device read; every later read of the same block inside the session
is served from the session's byte cache and recorded as a
``shared_read`` on :class:`~repro.storage.iostats.IOStats` instead of a
random/sequential access.  Total device reads therefore grow
sublinearly with batch size while per-query attribution stays exact —
``io.total_reads + io.shared_reads`` is what the query would have cost
run alone, and the sum of per-query ``total_reads`` still equals the
device totals.

Activation mirrors :func:`repro.storage.iostats.collecting_io`: a
thread-local stack, so sessions are invisible to unrelated threads.  The
sharded engine's fan-out workers re-activate the dispatching thread's
session explicitly (the same pattern used for trace-span propagation),
so a batch shares reads across shard workers too.

Correctness notes:

* A session is only active while the serving layer holds the *read*
  side of its readers-writer lock, so the cached bytes cannot go stale
  mid-batch; :meth:`SharedReadSession.invalidate` exists as a defensive
  hook for devices that see a write anyway.
* Serving a hit does **not** advance the device's head position, so the
  random/sequential classification of the remaining real accesses is
  identical to a serial run — byte-identical answers *and* comparable
  counters.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

_sessions = threading.local()


def _session_stack() -> list["SharedReadSession"]:
    stack = getattr(_sessions, "stack", None)
    if stack is None:
        stack = _sessions.stack = []
    return stack


def current_session() -> Optional["SharedReadSession"]:
    """Return the innermost active session on this thread, if any."""
    stack = _session_stack()
    return stack[-1] if stack else None


@contextmanager
def activate_session(session: Optional["SharedReadSession"]) -> Iterator[None]:
    """Make ``session`` the current thread's active session.

    Accepts ``None`` as a no-op so call sites can unconditionally wrap
    work in ``with activate_session(maybe_session):`` (the shard fan-out
    workers do exactly this with the dispatcher's session).
    """
    if session is None:
        yield
        return
    stack = _session_stack()
    stack.append(session)
    try:
        yield
    finally:
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is session:
                del stack[i]
                break


@contextmanager
def shared_read_session() -> Iterator["SharedReadSession"]:
    """Create a fresh session and activate it on the current thread."""
    session = SharedReadSession()
    with activate_session(session):
        yield session


class SharedReadSession:
    """A per-batch read-through byte cache layered over every device.

    Keyed by ``(id(device), block_id)`` — block ids are only meaningful
    per device.  Thread-safe: shard fan-out workers of the same batch
    share one session concurrently.  The device identity key holds no
    reference cycle risk here because sessions are short-lived (one
    batch) and always referenced alongside the engine that owns the
    devices.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._blocks: dict[tuple[int, int], bytes] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, device: object, block_id: int) -> bytes | None:
        """Return cached bytes for ``block_id`` on ``device``, if present."""
        with self._lock:
            data = self._blocks.get((id(device), block_id))
            if data is not None:
                self.hits += 1
            return data

    def store(self, device: object, block_id: int, data: bytes) -> None:
        """Remember the bytes a real device read just returned."""
        with self._lock:
            self.misses += 1
            self._blocks[(id(device), block_id)] = data

    def invalidate(self, device: object, block_id: int) -> None:
        """Drop a cached block after a write (defensive; see module docs)."""
        with self._lock:
            self._blocks.pop((id(device), block_id), None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedReadSession(blocks={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
