"""LRU buffer pool (extension; disabled by default).

The paper evaluates cold-cache behaviour: every node access is a disk
access.  Real deployments put a buffer pool between the index and the
drive, so we provide one as a documented extension and measure its effect
in ``benchmarks/bench_ablation_cache.py``.

:class:`BufferPoolDevice` wraps any
:class:`~repro.storage.block.BlockDevice` and serves repeated reads of hot
blocks from memory.  Cache hits are recorded separately and do **not**
count as disk accesses; the wrapped device's stats continue to reflect
true disk traffic.  Writes are write-through (the paper's trees store
nodes eagerly), updating the cached copy.

The pool is safe under concurrent readers and writers, and cache hits are
not serialized behind in-flight disk reads: a short *pool lock* protects
the LRU map and the hit/miss counters (so ``hits + misses`` always equals
the number of ``read_block`` calls and a reader can never observe a torn
cache entry), while a separate *inner lock* serializes access to the
wrapped device only — its backends (notably
:class:`~repro.storage.block.FileBlockDevice` with its single shared file
handle) are not themselves safe under interleaved raw reads and writes.
A miss releases the pool lock while the block is fetched, re-checks the
cache before admitting, and skips admission entirely if any write landed
in the window, so concurrent hits proceed and stale data is never cached.
Writes hold only the inner lock across the disk write and take the pool
lock just for the in-memory epoch bump and cache refresh afterwards, so
hits are never serialized behind disk *write* latency either — the pool
lock is never held across any disk I/O.  The serving layer
(:mod:`repro.serve`) relies on this when many query threads share one
buffered device.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.storage.block import BlockDevice


class BufferPoolDevice(BlockDevice):
    """Write-through LRU cache in front of another block device.

    Args:
        inner: the device actually holding the blocks.
        capacity_blocks: maximum number of cached blocks (must be >= 1).
    """

    def __init__(self, inner: BlockDevice, capacity_blocks: int = 256) -> None:
        if capacity_blocks < 1:
            raise ValueError("buffer pool capacity must be at least 1 block")
        super().__init__(inner.block_size, inner.stats, name=f"lru({inner.name})")
        self.inner = inner
        self.capacity_blocks = capacity_blocks
        self._cache: OrderedDict[int, bytes] = OrderedDict()
        self._pool_lock = threading.RLock()
        self._inner_lock = threading.Lock()
        self._write_epoch = 0
        self.hits = 0
        self.misses = 0

    @property
    def num_blocks(self) -> int:
        return self.inner.num_blocks

    # BlockDevice template hooks are unused; reads/writes are overridden
    # wholesale so hits can bypass the accounting entirely.
    def _read_raw(self, block_id: int) -> bytes:  # pragma: no cover
        return self.inner._read_raw(block_id)

    def _write_raw(self, block_id: int, data: bytes) -> None:  # pragma: no cover
        self.inner._write_raw(block_id, data)

    def _grow_to(self, num_blocks: int) -> None:
        self.inner._grow_to(num_blocks)

    def read_block(self, block_id: int, category: str = "data") -> bytes:
        """Serve from cache when possible; otherwise read through.

        The pool lock is released while the inner device is read, so hits
        on other blocks proceed while a miss is on disk.
        """
        with self._pool_lock:
            cached = self._cache.get(block_id)
            if cached is not None:
                self._cache.move_to_end(block_id)
                self.hits += 1
                return cached
            self.misses += 1
            epoch = self._write_epoch
        with self._inner_lock:
            data = self.inner.read_block(block_id, category)
        with self._pool_lock:
            current = self._cache.get(block_id)
            if current is not None:
                # Another miss (or a write-through) populated the entry
                # while we were on disk; theirs is at least as fresh.
                self._cache.move_to_end(block_id)
                return current
            if self._write_epoch == epoch:
                self._admit(block_id, data)
            # else: a write landed during our disk read and its cached
            # copy was already evicted — admitting `data` could cache a
            # pre-write block image, so serve it uncached instead.
            return data

    def write_block(self, block_id: int, data: bytes, category: str = "data") -> None:
        """Write through to the inner device and refresh the cached copy.

        The pool lock is **not** held across the inner disk write —
        otherwise every concurrent cache hit would stall behind disk
        write latency, contradicting the module contract.  Instead the
        inner lock is taken first and the pool lock only wraps the
        (memory-speed) epoch bump and cache update after the disk write
        completes.  Because concurrent writers serialize on the inner
        lock and each updates the cache while still holding it, the
        cache update order always matches the disk write order; the
        epoch bump preserves the read path's stale-admission guard
        exactly as before (a miss that read the disk inside a write
        window is never admitted).
        """
        padded = data.ljust(self.block_size, b"\x00")
        with self._inner_lock:
            self.inner.write_block(block_id, data, category)
            with self._pool_lock:
                self._write_epoch += 1
                if block_id in self._cache:
                    self._cache[block_id] = padded
                    self._cache.move_to_end(block_id)
                else:
                    self._admit(block_id, padded)

    def _admit(self, block_id: int, data: bytes) -> None:
        self._cache[block_id] = data
        if len(self._cache) > self.capacity_blocks:
            self._cache.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Fraction of reads served from the cache (0.0 when no reads)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every cached block and reset hit/miss counters."""
        with self._pool_lock:
            self._cache.clear()
            self.hits = 0
            self.misses = 0
