"""Block devices: the lowest storage layer.

All index structures in this reproduction are *disk resident*, exactly as in
the paper's Section VI ("All index structures (R-Tree, IR2-Tree, MIR2-Tree
and inverted index) are disk-resident", block size 4 KB).  A
:class:`BlockDevice` models one file of fixed-size blocks and reports every
access to an :class:`~repro.storage.iostats.IOStats` instance.

Two interchangeable backends are provided:

* :class:`InMemoryBlockDevice` keeps blocks in a Python list of
  ``bytearray`` objects.  It is the default for tests and benchmarks: the
  evaluation metric is the *number* of block accesses, not the wall time of
  Python file I/O.
* :class:`FileBlockDevice` stores blocks in a real file on disk, proving
  the serialization layer round-trips through an actual filesystem.

Both expose single-block and *extent* (contiguous multi-block) operations.
An extent read costs one random access plus length-1 sequential accesses,
which is how the paper's multi-block IR2/MIR2 nodes are charged.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.errors import BlockOutOfRangeError, BlockSizeError
from repro.storage.iostats import IOStats
from repro.storage.sharedread import current_session

#: Disk block size used throughout the paper's experiments (4 KB).
DEFAULT_BLOCK_SIZE = 4096


class BlockDevice:
    """Abstract fixed-block storage with access accounting.

    Subclasses implement :meth:`_read_raw` and :meth:`_write_raw`; this base
    class handles bounds checks, zero-padding, extent operations, and the
    :class:`IOStats` bookkeeping shared by all backends.

    Args:
        block_size: size of each block in bytes.
        stats: accounting sink; a fresh one is created when omitted.
        name: label used in ``repr`` and error messages.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: IOStats | None = None,
        name: str = "device",
    ) -> None:
        if block_size <= 0:
            raise BlockSizeError(block_size, block_size)
        self.block_size = block_size
        self.stats = stats if stats is not None else IOStats()
        self.name = name

    # -- Backend hooks -----------------------------------------------------

    def _read_raw(self, block_id: int) -> bytes:
        raise NotImplementedError

    def _write_raw(self, block_id: int, data: bytes) -> None:
        raise NotImplementedError

    @property
    def num_blocks(self) -> int:
        """Number of blocks currently allocated on the device."""
        raise NotImplementedError

    # -- Single-block API ----------------------------------------------------

    def read_block(self, block_id: int, category: str = "data") -> bytes:
        """Read one block; counts one (random or sequential) access.

        When a :class:`~repro.storage.sharedread.SharedReadSession` is
        active on the calling thread, a block another query in the batch
        already fetched is served from the session instead: recorded as a
        ``shared_read`` (zero device I/O, head position unchanged).
        """
        self._check_range(block_id)
        session = current_session()
        if session is not None:
            cached = session.lookup(self, block_id)
            if cached is not None:
                self.stats.record_shared_read(block_id, category)
                return cached
        self.stats.record_read(block_id, category)
        data = self._read_raw(block_id)
        if session is not None:
            session.store(self, block_id, data)
        return data

    def write_block(self, block_id: int, data: bytes, category: str = "data") -> None:
        """Write one block (payload is zero-padded to the block size).

        Writing at ``num_blocks`` appends a new block; writing further past
        the end grows the device with zero blocks in between.
        """
        if len(data) > self.block_size:
            raise BlockSizeError(len(data), self.block_size)
        if block_id < 0:
            raise BlockOutOfRangeError(block_id, self.num_blocks)
        self._grow_to(block_id + 1)
        session = current_session()
        if session is not None:
            # Mutations are excluded for the lifetime of a batch by the
            # serving layer's RW lock; invalidate anyway so a session that
            # outlives a direct device write can never serve stale bytes.
            session.invalidate(self, block_id)
        self.stats.record_write(block_id, category)
        padded = data.ljust(self.block_size, b"\x00")
        self._write_raw(block_id, padded)

    # -- Extent API ----------------------------------------------------------

    def read_extent(self, start: int, count: int, category: str = "data") -> bytes:
        """Read ``count`` contiguous blocks starting at ``start``.

        Accounting: the first block is classified by head position (usually
        random); each following block is sequential by construction.
        """
        pieces = []
        for block_id in range(start, start + count):
            pieces.append(self.read_block(block_id, category))
        return b"".join(pieces)

    def write_extent(self, start: int, data: bytes, category: str = "data") -> int:
        """Write ``data`` over contiguous blocks starting at ``start``.

        Returns the number of blocks written.  The payload is chunked into
        block-size pieces; the final piece is zero-padded.
        """
        count = max(1, -(-len(data) // self.block_size))
        for i in range(count):
            chunk = data[i * self.block_size : (i + 1) * self.block_size]
            self.write_block(start + i, chunk, category)
        return count

    def blocks_needed(self, num_bytes: int) -> int:
        """Number of blocks required to hold ``num_bytes`` (at least 1)."""
        return max(1, -(-num_bytes // self.block_size))

    # -- Introspection ---------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Total allocated size of the device in bytes."""
        return self.num_blocks * self.block_size

    @property
    def size_mb(self) -> float:
        """Total allocated size of the device in megabytes."""
        return self.size_bytes / (1024 * 1024)

    def iter_blocks(self) -> Iterator[bytes]:
        """Yield every block's content without touching the access counters.

        Intended for offline size/debug inspection only; real algorithms
        must go through :meth:`read_block` so their I/O is counted.
        """
        for block_id in range(self.num_blocks):
            yield self._read_raw(block_id)

    def _check_range(self, block_id: int) -> None:
        if block_id < 0 or block_id >= self.num_blocks:
            raise BlockOutOfRangeError(block_id, self.num_blocks)

    def _grow_to(self, num_blocks: int) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"blocks={self.num_blocks}, block_size={self.block_size})"
        )


class InMemoryBlockDevice(BlockDevice):
    """Block device backed by an in-process list of bytearrays.

    The default backend: access *counting* is identical to the file-backed
    device while avoiding filesystem overhead in tests and benchmarks.
    """

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: IOStats | None = None,
        name: str = "memory",
    ) -> None:
        super().__init__(block_size, stats, name)
        self._blocks: list[bytearray] = []

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def _read_raw(self, block_id: int) -> bytes:
        return bytes(self._blocks[block_id])

    def _write_raw(self, block_id: int, data: bytes) -> None:
        self._blocks[block_id] = bytearray(data)

    def _grow_to(self, num_blocks: int) -> None:
        while len(self._blocks) < num_blocks:
            self._blocks.append(bytearray(self.block_size))


class FileBlockDevice(BlockDevice):
    """Block device backed by a real file.

    Useful to validate that every structure genuinely round-trips through
    persistent storage.  The file is opened lazily and kept open; use the
    device as a context manager or call :meth:`close` explicitly.
    """

    def __init__(
        self,
        path: str,
        block_size: int = DEFAULT_BLOCK_SIZE,
        stats: IOStats | None = None,
        create: bool = True,
    ) -> None:
        super().__init__(block_size, stats, name=os.path.basename(path))
        self.path = path
        mode = "r+b"
        if create and not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._file = open(path, mode)
        size = os.path.getsize(path)
        if size % block_size:
            # Trailing partial block: pad the file up to a block boundary.
            self._file.seek(0, os.SEEK_END)
            self._file.write(b"\x00" * (block_size - size % block_size))
            self._file.flush()
        self._num_blocks = os.path.getsize(path) // block_size

    @property
    def num_blocks(self) -> int:
        return self._num_blocks

    def _read_raw(self, block_id: int) -> bytes:
        self._file.seek(block_id * self.block_size)
        return self._file.read(self.block_size)

    def _write_raw(self, block_id: int, data: bytes) -> None:
        self._file.seek(block_id * self.block_size)
        self._file.write(data)

    def _grow_to(self, num_blocks: int) -> None:
        if num_blocks <= self._num_blocks:
            return
        self._file.seek(0, os.SEEK_END)
        self._file.write(b"\x00" * (num_blocks - self._num_blocks) * self.block_size)
        self._num_blocks = num_blocks

    def close(self) -> None:
        """Flush and close the backing file."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "FileBlockDevice":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
