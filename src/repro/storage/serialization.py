"""Byte-level encoding of tree nodes.

The paper derives the R-Tree fan-out from the block size: with 4 KB blocks
"this translates to 113 children per node in our implementation"
(Section VI), and the IR2-/MIR2-Trees *keep that same fan-out* while
"allocat[ing] additional disk block(s) to an IR2-Tree node when needed".

This module makes those numbers real rather than assumed.  A node image is:

====== ======================= =====================================
offset field                   encoding
====== ======================= =====================================
0      magic                   2 bytes ``b"RN"``
2      flags                   1 byte; bit 0 set for leaf nodes
3      level                   1 byte; 0 for leaves
4      entry count             uint16 little-endian
6      node id                 uint32 little-endian
10     signature length        uint16 (bytes per entry signature)
12     reserved                4 zero bytes
16     entries                 ``count`` fixed-size records
====== ======================= =====================================

Each entry record is ``child_ref`` (uint32: a node id for internal nodes,
an object pointer for leaves), the MBR as ``2*dims`` float64 values
(low coordinates then high coordinates), then ``sig_len`` signature bytes.

With ``dims=2`` and no signature an entry is 36 bytes, so a 4 KB block
holds ``(4096 - 16) // 36 == 113`` entries — exactly the paper's figure.
"""

from __future__ import annotations

import struct

from repro.errors import SerializationError

#: Fixed node header size in bytes.
HEADER_SIZE = 16

#: Header layout: magic, flags, level, count, node_id, sig_len, reserved.
_HEADER = struct.Struct("<2sBBHIH4x")

_MAGIC = b"RN"

#: Bytes of one MBR coordinate (float64).
_COORD_SIZE = 8

#: Bytes of the child reference (uint32).
_REF_SIZE = 4


def entry_size(dims: int, sig_len: int = 0) -> int:
    """Size in bytes of one node entry.

    Args:
        dims: spatial dimensionality.
        sig_len: per-entry signature length in bytes (0 for a plain R-Tree).
    """
    return _REF_SIZE + 2 * dims * _COORD_SIZE + sig_len


def node_capacity(block_size: int, dims: int = 2) -> int:
    """Maximum entries per node, derived from one block of a plain R-Tree.

    This is the paper's convention: the fan-out is fixed by the R-Tree
    entry size, and signature-bearing trees use the *same* fan-out while
    spilling into extra blocks.  For 4096-byte blocks and two dimensions
    this returns 113.
    """
    capacity = (block_size - HEADER_SIZE) // entry_size(dims, 0)
    if capacity < 2:
        raise SerializationError(
            f"block size {block_size} too small for an R-Tree node ({dims}D)"
        )
    return capacity


def node_byte_size(capacity: int, dims: int, sig_len: int) -> int:
    """On-disk size in bytes of a full node with the given shape."""
    return HEADER_SIZE + capacity * entry_size(dims, sig_len)


def blocks_per_node(block_size: int, capacity: int, dims: int, sig_len: int) -> int:
    """Contiguous blocks one node occupies (>= 1)."""
    return max(1, -(-node_byte_size(capacity, dims, sig_len) // block_size))


def encode_node(
    node_id: int,
    level: int,
    is_leaf: bool,
    dims: int,
    sig_len: int,
    entries: list[tuple[int, tuple[float, ...], bytes]],
) -> bytes:
    """Serialize a node to its byte image.

    Args:
        node_id: identifier of the node in the page store.
        level: tree level (0 = leaf).
        is_leaf: leaf flag; redundantly encoded and validated on decode.
        dims: spatial dimensionality.
        sig_len: per-entry signature length in bytes; every entry's
            signature must be exactly this long (possibly 0).
        entries: list of ``(child_ref, mbr_coords, signature_bytes)`` where
            ``mbr_coords`` is ``(lo_0..lo_{d-1}, hi_0..hi_{d-1})``.
    """
    if level < 0 or level > 255:
        raise SerializationError(f"level {level} out of range [0, 255]")
    if len(entries) > 0xFFFF:
        raise SerializationError(f"too many entries: {len(entries)}")
    flags = 1 if is_leaf else 0
    pieces = [_HEADER.pack(_MAGIC, flags, level, len(entries), node_id, sig_len)]
    coord_struct = struct.Struct(f"<{2 * dims}d")
    for child_ref, mbr, sig in entries:
        if len(mbr) != 2 * dims:
            raise SerializationError(
                f"MBR has {len(mbr)} coordinates, expected {2 * dims}"
            )
        if len(sig) != sig_len:
            raise SerializationError(
                f"signature is {len(sig)} bytes, expected {sig_len}"
            )
        if child_ref < 0 or child_ref > 0xFFFFFFFF:
            raise SerializationError(f"child reference {child_ref} out of uint32")
        pieces.append(struct.pack("<I", child_ref))
        pieces.append(coord_struct.pack(*mbr))
        pieces.append(sig)
    return b"".join(pieces)


def decode_node(
    data: bytes, dims: int
) -> tuple[int, int, bool, int, list[tuple[int, tuple[float, ...], bytes]]]:
    """Deserialize a node image.

    Returns:
        ``(node_id, level, is_leaf, sig_len, entries)`` with entries in the
        same shape accepted by :func:`encode_node`.

    Raises:
        SerializationError: on a bad magic value or truncated image.
    """
    if len(data) < HEADER_SIZE:
        raise SerializationError(f"node image truncated: {len(data)} bytes")
    magic, flags, level, count, node_id, sig_len = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise SerializationError(f"bad node magic {magic!r}")
    is_leaf = bool(flags & 1)
    rec_size = entry_size(dims, sig_len)
    needed = HEADER_SIZE + count * rec_size
    if len(data) < needed:
        raise SerializationError(
            f"node image truncated: need {needed} bytes, have {len(data)}"
        )
    coord_struct = struct.Struct(f"<{2 * dims}d")
    entries: list[tuple[int, tuple[float, ...], bytes]] = []
    offset = HEADER_SIZE
    for _ in range(count):
        (child_ref,) = struct.unpack_from("<I", data, offset)
        offset += _REF_SIZE
        mbr = coord_struct.unpack_from(data, offset)
        offset += coord_struct.size
        sig = bytes(data[offset : offset + sig_len])
        offset += sig_len
        entries.append((child_ref, mbr, sig))
    return node_id, level, is_leaf, sig_len, entries
