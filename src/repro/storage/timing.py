"""Simulated drive timing model.

The paper measured wall-clock execution times on a 74 GB, 10,000 RPM disk
drive (Section VI).  We cannot reproduce that hardware, but the paper itself
notes that execution time is "primarily proportional to the random access
numbers".  :class:`DriveModel` converts the block-access counts collected by
:class:`~repro.storage.iostats.IOStats` into a *simulated* execution time
using constants typical of a 10k RPM drive:

* a random access pays an average seek plus half a rotation
  (~4.5 ms + 3 ms) and the transfer of one 4 KB block,
* a sequential access pays only the transfer time of one block at the
  drive's sustained rate.

Because the same constants apply to every algorithm, relative comparisons
(who wins, by what factor, where the crossovers fall) are preserved even
though absolute milliseconds differ from the paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.iostats import IOStats

#: Average seek time of a 10,000 RPM enterprise drive, in milliseconds.
DEFAULT_SEEK_MS = 4.5

#: Average rotational latency = half a revolution at 10,000 RPM (3 ms).
DEFAULT_ROTATION_MS = 3.0

#: Sustained transfer rate in MB/s; one 4 KB block then takes ~0.065 ms.
DEFAULT_TRANSFER_MB_PER_S = 60.0


@dataclass(frozen=True)
class DriveModel:
    """Cost model mapping block accesses to simulated milliseconds.

    Attributes:
        seek_ms: average head-seek time charged to each random access.
        rotation_ms: average rotational latency charged to each random
            access.
        transfer_mb_per_s: sustained sequential transfer rate; charged to
            every access (random or sequential) for moving the block itself.
        block_size: block size in bytes used to derive per-block transfer
            time.
    """

    seek_ms: float = DEFAULT_SEEK_MS
    rotation_ms: float = DEFAULT_ROTATION_MS
    transfer_mb_per_s: float = DEFAULT_TRANSFER_MB_PER_S
    block_size: int = 4096

    @property
    def random_access_ms(self) -> float:
        """Cost of one random block access (seek + rotation + transfer)."""
        return self.seek_ms + self.rotation_ms + self.transfer_ms

    @property
    def sequential_access_ms(self) -> float:
        """Cost of one sequential block access (transfer only)."""
        return self.transfer_ms

    @property
    def transfer_ms(self) -> float:
        """Time to move one block at the sustained transfer rate."""
        return self.block_size / (self.transfer_mb_per_s * 1e6) * 1e3

    def simulated_ms(self, stats: IOStats) -> float:
        """Simulated execution time in milliseconds for ``stats``.

        Reads and writes are charged identically: the paper's disk-resident
        indexes write during maintenance and read during search, and a
        write's mechanical cost on a conventional drive matches a read's.
        """
        random_accesses = stats.random.total
        sequential_accesses = stats.sequential.total
        return (
            random_accesses * self.random_access_ms
            + sequential_accesses * self.sequential_access_ms
        )


#: Model used throughout the benchmarks unless overridden.
DEFAULT_DRIVE = DriveModel()
