"""Disk-resident R-Tree [Gut84] with pluggable per-entry signatures.

This is the paper's base structure (Section III / Figure 2) implemented
from scratch: ChooseLeaf descends by least MBR enlargement, overflow is
resolved by the quadratic split, AdjustTree propagates MBR changes upward,
and Delete condenses underfull nodes and re-inserts orphaned entries, all
through a :class:`~repro.storage.pagestore.PageStore` so every node touch
is a counted disk access.

The IR2-Tree (Section IV) is this same tree with signatures attached to
every entry.  Rather than duplicating the maintenance logic, the tree
accepts a :class:`SignatureScheme` that decides each level's signature
length and how a parent entry's signature summarizes its child subtree.
The plain R-Tree uses :class:`NoSignatures` (zero-length signatures); the
IR2-/MIR2-Trees plug in their schemes from :mod:`repro.core`.  This mirrors
the paper's observation that signature upkeep rides along the very same
AdjustTree / CondenseTree passes that maintain MBRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.errors import TreeInvariantError
from repro.spatial.geometry import Rect
from repro.spatial.split import QuadraticSplit, SplitStrategy
from repro.storage.pagestore import PageStore
from repro.storage.serialization import (
    blocks_per_node,
    decode_node,
    encode_node,
    node_capacity,
)

#: Default minimum fill factor (Guttman's m = 40% of capacity).
DEFAULT_MIN_FILL_RATIO = 0.4


@dataclass
class Entry:
    """One slot of a tree node.

    Attributes:
        child_ref: node id (internal nodes) or object pointer (leaves).
        rect: MBR of the child subtree or of the object.
        signature: superimposed-coding signature bytes summarizing the
            textual content below this entry (empty for plain R-Trees).
    """

    child_ref: int
    rect: Rect
    signature: bytes = b""


@dataclass
class Node:
    """One tree node: an id, a level (0 = leaf) and up to ``capacity`` entries."""

    node_id: int
    level: int
    entries: list[Entry] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True for level-0 nodes, whose entries reference objects."""
        return self.level == 0

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries."""
        return Rect.union_all(entry.rect for entry in self.entries)

    def or_signature(self) -> bytes:
        """Byte-wise OR (superimposition) of all entry signatures."""
        if not self.entries:
            return b""
        width = len(self.entries[0].signature)
        acc = bytearray(width)
        for entry in self.entries:
            sig = entry.signature
            for i in range(width):
                acc[i] |= sig[i]
        return bytes(acc)


class SignatureScheme:
    """How signatures are sized and propagated up the tree.

    The base implementation is the *no signature* scheme used by the plain
    R-Tree: zero-length signatures everywhere.
    """

    def length_for_level(self, level: int) -> int:
        """Signature length in bytes for entries stored at ``level``."""
        return 0

    def entry_signature_for_child(self, tree: "RTree", child: Node) -> bytes:
        """Signature for a parent entry referencing ``child``.

        Called during AdjustTree whenever a child changed; the returned
        bytes must have length ``length_for_level(child.level + 1)``.
        """
        return b""

    def object_signature(self, terms) -> bytes:
        """Leaf-entry signature for an object with the given distinct terms."""
        return b""

    def subtree_signature(self, child: Node, subtree_terms) -> bytes:
        """Bulk-load fast path: parent-entry signature for ``child`` given
        the (already known) union of distinct terms in its subtree.

        Must equal what :meth:`entry_signature_for_child` would compute by
        walking the stored subtree; the bulk loader uses it to avoid
        re-reading objects during construction.
        """
        return b""


#: Alias emphasizing intent at call sites building plain R-Trees.
NoSignatures = SignatureScheme


class RTree:
    """Height-balanced disk-resident R-Tree.

    Args:
        pages: page store holding the node images.
        dims: spatial dimensionality.
        capacity: maximum entries per node; derived from the block size
            when omitted (113 for 4 KB blocks in 2-D, as in the paper).
        min_fill_ratio: minimum node fill as a fraction of capacity.
        split_strategy: overflow splitting algorithm (quadratic by default,
            as in the paper).
        scheme: signature sizing/propagation policy (none by default).
    """

    def __init__(
        self,
        pages: PageStore,
        dims: int = 2,
        capacity: int | None = None,
        min_fill_ratio: float = DEFAULT_MIN_FILL_RATIO,
        split_strategy: SplitStrategy | None = None,
        scheme: SignatureScheme | None = None,
    ) -> None:
        self.pages = pages
        self.dims = dims
        if capacity is None:
            capacity = node_capacity(pages.device.block_size, dims)
        if capacity < 2:
            raise TreeInvariantError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self.min_fill = max(1, min(capacity // 2, int(capacity * min_fill_ratio)))
        self.split_strategy = split_strategy or QuadraticSplit()
        self.scheme = scheme or NoSignatures()
        self.height = 1
        self.size = 0  # number of object entries
        # Bulk loading may leave trailing nodes below min_fill (legal for
        # packed trees); validate() relaxes the fill check when set.
        self.bulk_loaded = False
        root = Node(pages.new_node_id(), level=0)
        self.root_id = root.node_id
        self.store_node(root)

    # ------------------------------------------------------------------ I/O --

    def load_node(self, node_id: int) -> Node:
        """The paper's ``LoadNode``: read and decode one node (counted I/O)."""
        image = self.pages.read(node_id)
        decoded_id, level, is_leaf, _sig_len, raw_entries = decode_node(
            image, self.dims
        )
        if decoded_id != node_id:
            raise TreeInvariantError(
                f"node id mismatch: asked {node_id}, image says {decoded_id}"
            )
        entries = [
            Entry(ref, Rect.from_coords(coords), sig)
            for ref, coords, sig in raw_entries
        ]
        return Node(node_id, level, entries)

    def store_node(self, node: Node) -> None:
        """The paper's ``StoreNode``: encode and write one node (counted I/O)."""
        sig_len = self.scheme.length_for_level(node.level)
        raw_entries = []
        for entry in node.entries:
            if len(entry.signature) != sig_len:
                raise TreeInvariantError(
                    f"entry signature is {len(entry.signature)} bytes at level "
                    f"{node.level}, scheme expects {sig_len}"
                )
            raw_entries.append((entry.child_ref, entry.rect.to_coords(), entry.signature))
        image = encode_node(
            node.node_id, node.level, node.is_leaf, self.dims, sig_len, raw_entries
        )
        # Reserve the full-capacity footprint so node updates are in
        # place and sizes match the paper's capacity-derived node blocks.
        self.pages.write(
            node.node_id, image, reserve_blocks=self.blocks_per_node_at(node.level)
        )

    # --------------------------------------------------------------- Insert --

    def insert(self, obj_ptr: int, rect: Rect, signature: bytes = b"") -> None:
        """Insert an object entry (the paper's Figure 5).

        Args:
            obj_ptr: object pointer stored in the leaf entry.
            rect: the object's MBR (degenerate for points).
            signature: the object's signature at the leaf level's length.
        """
        if rect.dims != self.dims:
            raise TreeInvariantError(
                f"rect dimensionality {rect.dims} != tree dimensionality {self.dims}"
            )
        self._insert_entry(Entry(obj_ptr, rect, signature), 0)
        self.size += 1

    def _insert_entry(self, entry: Entry, target_level: int) -> None:
        """Insert ``entry`` into a node at ``target_level`` and adjust upward."""
        path = self._choose_path(entry.rect, target_level)
        node, _ = path[-1]
        node.entries.append(entry)
        split_node = self._split_if_needed(node)
        self.store_node(node)
        if split_node is not None:
            self.store_node(split_node)
        self._adjust_tree(path, split_node)

    def _choose_path(self, rect: Rect, target_level: int) -> list[tuple[Node, int]]:
        """Descend by least enlargement to a node at ``target_level``.

        Returns the root-to-target path as ``(node, child_index)`` pairs;
        the child index is the slot taken at each step (-1 for the target).
        """
        node = self.load_node(self.root_id)
        if target_level > node.level:
            raise TreeInvariantError(
                f"cannot insert at level {target_level}: tree height {self.height}"
            )
        path: list[tuple[Node, int]] = []
        while node.level > target_level:
            index = self._choose_subtree(node, rect)
            path.append((node, index))
            node = self.load_node(node.entries[index].child_ref)
        path.append((node, -1))
        return path

    @staticmethod
    def _choose_subtree(node: Node, rect: Rect) -> int:
        """Guttman's ChooseLeaf criterion: least enlargement, then least area."""
        best_index = 0
        best_key = (float("inf"), float("inf"))
        for i, entry in enumerate(node.entries):
            key = (entry.rect.enlargement(rect), entry.rect.area())
            if key < best_key:
                best_key = key
                best_index = i
        return best_index

    def _split_if_needed(self, node: Node) -> Node | None:
        """Split an overfull node; return the new sibling (or None)."""
        if len(node.entries) <= self.capacity:
            return None
        group_a, group_b = self.split_strategy.split(node.entries, self.min_fill)
        node.entries = group_a
        sibling = Node(self.pages.new_node_id(), node.level, group_b)
        return sibling

    def _adjust_tree(
        self, path: list[tuple[Node, int]], split_node: Node | None
    ) -> None:
        """AdjustTree: refresh parent MBRs/signatures, propagate splits.

        As in Section IV, "the updating of the signatures throughout a node
        and its ancestors is being done at the same time the tree would
        normally update the MBR" — both ride the same upward pass.
        """
        child, _ = path[-1]
        for parent, child_index in reversed(path[:-1]):
            entry = parent.entries[child_index]
            entry.rect = child.mbr()
            entry.signature = self.scheme.entry_signature_for_child(self, child)
            if split_node is not None:
                parent.entries.append(
                    Entry(
                        split_node.node_id,
                        split_node.mbr(),
                        self.scheme.entry_signature_for_child(self, split_node),
                    )
                )
            split_node = self._split_if_needed(parent)
            self.store_node(parent)
            if split_node is not None:
                self.store_node(split_node)
            child = parent
        if split_node is not None:
            self._grow_root(child, split_node)

    def _grow_root(self, old_root: Node, sibling: Node) -> None:
        """Handle a root split: create a new root referencing both halves."""
        new_root = Node(self.pages.new_node_id(), old_root.level + 1)
        new_root.entries = [
            Entry(
                old_root.node_id,
                old_root.mbr(),
                self.scheme.entry_signature_for_child(self, old_root),
            ),
            Entry(
                sibling.node_id,
                sibling.mbr(),
                self.scheme.entry_signature_for_child(self, sibling),
            ),
        ]
        self.store_node(new_root)
        self.root_id = new_root.node_id
        self.height += 1

    # --------------------------------------------------------------- Delete --

    def delete(self, obj_ptr: int, rect: Rect) -> bool:
        """Delete an object entry (the paper's Figure 6).

        Finds the leaf containing the entry (FindLeaf), removes it, then
        condenses the tree: underfull nodes are dissolved and their entries
        re-inserted at their original level, and signatures/MBRs of the
        remaining ancestors are refreshed.

        Returns:
            True when the entry was found and removed, False otherwise
            (the paper's algorithm "stops" when no leaf contains T).
        """
        root = self.load_node(self.root_id)
        path = self._find_leaf(root, obj_ptr, rect, [])
        if path is None:
            return False
        leaf, _ = path[-1]
        leaf.entries = [
            e for e in leaf.entries if not (e.child_ref == obj_ptr and e.rect == rect)
        ]
        self._condense_tree(path)
        self.size -= 1
        return True

    def _find_leaf(
        self,
        node: Node,
        obj_ptr: int,
        rect: Rect,
        trail: list[tuple[Node, int]],
    ) -> list[tuple[Node, int]] | None:
        """FindLeaf: DFS over subtrees whose MBR contains ``rect``."""
        if node.is_leaf:
            for entry in node.entries:
                if entry.child_ref == obj_ptr and entry.rect == rect:
                    return trail + [(node, -1)]
            return None
        for index, entry in enumerate(node.entries):
            if entry.rect.contains_rect(rect):
                child = self.load_node(entry.child_ref)
                found = self._find_leaf(child, obj_ptr, rect, trail + [(node, index)])
                if found is not None:
                    return found
        return None

    def _condense_tree(self, path: list[tuple[Node, int]]) -> None:
        """CondenseTree with signature maintenance (Section IV).

        Underfull non-root nodes are removed and their entries queued for
        re-insertion at their original level; surviving ancestors get their
        MBR and signature refreshed exactly as AdjustTree would.
        """
        orphans: list[tuple[Entry, int]] = []  # (entry, level it lived at)
        node, _ = path[-1]
        for parent, child_index in reversed(path[:-1]):
            if len(node.entries) < self.min_fill:
                for entry in node.entries:
                    orphans.append((entry, node.level))
                del parent.entries[child_index]
                self.pages.delete(node.node_id)
            else:
                entry = parent.entries[child_index]
                entry.rect = node.mbr()
                entry.signature = self.scheme.entry_signature_for_child(self, node)
                self.store_node(node)
            node = parent
        # ``node`` is now the root.
        self.store_node(node)
        for entry, level in sorted(orphans, key=lambda pair: pair[1]):
            self._insert_entry(entry, level)
        self._shrink_root()

    def _shrink_root(self) -> None:
        """Collapse a non-leaf root with a single child."""
        root = self.load_node(self.root_id)
        while not root.is_leaf and len(root.entries) == 1:
            child_id = root.entries[0].child_ref
            self.pages.delete(root.node_id)
            self.root_id = child_id
            self.height -= 1
            root = self.load_node(child_id)

    # --------------------------------------------------------------- Search --

    def search(self, rect: Rect) -> Iterator[Entry]:
        """Range query: yield leaf entries whose MBR intersects ``rect``."""
        stack = [self.root_id]
        while stack:
            node = self.load_node(stack.pop())
            for entry in node.entries:
                if entry.rect.intersects(rect):
                    if node.is_leaf:
                        yield entry
                    else:
                        stack.append(entry.child_ref)

    # ---------------------------------------------------------- Introspection --

    def iter_nodes(self) -> Iterator[Node]:
        """Yield every node (uncounted reads; for validation and stats)."""
        stack = [self.root_id]
        while stack:
            node = self._load_uncounted(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(entry.child_ref for entry in node.entries)

    def iter_leaf_entries(self) -> Iterator[Entry]:
        """Yield every object entry in the tree (uncounted reads)."""
        for node in self.iter_nodes():
            if node.is_leaf:
                yield from node.entries

    def _load_uncounted(self, node_id: int) -> Node:
        """Load a node without charging I/O (validation/statistics only)."""
        stats = self.pages.device.stats
        snapshot = (
            stats.random.copy(),
            stats.sequential.copy(),
            {k: list(v) for k, v in stats.by_category.items()},
            stats._last_block,
        )
        node = self.load_node(node_id)
        stats.random, stats.sequential, stats.by_category, stats._last_block = snapshot
        return node

    def node_count(self) -> int:
        """Number of nodes currently in the tree."""
        return sum(1 for _ in self.iter_nodes())

    @property
    def size_bytes(self) -> int:
        """On-disk footprint of the tree in bytes."""
        return self.pages.size_bytes

    def blocks_per_node_at(self, level: int) -> int:
        """Blocks a (full) node at ``level`` occupies under the scheme."""
        return blocks_per_node(
            self.pages.device.block_size,
            self.capacity,
            self.dims,
            self.scheme.length_for_level(level),
        )

    def validate(self, resolve_signature: Callable[[Entry], bytes] | None = None) -> None:
        """Check structural invariants; raise :class:`TreeInvariantError`.

        Verifies: uniform leaf depth, entry counts within [min_fill,
        capacity] (root exempt from the minimum), parent MBR containment,
        and — when the scheme uses signatures — that each parent entry's
        signature covers (bitwise includes) its child's superimposition.
        """
        root = self._load_uncounted(self.root_id)
        expected_level = self.height - 1
        if root.level != expected_level:
            raise TreeInvariantError(
                f"root level {root.level} != height-1 ({expected_level})"
            )
        count = self._validate_node(root, is_root=True)
        if count != self.size:
            raise TreeInvariantError(f"tree says size={self.size}, found {count}")

    def _validate_node(self, node: Node, is_root: bool) -> int:
        if len(node.entries) > self.capacity:
            raise TreeInvariantError(
                f"node {node.node_id} overfull: {len(node.entries)}"
            )
        min_allowed = 1 if self.bulk_loaded else self.min_fill
        if not is_root and len(node.entries) < min_allowed:
            raise TreeInvariantError(
                f"node {node.node_id} underfull: {len(node.entries)}"
            )
        if node.is_leaf:
            return len(node.entries)
        total = 0
        for entry in node.entries:
            child = self._load_uncounted(entry.child_ref)
            if child.level != node.level - 1:
                raise TreeInvariantError(
                    f"child {child.node_id} level {child.level} under node "
                    f"level {node.level}"
                )
            if not entry.rect.contains_rect(child.mbr()):
                raise TreeInvariantError(
                    f"entry MBR does not contain child {child.node_id} MBR"
                )
            if entry.rect != child.mbr():
                # Not fatal (rect may be slack after deletes in some R-Tree
                # variants) but in this implementation MBRs are kept tight.
                raise TreeInvariantError(
                    f"entry MBR for child {child.node_id} is not tight"
                )
            total += self._validate_node(child, is_root=False)
        return total


def build_from_layout(
    pages: PageStore,
    layout,
    dims: int = 2,
    capacity: int = 4,
    scheme: SignatureScheme | None = None,
    tree: "RTree | None" = None,
) -> tuple[RTree, dict[str, int]]:
    """Construct a tree with an explicit, paper-given node structure.

    Used to reproduce the exact R-Tree of the paper's Figure 2 so the
    worked Examples 1 and 3 can be asserted trace-for-trace.

    Args:
        pages: destination page store.
        layout: nested structure.  A leaf is
            ``(name, [(obj_ptr, rect, signature_bytes), ...])``; an internal
            node is ``(name, [child_layout, ...])``.
        dims: spatial dimensionality.
        capacity: node capacity for the constructed tree.
        scheme: signature scheme used to compute parent-entry signatures.
        tree: optional pre-constructed *empty* tree (e.g. an
            :class:`~repro.core.ir2tree.IR2Tree`) whose structure should be
            replaced by the layout; built fresh over ``pages`` when omitted.

    Returns:
        ``(tree, name_to_node_id)`` so tests can refer to nodes by the
        paper's names (N1, N2, ...).
    """
    if tree is None:
        tree = RTree(pages, dims=dims, capacity=capacity, scheme=scheme)
    pages.delete(tree.root_id)  # discard the empty bootstrap root
    names: dict[str, int] = {}

    def build(spec) -> Node:
        name, children = spec
        if children and isinstance(children[0], tuple) and isinstance(
            children[0][0], str
        ):
            child_nodes = [build(child) for child in children]
            level = child_nodes[0].level + 1
            node = Node(pages.new_node_id(), level)
            for child in child_nodes:
                node.entries.append(
                    Entry(
                        child.node_id,
                        child.mbr(),
                        tree.scheme.entry_signature_for_child(tree, child),
                    )
                )
        else:
            node = Node(pages.new_node_id(), 0)
            for obj_ptr, rect, sig in children:
                node.entries.append(Entry(obj_ptr, rect, sig))
        tree.store_node(node)
        names[name] = node.node_id
        return node

    root = build(layout)
    tree.root_id = root.node_id
    tree.height = root.level + 1
    tree.size = sum(1 for _ in tree.iter_leaf_entries())
    return tree, names
