"""R-Tree node splitting strategies.

The paper uses "the standard Quadratic Split technique [Gut84]"
(Section IV).  :class:`QuadraticSplit` implements it exactly: PickSeeds
chooses the pair of entries whose combined rectangle wastes the most area,
PickNext repeatedly assigns the entry with the greatest preference for one
group, and a group that must absorb all remaining entries to reach the
minimum fill does so.

:class:`LinearSplit` (Guttman's cheaper O(n) variant) is included as an
ablation axis — ``benchmarks/bench_ablation_split.py`` measures its effect
on search I/O.
"""

from __future__ import annotations

from typing import Protocol, Sequence, TypeVar

from repro.errors import TreeInvariantError
from repro.spatial.geometry import Rect


class HasRect(Protocol):
    """Anything with a bounding rectangle — node entries in practice."""

    rect: Rect


E = TypeVar("E", bound=HasRect)


class SplitStrategy:
    """Interface: partition an overfull entry list into two groups."""

    #: Short identifier used in benchmark labels.
    name = "abstract"

    def split(self, entries: Sequence[E], min_fill: int) -> tuple[list[E], list[E]]:
        """Partition ``entries`` into two non-empty groups.

        Args:
            entries: the ``capacity + 1`` entries of an overfull node.
            min_fill: minimum number of entries each group must receive.

        Returns:
            Two entry lists, each of size >= ``min_fill``.
        """
        raise NotImplementedError


class QuadraticSplit(SplitStrategy):
    """Guttman's quadratic-cost split [Gut84], as used by the paper."""

    name = "quadratic"

    def split(self, entries: Sequence[E], min_fill: int) -> tuple[list[E], list[E]]:
        _check_split_args(entries, min_fill)
        remaining = list(entries)
        seed_a, seed_b = self._pick_seeds(remaining)
        # Pop the later index first so the earlier one stays valid.
        first, second = sorted((seed_a, seed_b), reverse=True)
        group_a = [remaining.pop(first)]
        group_b = [remaining.pop(second)]
        rect_a = group_a[0].rect
        rect_b = group_b[0].rect

        while remaining:
            # If one group must take everything left to reach min_fill, do so.
            if len(group_a) + len(remaining) == min_fill:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) == min_fill:
                group_b.extend(remaining)
                break
            index, prefer_a = self._pick_next(remaining, rect_a, rect_b)
            entry = remaining.pop(index)
            if prefer_a:
                group_a.append(entry)
                rect_a = rect_a.union(entry.rect)
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry.rect)
        return group_a, group_b

    @staticmethod
    def _pick_seeds(entries: Sequence[E]) -> tuple[int, int]:
        """PickSeeds: the pair wasting the most area when grouped."""
        worst = -float("inf")
        best_pair = (0, 1)
        for i in range(len(entries)):
            rect_i = entries[i].rect
            area_i = rect_i.area()
            for j in range(i + 1, len(entries)):
                rect_j = entries[j].rect
                waste = rect_i.union(rect_j).area() - area_i - rect_j.area()
                if waste > worst:
                    worst = waste
                    best_pair = (i, j)
        return best_pair

    @staticmethod
    def _pick_next(remaining: Sequence[E], rect_a: Rect, rect_b: Rect) -> tuple[int, bool]:
        """PickNext: entry with max |d_a - d_b|; ties break by smaller growth,
        then smaller area, then smaller group is preferred by the caller via
        ``prefer_a``."""
        best_index = 0
        best_diff = -1.0
        best_prefer_a = True
        for i, entry in enumerate(remaining):
            d_a = rect_a.enlargement(entry.rect)
            d_b = rect_b.enlargement(entry.rect)
            diff = abs(d_a - d_b)
            if diff > best_diff:
                best_diff = diff
                best_index = i
                if d_a != d_b:
                    best_prefer_a = d_a < d_b
                elif rect_a.area() != rect_b.area():
                    best_prefer_a = rect_a.area() < rect_b.area()
                else:
                    best_prefer_a = True
        return best_index, best_prefer_a


class LinearSplit(SplitStrategy):
    """Guttman's linear-cost split [Gut84] (ablation alternative).

    Seeds are the pair with the greatest normalized separation along any
    dimension; remaining entries go to the group needing less enlargement.
    """

    name = "linear"

    def split(self, entries: Sequence[E], min_fill: int) -> tuple[list[E], list[E]]:
        _check_split_args(entries, min_fill)
        remaining = list(entries)
        seed_a, seed_b = self._pick_seeds(remaining)
        first, second = sorted((seed_a, seed_b), reverse=True)
        group_a = [remaining.pop(first)]
        group_b = [remaining.pop(second)]
        rect_a = group_a[0].rect
        rect_b = group_b[0].rect
        for entry in remaining:
            d_a = rect_a.enlargement(entry.rect)
            d_b = rect_b.enlargement(entry.rect)
            take_a = d_a < d_b or (d_a == d_b and len(group_a) <= len(group_b))
            if take_a:
                group_a.append(entry)
                rect_a = rect_a.union(entry.rect)
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry.rect)
        # Rebalance if a group fell below min_fill (possible in this simple
        # assignment loop): move closest entries from the bigger group.
        self._rebalance(group_a, group_b, min_fill)
        self._rebalance(group_b, group_a, min_fill)
        return group_a, group_b

    @staticmethod
    def _pick_seeds(entries: Sequence[E]) -> tuple[int, int]:
        dims = entries[0].rect.dims
        best_pair = (0, 1 if len(entries) > 1 else 0)
        best_separation = -float("inf")
        for d in range(dims):
            highest_lo = max(range(len(entries)), key=lambda i: entries[i].rect.lo[d])
            lowest_hi = min(range(len(entries)), key=lambda i: entries[i].rect.hi[d])
            if highest_lo == lowest_hi:
                continue
            width = max(e.rect.hi[d] for e in entries) - min(
                e.rect.lo[d] for e in entries
            )
            if width <= 0:
                continue
            separation = (
                entries[highest_lo].rect.lo[d] - entries[lowest_hi].rect.hi[d]
            ) / width
            if separation > best_separation:
                best_separation = separation
                best_pair = (lowest_hi, highest_lo)
        if best_pair[0] == best_pair[1]:
            best_pair = (0, 1)
        return best_pair

    @staticmethod
    def _rebalance(short: list[E], long: list[E], min_fill: int) -> None:
        while len(short) < min_fill:
            short.append(long.pop())


def _check_split_args(entries: Sequence, min_fill: int) -> None:
    if len(entries) < 2:
        raise TreeInvariantError(f"cannot split {len(entries)} entries")
    if min_fill < 1 or 2 * min_fill > len(entries):
        raise TreeInvariantError(
            f"min_fill {min_fill} infeasible for {len(entries)} entries"
        )
