"""Nearest-neighbor search over R-Trees.

:func:`incremental_nearest` is the Incremental Nearest Neighbor algorithm
of Hjaltason and Samet [HS99] shown in the paper's Figure 3: a priority
queue seeded with the root yields nodes and objects in order of MINDIST,
reporting each object pointer exactly when it is proven to be the next
nearest.  The paper's ``IR2NearestNeighbor`` (Figure 8) is the same loop
with a signature test applied to every entry before it enters the queue;
that test is exposed here as the optional ``entry_filter`` so one
implementation serves both the plain R-Tree baseline and the IR2-Tree.

Nodes are enqueued *by pointer* and loaded only when dequeued.  (The
paper's Figure 3 writes ``Enqueue(LoadNode(ptr), dist)``, but loading at
enqueue time would read children that are never expanded; [HS99]'s actual
algorithm — and the paper's claim of accessing "a minimal number of R-Tree
nodes" — defer the load, as we do.)

:func:`k_nearest` is the classic branch-and-bound k-NN of Roussopoulos et
al. [RKV95], provided as an independent oracle for cross-checking tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.obs import trace as qtrace
from repro.spatial.geometry import point_distance, target_min_distance
from repro.spatial.rtree import Entry, Node, RTree

#: Queue element kinds, ordered so objects pop before nodes at equal
#: distance (an object at distance d is a confirmed result; a node at the
#: same distance can only yield objects at >= d).
_KIND_OBJECT = 0
_KIND_NODE = 1

EntryFilter = Callable[[Entry, Node], bool]


@dataclass
class NNTrace:
    """Optional execution trace for the incremental NN loop.

    Records ``("enqueue"|"dequeue"|"prune", kind, ref, distance)`` tuples
    where ``kind`` is ``"node"`` or ``"object"`` and ``ref`` is the node id
    or object pointer.  Used by the tests reproducing the paper's worked
    Examples 1 and 3 step for step.
    """

    events: list[tuple[str, str, int, float]] = field(default_factory=list)

    def record(self, op: str, kind: str, ref: int, distance: float) -> None:
        self.events.append((op, kind, ref, distance))

    def of_kind(self, op: str) -> list[tuple[str, int, float]]:
        """All events of one operation, as ``(kind, ref, distance)``."""
        return [(k, r, d) for o, k, r, d in self.events if o == op]


def incremental_nearest(
    tree: RTree,
    point: Sequence[float],
    entry_filter: EntryFilter | None = None,
    trace: NNTrace | None = None,
) -> Iterator[tuple[int, float]]:
    """Yield ``(obj_ptr, distance)`` pairs in non-decreasing distance.

    Args:
        tree: the R-Tree (or IR2-/MIR2-Tree) to search.
        point: query target — a point ``Q.p`` or a :class:`Rect` query
            area (the paper: "an area could be used instead").
        entry_filter: predicate applied to every entry of a dequeued node;
            entries failing it are dropped from the search (the paper's
            "if s matches w" signature check).  ``None`` disables filtering.
        trace: optional :class:`NNTrace` collecting the queue activity.

    The generator is *incremental*: callers pull exactly as many neighbors
    as they need, and tree I/O happens lazily as the queue is consumed.
    """
    counter = 0
    heap: list[tuple[float, int, int, int]] = []  # (dist, kind, seq, ref)

    def push(distance: float, kind: int, ref: int) -> None:
        nonlocal counter
        heapq.heappush(heap, (distance, kind, counter, ref))
        counter += 1
        if trace is not None:
            trace.record(
                "enqueue", "node" if kind == _KIND_NODE else "object", ref, distance
            )

    push(0.0, _KIND_NODE, tree.root_id)
    while heap:
        distance, kind, _, ref = heapq.heappop(heap)
        if trace is not None:
            trace.record(
                "dequeue", "node" if kind == _KIND_NODE else "object", ref, distance
            )
        if kind == _KIND_OBJECT:
            yield ref, distance
            continue
        node = tree.load_node(ref)
        span = qtrace.current_span()
        if span is not None:
            span.event(
                qtrace.EVT_NODE_READ,
                node=ref,
                level=node.level,
                entries=len(node.entries),
                distance=distance,
            )
        child_kind = _KIND_OBJECT if node.is_leaf else _KIND_NODE
        for entry in node.entries:
            if entry_filter is not None and not entry_filter(entry, node):
                if trace is not None:
                    trace.record(
                        "prune",
                        "object" if node.is_leaf else "node",
                        entry.child_ref,
                        target_min_distance(entry.rect, point),
                    )
                if span is not None:
                    span.event(
                        qtrace.EVT_SIG_PRUNE,
                        level=node.level,
                        entry=entry.child_ref,
                        kind="object" if node.is_leaf else "node",
                    )
                continue
            push(target_min_distance(entry.rect, point), child_kind, entry.child_ref)


def k_nearest(
    tree: RTree, point: Sequence[float], k: int
) -> list[tuple[int, float]]:
    """Branch-and-bound k-NN [RKV95]: the k closest object pointers.

    Maintains the current k-th best distance and prunes subtrees whose
    MINDIST exceeds it.  Results are sorted by distance.  This duplicates
    what ``itertools.islice(incremental_nearest(...), k)`` returns and
    exists as an independently-implemented oracle for property tests.
    """
    if k <= 0:
        return []
    best: list[tuple[float, int]] = []  # max-heap via negated distance

    def visit(node: Node) -> None:
        if node.is_leaf:
            for entry in node.entries:
                distance = entry.rect.min_distance(point)
                if len(best) < k:
                    heapq.heappush(best, (-distance, entry.child_ref))
                elif distance < -best[0][0]:
                    heapq.heapreplace(best, (-distance, entry.child_ref))
            return
        children = sorted(
            node.entries, key=lambda e: e.rect.min_distance(point)
        )
        for entry in children:
            distance = entry.rect.min_distance(point)
            if len(best) >= k and distance > -best[0][0]:
                break  # children are sorted; the rest are farther
            visit(tree.load_node(entry.child_ref))

    visit(tree.load_node(tree.root_id))
    ordered = sorted((-neg, ref) for neg, ref in best)
    return [(ref, distance) for distance, ref in ordered]


def brute_force_nearest(
    objects: Sequence, point: Sequence[float]
) -> list[tuple[int, float]]:
    """Sort objects by distance to ``point`` (test oracle, no index).

    Args:
        objects: sequence of :class:`~repro.model.SpatialObject`.
        point: query point.

    Returns:
        ``[(oid, distance), ...]`` sorted by distance then oid.
    """
    ranked = sorted(
        (point_distance(obj.point, point), obj.oid) for obj in objects
    )
    return [(oid, distance) for distance, oid in ranked]
