"""Spatial substrate: geometry, R-Tree [Gut84], incremental NN [HS99]."""

from repro.spatial.geometry import (
    Point,
    Rect,
    point_distance,
    target_min_distance,
    target_point_distance,
)
from repro.spatial.nearest import (
    NNTrace,
    brute_force_nearest,
    incremental_nearest,
    k_nearest,
)
from repro.spatial.rtree import (
    DEFAULT_MIN_FILL_RATIO,
    Entry,
    Node,
    NoSignatures,
    RTree,
    SignatureScheme,
    build_from_layout,
)
from repro.spatial.split import LinearSplit, QuadraticSplit, SplitStrategy

__all__ = [
    "DEFAULT_MIN_FILL_RATIO",
    "Entry",
    "LinearSplit",
    "NNTrace",
    "Node",
    "NoSignatures",
    "Point",
    "QuadraticSplit",
    "RTree",
    "Rect",
    "SignatureScheme",
    "SplitStrategy",
    "brute_force_nearest",
    "build_from_layout",
    "incremental_nearest",
    "k_nearest",
    "point_distance",
    "target_min_distance",
    "target_point_distance",
]
