"""n-dimensional points and minimum bounding rectangles (MBRs).

The paper's running examples are two-dimensional, but Section I notes the
method "can be applied to arbitrarily-shaped and multi-dimensional
objects"; everything here is written for arbitrary dimensionality.

Distances follow the paper's convention: plain Euclidean distance between
coordinate tuples (the hotel example treats latitude/longitude as plain
numbers — e.g. ``distance(H4, [30.5, 100.0]) = 18.5``), and the classic
``MINDIST`` lower bound between a point and an MBR used by every R-Tree
nearest-neighbor algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

Point = tuple[float, ...]


def point_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two points of equal dimensionality."""
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


@dataclass(frozen=True)
class Rect:
    """Axis-aligned minimum bounding rectangle in n dimensions.

    Represented by its low corner and high corner (the paper's Figure 2
    stores an MBR as "its southwest and its northeast points").

    Attributes:
        lo: per-dimension minimum coordinates.
        hi: per-dimension maximum coordinates (``hi[i] >= lo[i]``).
    """

    lo: Point
    hi: Point

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(
                f"corner dimensionality mismatch: {len(self.lo)} vs {len(self.hi)}"
            )
        if any(l > h for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"inverted rectangle: lo={self.lo}, hi={self.hi}")

    # -- Constructors --------------------------------------------------------

    @staticmethod
    def from_point(point: Sequence[float]) -> "Rect":
        """Degenerate rectangle covering a single point."""
        p = tuple(float(c) for c in point)
        return Rect(p, p)

    @staticmethod
    def from_coords(coords: Sequence[float]) -> "Rect":
        """Inverse of :meth:`to_coords` (lo coordinates then hi)."""
        if len(coords) % 2:
            raise ValueError(f"odd coordinate count: {len(coords)}")
        dims = len(coords) // 2
        return Rect(tuple(coords[:dims]), tuple(coords[dims:]))

    @staticmethod
    def union_all(rects: Iterable["Rect"]) -> "Rect":
        """Smallest rectangle enclosing every rectangle in ``rects``."""
        iterator = iter(rects)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("union of zero rectangles") from None
        lo = list(first.lo)
        hi = list(first.hi)
        for rect in iterator:
            for i in range(len(lo)):
                if rect.lo[i] < lo[i]:
                    lo[i] = rect.lo[i]
                if rect.hi[i] > hi[i]:
                    hi[i] = rect.hi[i]
        return Rect(tuple(lo), tuple(hi))

    # -- Basic properties -------------------------------------------------------

    @property
    def dims(self) -> int:
        """Dimensionality of the rectangle."""
        return len(self.lo)

    @property
    def center(self) -> Point:
        """Geometric center of the rectangle."""
        return tuple((l + h) / 2.0 for l, h in zip(self.lo, self.hi))

    def area(self) -> float:
        """Product of side lengths (0 for degenerate rectangles)."""
        result = 1.0
        for l, h in zip(self.lo, self.hi):
            result *= h - l
        return result

    def margin(self) -> float:
        """Sum of side lengths (the R*-Tree 'margin' metric)."""
        return sum(h - l for l, h in zip(self.lo, self.hi))

    def to_coords(self) -> tuple[float, ...]:
        """Flatten to ``(lo_0..lo_{d-1}, hi_0..hi_{d-1})`` for serialization."""
        return self.lo + self.hi

    # -- Relations ---------------------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle covering both ``self`` and ``other``."""
        return Rect(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the rectangles share at least a boundary point."""
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        return all(l <= c <= h for l, c, h in zip(self.lo, point, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside ``self``."""
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to also cover ``other``.

        This is Guttman's ChooseLeaf criterion: the child whose MBR needs
        the least enlargement receives the new entry.
        """
        return self.union(other).area() - self.area()

    # -- Distances ----------------------------------------------------------------

    def min_distance(self, point: Sequence[float]) -> float:
        """MINDIST: smallest Euclidean distance from ``point`` to this MBR.

        Zero when the point lies inside.  This is the ``Dist(p, MBR)`` of
        the paper's Figure 3 and the priority used by incremental NN.
        """
        total = 0.0
        for l, h, c in zip(self.lo, self.hi, point):
            if c < l:
                total += (l - c) ** 2
            elif c > h:
                total += (c - h) ** 2
        return math.sqrt(total)

    def min_distance_rect(self, other: "Rect") -> float:
        """Smallest Euclidean distance between two MBRs (0 if they touch).

        Used by *area* queries: the paper's NN algorithm notes "an area
        could be used instead" of the query point (Section III), in which
        case ``Dist`` becomes rectangle-to-rectangle MINDIST.
        """
        total = 0.0
        for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi):
            if oh < sl:
                total += (sl - oh) ** 2
            elif ol > sh:
                total += (ol - sh) ** 2
        return math.sqrt(total)

    def max_distance(self, point: Sequence[float]) -> float:
        """MAXDIST: largest distance from ``point`` to any point of the MBR."""
        total = 0.0
        for l, h, c in zip(self.lo, self.hi, point):
            total += max(abs(c - l), abs(c - h)) ** 2
        return math.sqrt(total)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lo = ", ".join(f"{c:g}" for c in self.lo)
        hi = ", ".join(f"{c:g}" for c in self.hi)
        return f"Rect([{lo}] - [{hi}])"


#: A query target: a point (coordinate sequence) or an area (Rect).
QueryTarget = "Rect | Sequence[float]"


def target_min_distance(rect: Rect, target) -> float:
    """MINDIST from an MBR to a query target (point or area)."""
    if isinstance(target, Rect):
        return rect.min_distance_rect(target)
    return rect.min_distance(target)


def target_point_distance(point: Sequence[float], target) -> float:
    """Distance from an object's point to a query target (point or area)."""
    if isinstance(target, Rect):
        return target.min_distance(point)
    return point_distance(point, target)
