"""Observability layer: metrics, latency histograms, slow-query log.

The serving, sharding, and storage layers all record into one
:class:`MetricsRegistry`:

* :class:`repro.serve.QueryService` — per-stage latency histograms
  (queue wait, lock wait, search, merge) and cache / degradation /
  retry counters;
* :class:`repro.shard.ShardedEngine` — per-shard fan-out counters
  (pruned, failed, retried, results offered);
* the storage devices — I/O read/write mixes and buffer-pool hit rates,
  published at snapshot time by :func:`export_engine`.

Surface it with ``repro metrics <engine-dir>`` (probe an engine and
print the snapshot), ``repro serve --serve-metrics out.json`` (dump
after a workload), or programmatically::

    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    with QueryService(engine, metrics=registry) as service:
        service.run_batch(queries)
        print(registry.snapshot()["histograms"]["service.search_ms"]["p95"])

:class:`SlowQueryLog` rides along in the service: the worst trace spans
above a configurable latency threshold, so every dump names concrete
offender queries next to the aggregate distributions.

:mod:`repro.obs.trace` adds hierarchical query tracing on top of the
flat counters: span trees with parent→child propagation from the service
through the shard fan-out into the engine phases and block-level I/O
events, sampled by :class:`QueryTracer`, exported as Chrome trace-event
JSON or the ``repro trace`` text report (:mod:`repro.obs.tracereport`).
See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    export_device,
    export_engine,
    export_iostats,
    metric_token,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    QueryTracer,
    Span,
    Trace,
    chrome_trace_events,
    dump_chrome_trace,
    trace_query,
    validate_chrome_events,
)
from repro.obs.tracereport import render_trace, render_traces

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "QueryTracer",
    "SlowQueryLog",
    "Span",
    "Trace",
    "chrome_trace_events",
    "dump_chrome_trace",
    "export_device",
    "export_engine",
    "export_iostats",
    "merge_snapshots",
    "metric_token",
    "render_trace",
    "render_traces",
    "trace_query",
    "validate_chrome_events",
]
