"""Observability layer: metrics, latency histograms, slow-query log.

The serving, sharding, and storage layers all record into one
:class:`MetricsRegistry`:

* :class:`repro.serve.QueryService` — per-stage latency histograms
  (queue wait, lock wait, search, merge) and cache / degradation /
  retry counters;
* :class:`repro.shard.ShardedEngine` — per-shard fan-out counters
  (pruned, failed, retried, results offered);
* the storage devices — I/O read/write mixes and buffer-pool hit rates,
  published at snapshot time by :func:`export_engine`.

Surface it with ``repro metrics <engine-dir>`` (probe an engine and
print the snapshot), ``repro serve --serve-metrics out.json`` (dump
after a workload), or programmatically::

    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    with QueryService(engine, metrics=registry) as service:
        service.run_batch(queries)
        print(registry.snapshot()["histograms"]["service.search_ms"]["p95"])

:class:`SlowQueryLog` rides along in the service: the worst trace spans
above a configurable latency threshold, so every dump names concrete
offender queries next to the aggregate distributions.

:mod:`repro.obs.trace` adds hierarchical query tracing on top of the
flat counters: span trees with parent→child propagation from the service
through the shard fan-out into the engine phases and block-level I/O
events, sampled by :class:`QueryTracer`, exported as Chrome trace-event
JSON or the ``repro trace`` text report (:mod:`repro.obs.tracereport`).

:mod:`repro.obs.querylog` captures the workload itself: one structured
JSON-lines record per answered query (shape, plan, fan-out, I/O,
latency, result digest) through a non-blocking rotating writer.
:mod:`repro.obs.workload` analyzes a captured log (term/co-occurrence
frequencies, selectivity bands, spatial hot spots, planner win rates);
:mod:`repro.obs.replay` re-executes one deterministically against any
engine configuration and diffs the answers — the regression gate.
:func:`render_prometheus` renders any metrics snapshot in the
Prometheus text exposition format.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    export_device,
    export_engine,
    export_iostats,
    metric_token,
    render_prometheus,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    QueryTracer,
    Span,
    Trace,
    chrome_trace_events,
    dump_chrome_trace,
    trace_query,
    validate_chrome_events,
)
from repro.obs.tracereport import render_trace, render_traces

# The query-log family (querylog / replay / workload) sits *above* the
# core query layer, while this package is imported from *below* it (the
# spatial search modules pull in repro.obs.trace).  Loading those
# modules eagerly here would close an import cycle, so their public
# names resolve lazily on first attribute access (PEP 562).
_LAZY_EXPORTS = {
    "QueryLogError": "repro.obs.querylog",
    "QueryLogWriter": "repro.obs.querylog",
    "build_record": "repro.obs.querylog",
    "iter_query_log": "repro.obs.querylog",
    "query_log_paths": "repro.obs.querylog",
    "read_query_log": "repro.obs.querylog",
    "result_digest": "repro.obs.querylog",
    "ReplayError": "repro.obs.replay",
    "render_replay_report": "repro.obs.replay",
    "replay_query_log": "repro.obs.replay",
    "analyze_query_log": "repro.obs.workload",
    "render_workload_report": "repro.obs.workload",
    "validate_workload_report": "repro.obs.workload",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "QueryLogError",
    "QueryLogWriter",
    "QueryTracer",
    "ReplayError",
    "SlowQueryLog",
    "Span",
    "Trace",
    "analyze_query_log",
    "build_record",
    "chrome_trace_events",
    "dump_chrome_trace",
    "export_device",
    "export_engine",
    "export_iostats",
    "iter_query_log",
    "merge_snapshots",
    "metric_token",
    "query_log_paths",
    "read_query_log",
    "render_prometheus",
    "render_replay_report",
    "render_trace",
    "render_traces",
    "render_workload_report",
    "replay_query_log",
    "result_digest",
    "trace_query",
    "validate_chrome_events",
    "validate_workload_report",
]
