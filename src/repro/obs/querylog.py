"""Structured query logging: durable workload capture for the service.

Metrics (:mod:`repro.obs.metrics`) aggregate and traces
(:mod:`repro.obs.trace`) sample, but neither leaves a durable record of
*what the workload actually was* — the per-query stream that
query-log-driven repartitioning and learned cost models need as
training data, and that deterministic replay (:mod:`repro.obs.replay`)
needs as its input.  This module fills that gap:

* :func:`build_record` — one JSON-ready dict per answered query: the
  query shape (point/area/keywords/k/ranking), the planner's strategy
  with estimated vs actual cost, the per-shard fan-out including
  keyword pruning, per-query I/O totals including shared (batch
  session) reads, the latency stages, the cache / batch / degradation
  outcome, the pinned ``engine_version``, the ``trace_id`` linking to a
  retained span tree, and a deterministic digest of the answer;
* :class:`QueryLogWriter` — an append-only JSON-lines writer that never
  blocks the query path: records go through a bounded queue to one
  background thread (overflow increments a drop counter, mirroring the
  trace-log discipline), segments rotate by size, and every finalized
  segment is published with flush + fsync + atomic rename;
* :func:`iter_query_log` / :func:`read_query_log` — read a log back in
  capture order across its rotated segments, tolerating a final line
  truncated by a crash.

Sampling (``sample_every=N``) keeps capture overhead bounded on hot
services: unsampled queries pay one counter increment, nothing else.

Answer digests are position-exact: :func:`result_digest` hashes the
``(oid, distance, score)`` sequence in rank order using exact float
``repr``, so two executions digest equal iff their answers are
byte-identical — the property the replay regression gate relies on,
and one the engine guarantees across shard layouts (the canonical
``(distance, oid)`` / ``(-score, distance, oid)`` tie-breaks).
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading

from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.core.ranking import DistanceDecayRanking, LinearRanking
from repro.errors import ReproError

#: Version stamp carried by every record; bump on breaking layout changes.
SCHEMA_VERSION = 1

#: Default active-segment size that triggers rotation (8 MiB).
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: Default bounded-queue capacity between the query path and the writer.
DEFAULT_QUEUE_CAPACITY = 4096

_SENTINEL = object()


def result_digest(results) -> str:
    """Deterministic short digest of a ranked answer.

    Hashes ``oid:repr(distance):repr(score)`` per result in rank order —
    exact float representations, no rounding — so equal digests mean
    byte-identical answers (oids, order, distances, and scores).
    """
    canonical = "|".join(
        f"{result.obj.oid}:{result.distance!r}:{result.score!r}"
        for result in results
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def ranking_spec(ranking) -> dict | None:
    """Serialize a query's ranking function into a replayable spec.

    The library's own ranking families round-trip exactly
    (``distance_decay`` / ``linear`` with their parameters); arbitrary
    callables are recorded as ``{"kind": "custom"}`` — their records
    replay-skip, since an opaque function cannot be reconstructed.
    """
    if ranking is None:
        return None
    if isinstance(ranking, DistanceDecayRanking):
        return {
            "kind": "distance_decay",
            "half_distance": ranking.half_distance,
        }
    if isinstance(ranking, LinearRanking):
        return {
            "kind": "linear",
            "alpha": ranking.alpha,
            "max_distance": ranking.max_distance,
        }
    return {"kind": "custom"}


def query_spec(query: SpatialKeywordQuery) -> dict:
    """The JSON-ready query shape a record carries (replay's input)."""
    return {
        "point": list(query.point),
        "keywords": list(query.keywords),
        "k": query.k,
        "area": (
            [list(query.area.lo), list(query.area.hi)]
            if query.area is not None else None
        ),
        "ranking": ranking_spec(query.ranking),
    }


def _plan_summary(plan: dict | None) -> dict | None:
    """Compact the execution's plan payload for the log.

    Keeps the chosen strategy, the estimated and actual cost, and each
    alternative's estimated cost (``estimates`` maps strategy ->
    cost_ms) — exactly the fields the workload report's won/lost
    aggregation and future learned-cost training need — and drops the
    per-estimate read breakdowns, which would dominate record size.
    """
    if plan is None:
        return None
    summary: dict = {"strategy": plan.get("strategy")}
    for key in ("query_class", "estimated_cost_ms", "actual_cost_ms",
                "cached", "forced"):
        if key in plan:
            summary[key] = plan[key]
    estimates = plan.get("estimates")
    if estimates:
        summary["estimates"] = {
            kind: estimate.get("cost_ms")
            for kind, estimate in estimates.items()
        }
    if "per_shard" in plan:
        summary["per_shard"] = plan["per_shard"]
    return summary


def _fanout_summary(shards: list[dict] | None) -> dict | None:
    """Aggregate the per-shard reports into the record's fan-out block."""
    if shards is None:
        return None
    return {
        "shards": len(shards),
        "searched": sum(
            1 for s in shards if not s.get("pruned") and not s.get("failed")
        ),
        "pruned": sum(1 for s in shards if s.get("pruned")),
        "pruned_by_keywords": sum(
            1 for s in shards if s.get("pruned_by_keywords")
        ),
        "failed": sum(1 for s in shards if s.get("failed")),
    }


def build_record(
    span,
    execution: QueryExecution | None = None,
    query: SpatialKeywordQuery | None = None,
) -> dict:
    """One JSON-ready query-log record from a flat span (+ execution).

    ``execution`` is None for failed queries — the record then carries
    the error and the query shape (pass ``query`` explicitly) but no
    results digest or I/O attribution.
    """
    record: dict = {
        "schema": SCHEMA_VERSION,
        "query_id": span.query_id,
        "cache": span.cache,
        "batch_id": span.batch_id,
        "engine_version": span.engine_version,
        "trace_id": span.trace_id,
        "retries": span.retries,
        "worker": span.worker,
        "error": span.error,
        "latency_ms": {
            "queue_wait": round(span.queue_wait_ms, 4),
            "lock_wait": round(span.lock_wait_ms, 4),
            "engine": round(span.engine_ms, 4),
            "merge": round(span.merge_ms, 4),
            "total": round(span.total_ms, 4),
        },
    }
    if execution is not None:
        query = execution.query
    if query is not None:
        record["query"] = query_spec(query)
    if execution is None:
        return record
    io = execution.io
    record.update(
        algorithm=execution.algorithm,
        degraded=execution.degraded,
        io={
            "random_reads": io.random_reads,
            "sequential_reads": io.sequential_reads,
            "shared_reads": io.shared_reads,
            "objects_loaded": io.objects_loaded,
        },
        plan=_plan_summary(execution.plan),
        fanout=_fanout_summary(execution.shards),
        results={
            "count": len(execution.results),
            "oids": execution.oids,
            "digest": result_digest(execution.results),
        },
    )
    return record


class QueryLogError(ReproError):
    """A query log file is malformed or its writer was misconfigured."""


class QueryLogWriter:
    """Non-blocking, rotating JSON-lines writer for query-log records.

    The query path calls :meth:`offer`, which samples, builds the
    record, and enqueues it — never touching the filesystem and never
    blocking: a full queue drops the record and bumps
    :attr:`dropped` (and the ``querylog.dropped`` counter when a
    registry is attached).  One background thread drains the queue into
    the active segment at ``path``; when the segment exceeds
    ``max_segment_bytes`` it is finalized — flushed, fsynced, and
    atomically renamed to ``<path>.<NNNNNN>`` — and a fresh active
    segment opens.  :meth:`close` drains and finalizes the active
    segment in place (it stays at ``path``), so readers always see
    ``sorted rotated segments + active file`` in capture order.

    Args:
        path: the active segment path (rotated segments live beside it).
        sample_every: capture every Nth query (1 = everything).
        max_segment_bytes: rotation threshold for the active segment.
        max_queue: bounded-queue capacity between query path and writer.
        metrics: optional registry receiving ``querylog.records`` /
            ``querylog.dropped`` / ``querylog.rotations`` counters.
        autostart: start the drain thread immediately (tests disable
            this to exercise the bounded queue in isolation).
    """

    def __init__(
        self,
        path: str,
        sample_every: int = 1,
        max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        max_queue: int = DEFAULT_QUEUE_CAPACITY,
        metrics=None,
        autostart: bool = True,
    ) -> None:
        if sample_every < 1:
            raise QueryLogError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if max_segment_bytes < 1:
            raise QueryLogError(
                f"max_segment_bytes must be >= 1, got {max_segment_bytes}"
            )
        self.path = path
        self.sample_every = sample_every
        self.max_segment_bytes = max_segment_bytes
        self.metrics = metrics
        self._queue: queue.Queue = queue.Queue(maxsize=max_queue)
        self._lock = threading.Lock()
        self._seen = 0
        self._sampled = 0
        self._dropped = 0
        self._written = 0
        self._rotations = 0
        self._closed = False
        self._fh = None
        self._active_bytes = 0
        self._next_segment = self._scan_next_segment()
        self._thread: threading.Thread | None = None
        if autostart:
            self._thread = threading.Thread(
                target=self._drain, name="repro-querylog", daemon=True
            )
            self._thread.start()

    # -- Counters ---------------------------------------------------------------

    @property
    def seen(self) -> int:
        """Queries offered (sampled or not)."""
        with self._lock:
            return self._seen

    @property
    def sampled(self) -> int:
        """Queries that passed the sampling filter."""
        with self._lock:
            return self._sampled

    @property
    def dropped(self) -> int:
        """Sampled records lost because the bounded queue was full."""
        with self._lock:
            return self._dropped

    @property
    def written(self) -> int:
        """Records the background thread has written out so far."""
        with self._lock:
            return self._written

    @property
    def rotations(self) -> int:
        """Segments finalized by size-based rotation."""
        with self._lock:
            return self._rotations

    # -- The query-path side ----------------------------------------------------

    def offer(
        self,
        span,
        execution: QueryExecution | None = None,
        query: SpatialKeywordQuery | None = None,
    ) -> bool:
        """Sample and enqueue one completed (or failed) query; never blocks.

        Returns True when the record was enqueued, False when it was
        sampled out or dropped on a full queue.
        """
        with self._lock:
            if self._closed:
                return False
            self._seen += 1
            if (self._seen - 1) % self.sample_every:
                return False
            self._sampled += 1
        record = build_record(span, execution, query=query)
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            with self._lock:
                self._dropped += 1
            if self.metrics is not None:
                self.metrics.counter("querylog.dropped").inc()
            return False
        return True

    def log(self, record: dict) -> bool:
        """Enqueue a pre-built record (bypasses sampling); never blocks."""
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            with self._lock:
                self._dropped += 1
            if self.metrics is not None:
                self.metrics.counter("querylog.dropped").inc()
            return False
        return True

    # -- The writer-thread side -------------------------------------------------

    def _scan_next_segment(self) -> int:
        """First free rotation index, past any segments already on disk."""
        directory = os.path.dirname(self.path) or "."
        base = os.path.basename(self.path)
        highest = 0
        try:
            names = os.listdir(directory)
        except OSError:
            return 1
        for name in names:
            if not name.startswith(base + "."):
                continue
            suffix = name[len(base) + 1:]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
        return highest + 1

    def _open_active(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # A leftover active segment from an earlier run is rotated out
        # first so its records are preserved in order, never overwritten.
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            os.replace(self.path, f"{self.path}.{self._next_segment:06d}")
            self._next_segment += 1
        self._fh = open(self.path, "w", encoding="utf-8")
        self._active_bytes = 0

    def _rotate(self) -> None:
        """Finalize the active segment: flush, fsync, atomic rename."""
        fh = self._fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(self.path, f"{self.path}.{self._next_segment:06d}")
        self._next_segment += 1
        self._fh = None
        with self._lock:
            self._rotations += 1
        if self.metrics is not None:
            self.metrics.counter("querylog.rotations").inc()

    def _write_record(self, record: dict) -> None:
        if self._fh is None:
            self._open_active()
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        self._fh.write(line + "\n")
        self._active_bytes += len(line) + 1
        with self._lock:
            self._written += 1
        if self.metrics is not None:
            self.metrics.counter("querylog.records").inc()
        if self._active_bytes >= self.max_segment_bytes:
            self._rotate()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                try:
                    self._write_record(item)
                except OSError:
                    # A full or vanished disk must never take the query
                    # path down with it; account the loss and move on.
                    with self._lock:
                        self._dropped += 1
                    if self.metrics is not None:
                        self.metrics.counter("querylog.dropped").inc()
            finally:
                self._queue.task_done()

    def drain(self) -> None:
        """Block until every enqueued record has been written (tests)."""
        self._queue.join()

    def close(self) -> None:
        """Drain the queue and finalize the active segment in place.

        The active segment stays at ``path`` (flushed and fsynced) —
        the final, possibly partial segment of the log.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._thread is not None:
            self._queue.put(_SENTINEL)
            self._thread.join()
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "QueryLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- Reading a log back ---------------------------------------------------------


def query_log_paths(path: str) -> list[str]:
    """Every segment of a query log, in capture order.

    Rotated segments (``<path>.<NNNNNN>``) sort first by index, then the
    active/final segment at ``path`` itself.
    """
    directory = os.path.dirname(path) or "."
    base = os.path.basename(path)
    segments = []
    try:
        names = os.listdir(directory)
    except OSError:
        names = []
    for name in names:
        if name.startswith(base + ".") and name[len(base) + 1:].isdigit():
            segments.append(os.path.join(directory, name))
    segments.sort()
    if os.path.exists(path):
        segments.append(path)
    return segments


def iter_query_log(path: str):
    """Yield records from a log (all segments), in capture order.

    A malformed line raises :class:`QueryLogError` unless it is the
    final line of the final segment — a crash mid-append legitimately
    truncates that one line, so it is skipped silently (the atomic
    rotation protocol guarantees every *finalized* segment is intact).
    """
    segments = query_log_paths(path)
    if not segments:
        raise QueryLogError(f"no query log found at {path}")
    for si, segment in enumerate(segments):
        last_segment = si == len(segments) - 1
        with open(segment, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for li, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except ValueError as exc:
                if last_segment and li == len(lines) - 1:
                    return  # crash-truncated final append
                raise QueryLogError(
                    f"malformed query-log line {li + 1} in {segment}: {exc}"
                ) from exc


def read_query_log(path: str) -> list[dict]:
    """Read a whole query log (all segments) into a list of records."""
    return list(iter_query_log(path))
