"""Deterministic replay of a captured query log against any engine.

A query log captured by :class:`repro.obs.querylog.QueryLogWriter`
records, for every answered query, its exact shape and a digest of its
answer.  Because every execution path in this repository — single
engine, any shard count or partitioner, batched or serial, snapshot or
rwlock maintenance, dirty or clean overlay — resolves ties under the
same canonical orders (``(distance, oid)`` distance-first,
``(-score, distance, oid)`` ranked), replaying the same queries over
the same corpus must reproduce every recorded digest *exactly*, on any
configuration.  That makes a captured log a portable regression gate:

* **answers** — :func:`replay_query_log` re-executes each record
  through a fresh :class:`~repro.serve.QueryService` and diffs the
  fresh digest against the recorded one; any mismatch is a correctness
  regression (or a corpus drift) and fails the gate;
* **cost** — total device reads per replayed query are compared to the
  recorded baseline with a regression threshold (I/O counts are
  deterministic, so this gate never flakes on machine speed); recorded
  vs replayed mean latency is reported alongside but is
  machine-dependent and never gated by default.

Records that cannot be replayed are counted, not guessed at: failed
queries (no recorded answer) and queries whose ranking function was an
opaque custom callable (``{"kind": "custom"}`` — not reconstructible).
"""

from __future__ import annotations

from repro.core.query import SpatialKeywordQuery
from repro.core.ranking import DistanceDecayRanking, LinearRanking
from repro.errors import ReproError
from repro.obs.querylog import result_digest
from repro.spatial.geometry import Rect

#: Mismatch examples retained in the report (all are *counted*).
MAX_MISMATCH_EXAMPLES = 20

#: Default allowed replayed-vs-recorded total-reads growth factor.
DEFAULT_IO_THRESHOLD = 1.5


class ReplayError(ReproError):
    """A query log cannot be replayed (malformed or empty input)."""


def ranking_from_spec(spec: dict | None):
    """Reconstruct a ranking function from its recorded spec.

    Returns ``None`` for distance-first records and raises
    :class:`ReplayError` for ``custom`` (opaque) rankings — callers
    skip those records rather than replay them wrongly.
    """
    if spec is None:
        return None
    kind = spec.get("kind")
    if kind == "distance_decay":
        return DistanceDecayRanking(half_distance=spec["half_distance"])
    if kind == "linear":
        return LinearRanking(
            alpha=spec["alpha"], max_distance=spec["max_distance"]
        )
    raise ReplayError(f"ranking kind {kind!r} is not replayable")


def query_from_record(record: dict) -> SpatialKeywordQuery:
    """Rebuild the executed query from one log record.

    Raises :class:`ReplayError` when the record carries no query shape
    or an unreconstructible ranking.
    """
    spec = record.get("query")
    if not spec:
        raise ReplayError(
            f"record query_id={record.get('query_id')} has no query shape"
        )
    ranking = ranking_from_spec(spec.get("ranking"))
    area = spec.get("area")
    if area is not None:
        return SpatialKeywordQuery.of_area(
            Rect(tuple(area[0]), tuple(area[1])),
            spec["keywords"],
            spec["k"],
        )
    return SpatialKeywordQuery.of(
        spec["point"], spec["keywords"], spec["k"], ranking=ranking
    )


def _recorded_reads(record: dict) -> int:
    io = record.get("io") or {}
    return int(io.get("random_reads", 0)) + int(io.get("sequential_reads", 0))


def replay_query_log(
    records,
    engine,
    workers: int = 1,
    batched: bool = False,
    max_batch: int = 16,
    cache: bool = True,
    maintenance: str = "snapshot",
    io_threshold: float | None = DEFAULT_IO_THRESHOLD,
    limit: int | None = None,
) -> dict:
    """Re-execute a captured log against ``engine``; diff answers and cost.

    Records replay in capture order through one fresh
    :class:`~repro.serve.QueryService` over ``engine`` (any
    configuration: single or sharded, any partitioner).  ``batched``
    routes them through the batch front-end in ``max_batch``-sized
    ``submit_many`` groups — deterministic grouping, and the answers
    must be identical either way.

    Returns a JSON-ready report::

        {"records", "replayed", "skipped": {"errors", "unreplayable"},
         "mismatch_count", "mismatches": [...examples...],
         "io": {... recorded vs replayed reads per query, ratio ...},
         "latency_ms": {"recorded_mean", "replayed_mean"},
         "ok": <zero mismatches and io ratio within threshold>}

    ``ok`` is the CI gate: no answer may differ, and replayed device
    reads per query must stay within ``io_threshold`` x the recorded
    baseline (``None`` disables the cost gate).
    """
    from repro.serve import BatchConfig, QueryService

    records = list(records)
    if limit is not None:
        records = records[:limit]
    if not records:
        raise ReplayError("query log holds no records to replay")

    playable: list[tuple[dict, SpatialKeywordQuery]] = []
    skipped_errors = 0
    skipped_unreplayable = 0
    for record in records:
        if record.get("error") or "results" not in record:
            skipped_errors += 1
            continue
        try:
            playable.append((record, query_from_record(record)))
        except ReplayError:
            skipped_unreplayable += 1

    batching = (
        BatchConfig(window_ms=2.0, max_batch=max_batch) if batched else None
    )
    mismatches: list[dict] = []
    mismatch_count = 0
    recorded_reads = 0
    recorded_latency = 0.0
    recorded_with_latency = 0
    with QueryService(
        engine, workers=workers, cache=cache, batching=batching,
        maintenance=maintenance,
    ) as service:
        executions = []
        if batched:
            for start in range(0, len(playable), max_batch):
                chunk = playable[start:start + max_batch]
                executions.extend(
                    service.run_batch([query for _, query in chunk])
                )
        else:
            executions = [
                service.search(query) for _, query in playable
            ]
        stats = service.stats()

    for (record, _query), execution in zip(playable, executions):
        recorded = record["results"]
        recorded_reads += _recorded_reads(record)
        latency = (record.get("latency_ms") or {}).get("total")
        if latency is not None:
            recorded_latency += latency
            recorded_with_latency += 1
        fresh_digest = result_digest(execution.results)
        if fresh_digest == recorded.get("digest"):
            continue
        mismatch_count += 1
        if len(mismatches) < MAX_MISMATCH_EXAMPLES:
            mismatches.append({
                "query_id": record.get("query_id"),
                "query": record.get("query"),
                "recorded": {
                    "digest": recorded.get("digest"),
                    "count": recorded.get("count"),
                    "oids": recorded.get("oids"),
                },
                "replayed": {
                    "digest": fresh_digest,
                    "count": len(execution.results),
                    "oids": execution.oids,
                },
            })

    replayed = len(playable)
    replayed_reads = stats.io.random_reads + stats.io.sequential_reads
    recorded_per_query = recorded_reads / replayed if replayed else 0.0
    replayed_per_query = replayed_reads / replayed if replayed else 0.0
    if recorded_reads > 0:
        io_ratio: float | None = replayed_reads / recorded_reads
    else:
        io_ratio = None if replayed_reads == 0 else float(replayed_reads)
    io_ok = (
        io_threshold is None
        or io_ratio is None
        or io_ratio <= io_threshold + 1e-9
    )
    total_hist = (stats.metrics.get("histograms") or {}).get(
        "service.total_ms"
    )
    replayed_mean_latency = (
        total_hist["mean"] if total_hist and total_hist["count"] else None
    )

    return {
        "schema": 1,
        "records": len(records),
        "replayed": replayed,
        "skipped": {
            "errors": skipped_errors,
            "unreplayable": skipped_unreplayable,
        },
        "mismatch_count": mismatch_count,
        "mismatches": mismatches,
        "io": {
            "recorded_total_reads": recorded_reads,
            "replayed_total_reads": replayed_reads,
            "recorded_reads_per_query": recorded_per_query,
            "replayed_reads_per_query": replayed_per_query,
            "ratio": io_ratio,
            "threshold": io_threshold,
            "ok": io_ok,
        },
        "latency_ms": {
            "recorded_mean": (
                recorded_latency / recorded_with_latency
                if recorded_with_latency else None
            ),
            "replayed_mean": replayed_mean_latency,
        },
        "cache": {
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
        },
        "batched": batched,
        "ok": mismatch_count == 0 and io_ok,
    }


def render_replay_report(report: dict) -> str:
    """Human-readable summary of one replay report."""
    io = report["io"]
    skipped = report["skipped"]
    lines = [
        f"replayed {report['replayed']}/{report['records']} records "
        f"({skipped['errors']} error records, "
        f"{skipped['unreplayable']} unreplayable skipped)",
        f"answer mismatches: {report['mismatch_count']}",
        f"reads/query: recorded {io['recorded_reads_per_query']:.2f}, "
        f"replayed {io['replayed_reads_per_query']:.2f}"
        + (
            f" (ratio {io['ratio']:.3f}, threshold {io['threshold']})"
            if io["ratio"] is not None and io["threshold"] is not None
            else ""
        ),
    ]
    latency = report["latency_ms"]
    if latency["recorded_mean"] is not None and latency["replayed_mean"] is not None:
        lines.append(
            f"mean latency: recorded {latency['recorded_mean']:.2f} ms, "
            f"replayed {latency['replayed_mean']:.2f} ms "
            f"(wall-clock; informational only)"
        )
    for example in report["mismatches"]:
        lines.append(
            f"  MISMATCH query_id={example['query_id']}: "
            f"recorded {example['recorded']['digest']} "
            f"({example['recorded']['count']} results) vs replayed "
            f"{example['replayed']['digest']} "
            f"({example['replayed']['count']} results)"
        )
    lines.append("replay: OK" if report["ok"] else "replay: FAILED")
    return "\n".join(lines)
