"""Metric primitives: counters, gauges, fixed-bucket histograms.

The serving stack (``repro.serve``), the sharded fan-out
(``repro.shard``), and the storage devices all need to answer the same
operational questions — how many, how fast, what mix — without coupling
to each other.  :class:`MetricsRegistry` is the shared sink: components
record into named metrics, and one :meth:`~MetricsRegistry.snapshot`
call produces a JSON-ready view of everything (the ``repro metrics``
CLI output and the ``--serve-metrics`` dump).

Three metric kinds cover the layer's needs:

* :class:`Counter` — monotonically increasing event counts
  (queries served, shards pruned, retries spent);
* :class:`Gauge` — last-written point-in-time values
  (buffer-pool hit rate, cached entries);
* :class:`Histogram` — fixed-bucket latency distributions with exact
  count/sum/min/max and interpolated quantiles (p50/p95 of per-stage
  timings).  Buckets are fixed at construction so merged snapshots from
  different processes stay comparable.

Everything here is thread-safe: metrics are recorded from query worker
threads, shard fan-out threads, and device readers concurrently.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Iterable, Sequence

#: Default latency buckets in milliseconds — log-spaced from sub-0.1 ms
#: (cache hits) to multi-second outliers (cold sharded fan-outs).
LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
    50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: Default buckets for per-query block-access counts.
COUNT_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500,
)


class Counter:
    """A monotonically increasing event count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value; each :meth:`set` overwrites the last."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with exact count/sum/min/max.

    Args:
        name: metric name.
        buckets: strictly increasing upper bounds; observations larger
            than the last bound land in an implicit overflow bucket.

    Quantiles are estimated by linear interpolation inside the bucket
    containing the target rank, clamped to the exact observed min/max —
    so ``quantile(0.5)`` on a single observation returns that value, and
    estimates never leave the observed range.
    """

    def __init__(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_MS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} bucket bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        # One count per bound plus the overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lo = self.bounds[index - 1] if index > 0 else min(self._min, self.bounds[0])
                hi = self.bounds[index] if index < len(self.bounds) else self._max
                lo = max(lo, self._min)
                hi = min(hi, self._max)
                if hi <= lo:
                    return lo
                # Interpolate within the bucket by the rank's position.
                position = (rank - (cumulative - bucket_count)) / bucket_count
                return lo + (hi - lo) * min(1.0, max(0.0, position))
        return self._max

    def as_dict(self) -> dict:
        """JSON-ready view: bucket counts, exact stats, p50/p95/p99."""
        with self._lock:
            counts = list(self._counts)
            payload = {
                "buckets": [
                    {"le": bound, "count": count}
                    for bound, count in zip(self.bounds, counts)
                ],
                "overflow": counts[-1],
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "mean": self._sum / self._count if self._count else 0.0,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
            }
        return payload


class MetricsRegistry:
    """Get-or-create registry of named metrics with one snapshot view.

    Names are dotted paths (``service.search_ms``,
    ``shard.fanout.pruned``); a name is permanently bound to the kind it
    was first created as — asking for the same name as a different kind
    raises, which catches typo'd cross-component wiring early.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unbound(self, name: str, want: dict) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not want and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_unbound(name, self._counters)
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_unbound(name, self._gauges)
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_MS
    ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``buckets`` only applies on first creation; later calls return
        the existing histogram unchanged.
        """
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_unbound(name, self._histograms)
                metric = self._histograms[name] = Histogram(name, buckets)
            return metric

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        with self._lock:
            return sorted(
                list(self._counters)
                + list(self._gauges)
                + list(self._histograms)
            )

    def snapshot(self) -> dict:
        """A JSON-ready snapshot of every registered metric.

        Shape::

            {"counters": {name: int, ...},
             "gauges": {name: float, ...},
             "histograms": {name: {"buckets": [...], "p50": ..., ...}}}
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counter.value for name, counter in sorted(counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(gauges.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(histograms.items())
            },
        }

    def dump_json(self, path: str, extra: dict | None = None) -> None:
        """Write the snapshot (plus optional metadata) to ``path``."""
        payload = dict(extra or {})
        payload["metrics"] = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Sum counters and bucket counts across several snapshots.

    Gauges keep the last non-zero writer (they are point-in-time values
    with no meaningful sum); histograms require identical bucket bounds.
    Used to aggregate per-process dumps offline.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            if value or name not in merged["gauges"]:
                merged["gauges"][name] = value
        for name, histogram in snapshot.get("histograms", {}).items():
            existing = merged["histograms"].get(name)
            if existing is None:
                merged["histograms"][name] = json.loads(json.dumps(histogram))
                continue
            theirs = [bucket["le"] for bucket in histogram["buckets"]]
            ours = [bucket["le"] for bucket in existing["buckets"]]
            if theirs != ours:
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ across snapshots"
                )
            for mine, other in zip(existing["buckets"], histogram["buckets"]):
                mine["count"] += other["count"]
            existing["overflow"] += histogram["overflow"]
            existing["count"] += histogram["count"]
            existing["sum"] += histogram["sum"]
            existing["min"] = min(existing["min"], histogram["min"])
            existing["max"] = max(existing["max"], histogram["max"])
            existing["mean"] = (
                existing["sum"] / existing["count"] if existing["count"] else 0.0
            )
            # Quantiles cannot be merged exactly; drop them rather than lie.
            for key in ("p50", "p95", "p99"):
                existing.pop(key, None)
    return merged
