"""Workload analysis over a captured query log.

:func:`analyze_query_log` turns the raw per-query record stream of
:mod:`repro.obs.querylog` into the aggregate signals ROADMAP's two
log-driven stretch goals consume:

* **term frequency and co-occurrence** — which keywords the workload
  actually asks for, alone and together: the input signal for
  query-driven keyword-aware repartitioning (terms that co-occur in
  queries should co-locate in shards);
* **selectivity bands** — how often queries come back empty, partial
  (< k), or full: the label distribution a learned selectivity model
  trains against;
* **spatial hot spots** — a :class:`repro.plan.stats.DensityGrid`
  fitted over the *query* anchors (not the corpus), exposing where the
  traffic concentrates;
* **planner won/lost aggregates** — for every adaptive routing
  decision with recorded alternatives, whether the chosen strategy's
  actual cost beat the cheapest estimated alternative (the same
  definition :meth:`repro.plan.QueryPlanner.observe` uses online);
* **cost and outcome aggregates** — I/O per query, latency quantiles,
  cache/batch/degradation/fan-out tallies.

The report is one JSON document (stable schema, validated by
:func:`validate_workload_report`) so downstream tooling — the CI
schema gate today, repartitioning and learned-cost experiments
next — consumes it directly.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations

from repro.errors import ReproError
from repro.plan.stats import DensityGrid

#: Report schema version; bump on breaking layout changes.
REPORT_SCHEMA = 1


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(q * len(sorted_values))))
    return sorted_values[rank]


def _distribution(values: list[float]) -> dict:
    ordered = sorted(values)
    return {
        "mean": sum(ordered) / len(ordered) if ordered else 0.0,
        "p50": _quantile(ordered, 0.50),
        "p95": _quantile(ordered, 0.95),
        "max": ordered[-1] if ordered else 0.0,
    }


def _top_cells(grid: DensityGrid, limit: int) -> list[dict]:
    """The grid's busiest cells with their bounds, deterministic order."""
    ranked = sorted(
        (
            (count, index)
            for index, count in enumerate(grid.counts)
            if count > 0
        ),
        key=lambda pair: (-pair[0], pair[1]),
    )[:limit]
    cells = []
    for count, index in ranked:
        axes = []
        remaining = index
        for _ in range(grid.dims):
            axes.append(remaining % grid.cells_per_dim)
            remaining //= grid.cells_per_dim
        axes.reverse()  # cell_of composes most-significant dim first
        lo = [grid.lo[d] + axes[d] * grid.widths[d] for d in range(grid.dims)]
        hi = [lo[d] + grid.widths[d] for d in range(grid.dims)]
        cells.append({
            "cell": axes,
            "count": count,
            "fraction": count / grid.total if grid.total else 0.0,
            "lo": lo,
            "hi": hi,
        })
    return cells


def analyze_query_log(
    records,
    cells_per_dim: int = 8,
    top_terms: int = 32,
    top_pairs: int = 32,
    top_cells: int = 16,
) -> dict:
    """Aggregate a query-log record stream into one workload report."""
    records = list(records)
    if not records:
        raise ReproError("query log holds no records to analyze")

    errors = 0
    shapes = Counter()
    k_values: list[int] = []
    cache = Counter()
    batch_ids: set = set()
    batched_records = 0
    degraded = 0
    term_counts: Counter = Counter()
    pair_counts: Counter = Counter()
    total_terms = 0
    bands = Counter()
    reads: list[float] = []
    latencies: list[float] = []
    shared_reads = 0
    objects_loaded = 0
    points: list[tuple] = []
    strategies: Counter = Counter()
    plan_decisions = 0
    won = 0
    lost = 0
    estimate_ratios: list[float] = []
    fanout_totals = Counter()
    fanout_queries = 0
    versions: list[int] = []
    trace_linked = 0

    for record in records:
        if record.get("error"):
            errors += 1
            continue
        spec = record.get("query") or {}
        if spec.get("area") is not None:
            shapes["area"] += 1
        elif spec.get("ranking") is not None:
            shapes["ranked"] += 1
        else:
            shapes["point"] += 1
        k = spec.get("k")
        if k is not None:
            k_values.append(int(k))
        keywords = sorted(set(spec.get("keywords") or ()))
        term_counts.update(keywords)
        total_terms += len(keywords)
        for pair in combinations(keywords, 2):
            pair_counts[pair] += 1
        point = spec.get("point")
        if point:
            points.append(tuple(point))

        cache[record.get("cache", "unknown")] += 1
        if record.get("batch_id") is not None:
            batched_records += 1
            batch_ids.add(record["batch_id"])
        if record.get("degraded"):
            degraded += 1
        if record.get("trace_id"):
            trace_linked += 1
        version = record.get("engine_version")
        if version is not None:
            versions.append(version)

        io = record.get("io") or {}
        reads.append(
            io.get("random_reads", 0) + io.get("sequential_reads", 0)
        )
        shared_reads += io.get("shared_reads", 0)
        objects_loaded += io.get("objects_loaded", 0)
        latency = (record.get("latency_ms") or {}).get("total")
        if latency is not None:
            latencies.append(latency)

        results = record.get("results") or {}
        count = results.get("count")
        if count is not None and k is not None:
            if count == 0:
                bands["empty"] += 1
            elif count < k:
                bands["partial"] += 1
            else:
                bands["full"] += 1

        plan = record.get("plan")
        if plan and plan.get("strategy"):
            plan_decisions += 1
            strategies[plan["strategy"]] += 1
            estimates = plan.get("estimates") or {}
            actual = plan.get("actual_cost_ms")
            estimated = plan.get("estimated_cost_ms")
            if estimated and actual is not None:
                estimate_ratios.append(actual / estimated)
            alternatives = [
                cost for kind, cost in estimates.items()
                if kind != plan["strategy"] and cost is not None
            ]
            if actual is not None and alternatives:
                if actual <= min(alternatives) + 1e-9:
                    won += 1
                else:
                    lost += 1

        fanout = record.get("fanout")
        if fanout:
            fanout_queries += 1
            for key in ("shards", "searched", "pruned",
                        "pruned_by_keywords", "failed"):
                fanout_totals[key] += fanout.get(key, 0)

    queries = len(records) - errors
    grid = DensityGrid.fit(points, cells_per_dim) if points else None

    def top(counter: Counter, limit: int) -> list:
        return sorted(
            counter.items(), key=lambda item: (-item[1], item[0])
        )[:limit]

    report = {
        "schema": REPORT_SCHEMA,
        "records": len(records),
        "queries": queries,
        "errors": errors,
        "shapes": {
            "point": shapes["point"],
            "area": shapes["area"],
            "ranked": shapes["ranked"],
            "k": {
                "min": min(k_values) if k_values else 0,
                "max": max(k_values) if k_values else 0,
                "mean": (
                    sum(k_values) / len(k_values) if k_values else 0.0
                ),
            },
        },
        "cache": dict(cache),
        "batched": {"records": batched_records, "groups": len(batch_ids)},
        "degraded": degraded,
        "trace_linked": trace_linked,
        "terms": {
            "unique": len(term_counts),
            "total": total_terms,
            "frequency": [
                {"term": term, "count": count}
                for term, count in top(term_counts, top_terms)
            ],
        },
        "cooccurrence": [
            {"terms": list(pair), "count": count}
            for pair, count in top(pair_counts, top_pairs)
        ],
        "selectivity": {
            "bands": {
                "empty": bands["empty"],
                "partial": bands["partial"],
                "full": bands["full"],
            },
        },
        "io": {
            "total_reads": int(sum(reads)),
            "shared_reads": int(shared_reads),
            "objects_loaded": int(objects_loaded),
            "reads_per_query": _distribution(reads) if reads else None,
        },
        "latency_ms": _distribution(latencies) if latencies else None,
        "hotspots": (
            {
                "grid": grid.as_dict(),
                "top_cells": _top_cells(grid, top_cells),
            }
            if grid is not None else None
        ),
        "planner": {
            "decisions": plan_decisions,
            "strategies": dict(strategies),
            "won": won,
            "lost": lost,
            "estimate_error": (
                _distribution(estimate_ratios) if estimate_ratios else None
            ),
        },
        "fanout": (
            {
                "queries": fanout_queries,
                "avg_searched": fanout_totals["searched"] / fanout_queries,
                "avg_shards": fanout_totals["shards"] / fanout_queries,
                "pruned": fanout_totals["pruned"],
                "pruned_by_keywords": fanout_totals["pruned_by_keywords"],
                "failed": fanout_totals["failed"],
            }
            if fanout_queries else None
        ),
        "engine_versions": (
            {"min": min(versions), "max": max(versions)}
            if versions else None
        ),
    }
    return report


#: Required report keys and the types their values must satisfy — the
#: contract CI's schema gate and downstream consumers rely on.
_REQUIRED_KEYS = {
    "schema": int,
    "records": int,
    "queries": int,
    "errors": int,
    "shapes": dict,
    "cache": dict,
    "batched": dict,
    "terms": dict,
    "cooccurrence": list,
    "selectivity": dict,
    "io": dict,
    "planner": dict,
}


def validate_workload_report(report: dict) -> None:
    """Raise :class:`ReproError` unless ``report`` matches the schema."""
    for key, expected in _REQUIRED_KEYS.items():
        if key not in report:
            raise ReproError(f"workload report is missing {key!r}")
        if not isinstance(report[key], expected):
            raise ReproError(
                f"workload report key {key!r} should be "
                f"{expected.__name__}, got {type(report[key]).__name__}"
            )
    if report["schema"] != REPORT_SCHEMA:
        raise ReproError(
            f"workload report schema {report['schema']} != {REPORT_SCHEMA}"
        )
    shapes = report["shapes"]
    for key in ("point", "area", "ranked", "k"):
        if key not in shapes:
            raise ReproError(f"workload report shapes is missing {key!r}")
    counted = (
        shapes["point"] + shapes["area"] + shapes["ranked"]
    )
    if counted != report["queries"]:
        raise ReproError(
            f"workload report shape counts ({counted}) != queries "
            f"({report['queries']})"
        )
    for key in ("unique", "total", "frequency"):
        if key not in report["terms"]:
            raise ReproError(f"workload report terms is missing {key!r}")
    bands = report["selectivity"].get("bands")
    if not isinstance(bands, dict):
        raise ReproError("workload report selectivity.bands must be a dict")
    for key in ("decisions", "strategies", "won", "lost"):
        if key not in report["planner"]:
            raise ReproError(f"workload report planner is missing {key!r}")


def render_workload_report(report: dict) -> str:
    """Human-readable multi-line summary of one workload report."""
    shapes = report["shapes"]
    lines = [
        f"{report['records']} records: {report['queries']} queries, "
        f"{report['errors']} errors",
        f"shapes: {shapes['point']} point, {shapes['area']} area, "
        f"{shapes['ranked']} ranked "
        f"(k {shapes['k']['min']}-{shapes['k']['max']}, "
        f"mean {shapes['k']['mean']:.1f})",
        "cache: " + ", ".join(
            f"{name}={count}" for name, count in sorted(report["cache"].items())
        ),
    ]
    bands = report["selectivity"]["bands"]
    lines.append(
        f"selectivity bands: {bands['empty']} empty, "
        f"{bands['partial']} partial, {bands['full']} full"
    )
    io = report["io"]
    if io["reads_per_query"] is not None:
        rpq = io["reads_per_query"]
        lines.append(
            f"io: {io['total_reads']} total reads "
            f"({rpq['mean']:.1f}/query mean, p95 {rpq['p95']:.0f}), "
            f"{io['shared_reads']} shared"
        )
    if report["latency_ms"] is not None:
        lat = report["latency_ms"]
        lines.append(
            f"latency: mean {lat['mean']:.2f} ms, p50 {lat['p50']:.2f}, "
            f"p95 {lat['p95']:.2f}"
        )
    terms = report["terms"]
    head = ", ".join(
        f"{row['term']}({row['count']})"
        for row in terms["frequency"][:8]
    )
    lines.append(f"terms: {terms['unique']} unique; top: {head}")
    if report["cooccurrence"]:
        pairs = ", ".join(
            f"{'+'.join(row['terms'])}({row['count']})"
            for row in report["cooccurrence"][:5]
        )
        lines.append(f"co-occurring: {pairs}")
    planner = report["planner"]
    if planner["decisions"]:
        lines.append(
            f"planner: {planner['decisions']} decisions "
            f"({planner['won']} won, {planner['lost']} lost) across "
            + ", ".join(
                f"{name}={count}"
                for name, count in sorted(planner["strategies"].items())
            )
        )
    if report["fanout"]:
        fanout = report["fanout"]
        lines.append(
            f"fan-out: {fanout['avg_searched']:.2f}/"
            f"{fanout['avg_shards']:.0f} shards searched on average, "
            f"{fanout['pruned_by_keywords']} keyword-pruned"
        )
    if report["hotspots"]:
        top = report["hotspots"]["top_cells"]
        if top:
            hottest = top[0]
            lines.append(
                f"hot spots: busiest cell {hottest['cell']} holds "
                f"{hottest['fraction']:.0%} of query anchors"
            )
    if report["batched"]["records"]:
        lines.append(
            f"batched: {report['batched']['records']} records in "
            f"{report['batched']['groups']} groups"
        )
    return "\n".join(lines)
