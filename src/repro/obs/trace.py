"""Hierarchical query tracing: span trees with I/O event attribution.

The flat per-query :class:`repro.serve.tracing.TraceSpan` says *that* a
query cost 400 block reads; this module says *why*.  A :class:`Trace` is
a tree of :class:`Span` objects — one root per query, one child per
shard fan-out, one per engine search, one per search phase — and each
span carries instant :class:`SpanEvent` records for the fine-grained
work the paper's evaluation (Section VI) argues about: node reads
annotated with their tree level, entries pruned by the signature test,
object verifications with their false-positive outcome, and every block
access tagged random/sequential (cross-checkable against
:class:`repro.storage.iostats.IOStats`).

Context propagation is thread-local: :func:`start_span` opens a child of
the current span, :func:`activate` re-parents a worker thread onto a
span created elsewhere (the sharded fan-out), and :func:`add_event`
attaches an instant event to whatever span is current.  Every hook is a
no-op returning immediately when no trace is active on the thread, so
instrumented hot paths stay cheap with tracing off.

Traces export two ways:

* :func:`chrome_trace_events` — Chrome trace-event JSON (``ph``/``ts``/
  ``dur``/``pid``/``tid``), loadable in Perfetto / ``chrome://tracing``;
  :func:`validate_chrome_events` asserts the schema and strict
  parent/child interval nesting;
* :func:`repro.obs.tracereport.render_trace` — the ``repro trace`` text
  tree ("level 1: 14 nodes visited, 9 entries pruned by signature").

:class:`QueryTracer` is the sampling policy the serving layer wires in:
every-Nth query is sampled, and — when a slow-query threshold is set —
every query is traced but only sampled or slow ones are *retained*, so
slow queries always link to a span tree by trace ID.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.storage import iostats as _iostats

#: Instant-event names emitted by the instrumented layers.
EVT_BLOCK_READ = "block-read"
EVT_BLOCK_WRITE = "block-write"
EVT_SHARED_READ = "shared-read"
EVT_OBJECT_LOAD = "object-load"
EVT_NODE_READ = "node-read"
EVT_SIG_PRUNE = "signature-prune"
EVT_OBJECT_VERIFY = "object-verify"

#: Access-pattern labels on block events (mirrors IOStats classification).
PATTERN_RANDOM = "random"
PATTERN_SEQUENTIAL = "sequential"


@dataclass
class SpanEvent:
    """One instant event inside a span (a point, not an interval)."""

    name: str
    ts: float
    attrs: dict

    def to_dict(self, origin: float = 0.0) -> dict:
        return {
            "name": self.name,
            "ts_ms": (self.ts - origin) * 1000.0,
            "attrs": dict(self.attrs),
        }


class Span:
    """One node of a trace's span tree.

    Spans are created through :meth:`Trace.new_span` (or the
    :func:`start_span` context manager) and must be finished exactly
    once.  Events and annotations are appended by the thread the span is
    active on; the containing :class:`Trace` serializes span creation.

    Attributes:
        trace: owning trace.
        span_id: id unique within the trace (root is 1).
        parent_id: parent span id (None for the root).
        name: human-readable label ("query", "shard-2", "traverse", ...).
        category: coarse group ("query", "shard", "engine", "phase",
            "service") — the Chrome export's ``cat`` field.
        tid: OS thread id the span ran on (Chrome's lane).
        start: perf-counter start time.
        end: perf-counter end time (None while open).
        attrs: JSON-safe annotations.
        events: instant events recorded while the span was current.
    """

    __slots__ = (
        "trace", "span_id", "parent_id", "name", "category", "tid",
        "start", "end", "attrs", "events",
    )

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        parent_id: int | None,
        name: str,
        category: str = "",
        start: float | None = None,
        end: float | None = None,
        tid: int | None = None,
        attrs: dict | None = None,
    ) -> None:
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.tid = tid if tid is not None else threading.get_ident()
        self.start = start if start is not None else time.perf_counter()
        self.end = end
        self.attrs = dict(attrs or {})
        self.events: list[SpanEvent] = []

    def event(self, name: str, **attrs) -> None:
        """Record one instant event on this span."""
        self.events.append(SpanEvent(name, time.perf_counter(), attrs))

    def annotate(self, **attrs) -> None:
        """Merge annotations into the span's attributes."""
        self.attrs.update(attrs)

    def finish(self, end: float | None = None) -> None:
        """Close the span (idempotent; keeps the first end time)."""
        if self.end is None:
            self.end = end if end is not None else time.perf_counter()

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start) * 1000.0

    def to_dict(self, origin: float = 0.0) -> dict:
        """JSON-serializable view with times relative to ``origin``."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_ms": (self.start - origin) * 1000.0,
            "duration_ms": self.duration_ms,
            "tid": self.tid,
            "attrs": dict(self.attrs),
            "events": [event.to_dict(origin) for event in self.events],
        }


class Trace:
    """One query's span tree: the root span plus all of its descendants.

    Span creation is thread-safe (shard fan-out threads open children
    concurrently); each individual span is then owned by the thread it
    is active on.
    """

    def __init__(self, trace_id: str | None = None, sampled: bool = True) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.sampled = sampled
        self.slow = False
        self._lock = threading.Lock()
        self._next_id = 1
        self.spans: list[Span] = []

    def new_span(
        self,
        name: str,
        category: str = "",
        parent: Span | None = None,
        start: float | None = None,
        end: float | None = None,
        tid: int | None = None,
        **attrs,
    ) -> Span:
        """Create (and register) a new span.

        Passing ``end`` creates an already-finished span — used to
        synthesize phase intervals from flat timestamps after the fact.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                self,
                span_id,
                parent.span_id if parent is not None else None,
                name,
                category=category,
                start=start,
                end=end,
                tid=tid,
                attrs=attrs,
            )
            self.spans.append(span)
        return span

    @property
    def root(self) -> Span | None:
        """The first span created (the query's root), or None when empty."""
        return self.spans[0] if self.spans else None

    @property
    def duration_ms(self) -> float:
        """Root span duration (0.0 for an empty or unfinished trace)."""
        root = self.root
        return root.duration_ms if root is not None else 0.0

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in start order."""
        kids = [s for s in self.spans if s.parent_id == span.span_id]
        kids.sort(key=lambda s: (s.start, s.span_id))
        return kids

    def find(self, name: str) -> list[Span]:
        """Every span with the given name."""
        return [s for s in self.spans if s.name == name]

    def iter_events(self, name: str | None = None) -> Iterator[tuple[Span, SpanEvent]]:
        """Yield ``(span, event)`` pairs, optionally filtered by name."""
        for span in self.spans:
            for event in span.events:
                if name is None or event.name == name:
                    yield span, event

    def as_dict(self) -> dict:
        """JSON-serializable payload (times relative to the root start)."""
        root = self.root
        origin = root.start if root is not None else 0.0
        return {
            "trace_id": self.trace_id,
            "sampled": self.sampled,
            "slow": self.slow,
            "duration_ms": self.duration_ms,
            "spans": [span.to_dict(origin) for span in self.spans],
        }


# -- Thread-local context propagation -------------------------------------------

_ctx = threading.local()


def _stack() -> list[Span]:
    stack = getattr(_ctx, "stack", None)
    if stack is None:
        stack = _ctx.stack = []
    return stack


def current_span() -> Span | None:
    """The span active on this thread, or None (the fast path)."""
    stack = getattr(_ctx, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(span: Span | None) -> Iterator[Span | None]:
    """Make ``span`` current on this thread without finishing it on exit.

    The cross-thread propagation primitive: a fan-out worker activates
    the parent span created on the dispatching thread, then opens its
    own children under it.  ``activate(None)`` is a no-op, so call sites
    stay branch-free.
    """
    if span is None:
        yield None
        return
    stack = _stack()
    stack.append(span)
    try:
        yield span
    finally:
        stack.pop()


@contextmanager
def start_span(name: str, category: str = "", **attrs) -> Iterator[Span | None]:
    """Open a child of the current span; no-op (yields None) if untraced."""
    parent = current_span()
    if parent is None:
        yield None
        return
    span = parent.trace.new_span(name, category=category, parent=parent, **attrs)
    stack = _stack()
    stack.append(span)
    try:
        yield span
    finally:
        stack.pop()
        span.finish()


def add_event(name: str, **attrs) -> None:
    """Record an instant event on the current span (no-op if untraced)."""
    span = current_span()
    if span is not None:
        span.event(name, **attrs)


@contextmanager
def trace_query(name: str = "query", trace: Trace | None = None, **attrs) -> Iterator[Trace]:
    """Run a block under a fresh root span; yields the :class:`Trace`.

    The direct-engine entry point (the ``repro trace`` CLI)::

        with trace_query("query", k=10) as trace:
            execution = engine.search(query)
        print(render_trace(trace))
    """
    trace = trace if trace is not None else Trace()
    root = trace.new_span(name, category="query", **attrs)
    stack = _stack()
    stack.append(root)
    try:
        yield trace
    finally:
        stack.pop()
        root.finish()


# -- Storage-layer event bridge --------------------------------------------------

def _block_io_sink(op: str, block_id: int, category: str, is_seq: bool) -> None:
    """Receive one classified block access from :mod:`repro.storage.iostats`."""
    span = current_span()
    if span is not None:
        span.event(
            EVT_BLOCK_READ if op == "read" else EVT_BLOCK_WRITE,
            block=block_id,
            category=category,
            pattern=PATTERN_SEQUENTIAL if is_seq else PATTERN_RANDOM,
        )


def _object_load_sink(count: int) -> None:
    """Receive one logical-object materialization from the object store."""
    span = current_span()
    if span is not None:
        span.event(EVT_OBJECT_LOAD, count=count)


def _shared_read_sink(block_id: int, category: str) -> None:
    """Receive one shared-read hit (batch session served the block).

    A distinct event type from :data:`EVT_BLOCK_READ` on purpose: block
    events must keep reconciling exactly with the random/sequential read
    counters, and shared hits touch neither the device nor the head.
    """
    span = current_span()
    if span is not None:
        span.event(EVT_SHARED_READ, block=block_id, category=category)


# The storage layer stays tracing-agnostic: iostats exposes two module
# globals that default to None (zero overhead until this module is
# imported) and this import installs the bridge.
_iostats._TRACE_BLOCK_SINK = _block_io_sink
_iostats._TRACE_OBJECT_SINK = _object_load_sink
_iostats._TRACE_SHARED_SINK = _shared_read_sink


# -- Chrome trace-event export ---------------------------------------------------

def chrome_trace_events(traces, origin: float | None = None) -> list[dict]:
    """Flatten traces into Chrome trace-event JSON objects.

    All spans share one monotonic clock, so a single ``origin`` (the
    earliest span start by default) keeps concurrent queries correctly
    interleaved per thread lane instead of stacking every trace at t=0.

    Complete spans become ``ph: "X"`` events; instant span events become
    ``ph: "i"`` thread-scoped instants.  ``args`` carries the trace and
    span ids plus every annotation, so the tree is reconstructible from
    the file alone.
    """
    traces = list(traces)
    pid = os.getpid()
    spans = [span for trace in traces for span in trace.spans]
    if origin is None:
        origin = min((span.start for span in spans), default=0.0)
    events: list[dict] = []
    for trace in traces:
        for span in trace.spans:
            end = span.end if span.end is not None else span.start
            args = {
                "trace_id": trace.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
            }
            args.update(span.attrs)
            events.append({
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": max(0.0, end - span.start) * 1e6,
                "pid": pid,
                "tid": span.tid,
                "args": args,
            })
            for event in span.events:
                events.append({
                    "name": event.name,
                    "cat": span.category or "span",
                    "ph": "i",
                    "s": "t",
                    "ts": (event.ts - origin) * 1e6,
                    "pid": pid,
                    "tid": span.tid,
                    "args": dict(
                        event.attrs,
                        trace_id=trace.trace_id,
                        span_id=span.span_id,
                    ),
                })
    return events


#: Fields every Chrome trace event must carry.
_REQUIRED_FIELDS = ("name", "ph", "ts", "pid", "tid")

#: Interval-comparison slack in microseconds (float conversion noise).
_EPS_US = 1e-6


def validate_chrome_events(events: list[dict]) -> None:
    """Assert trace-event schema and strict parent/child nesting.

    Raises ``ValueError`` naming the first offending event when:

    * an event misses a required field (``name``/``ph``/``ts``/``pid``/
      ``tid``; ``dur`` for complete events, ``s`` for instants);
    * two complete events on the same thread lane partially overlap
      (intervals must be nested or disjoint — Chrome renders anything
      else as garbage);
    * a span's interval escapes its parent's, or its ``parent_id``
      dangles.

    Used by the schema test suite and the CI perf-smoke job.
    """
    if not isinstance(events, list) or not events:
        raise ValueError("trace-event payload must be a non-empty list")
    complete_by_lane: dict = {}
    spans_by_id: dict = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for fname in _REQUIRED_FIELDS:
            if fname not in event:
                raise ValueError(f"event {i} ({event.get('name')!r}) missing {fname!r}")
        ph = event["ph"]
        if ph == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValueError(
                    f"complete event {i} ({event['name']!r}) needs dur >= 0"
                )
            complete_by_lane.setdefault(
                (event["pid"], event["tid"]), []
            ).append(event)
            args = event.get("args") or {}
            if "span_id" in args:
                spans_by_id[(args.get("trace_id"), args["span_id"])] = event
        elif ph == "i":
            if "s" not in event:
                raise ValueError(f"instant event {i} ({event['name']!r}) missing 's'")
        else:
            raise ValueError(f"event {i} has unsupported phase {ph!r}")
    for lane, lane_events in complete_by_lane.items():
        lane_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list[tuple[float, float, str]] = []
        for event in lane_events:
            start = event["ts"]
            end = start + event["dur"]
            while stack and stack[-1][1] <= start + _EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + _EPS_US:
                raise ValueError(
                    f"span {event['name']!r} [{start:.1f}, {end:.1f}] on tid "
                    f"{lane[1]} partially overlaps {stack[-1][2]!r} "
                    f"(ends {stack[-1][1]:.1f})"
                )
            stack.append((start, end, event["name"]))
    for (trace_id, _), event in spans_by_id.items():
        args = event["args"]
        parent_id = args.get("parent_id")
        if parent_id is None:
            continue
        parent = spans_by_id.get((trace_id, parent_id))
        if parent is None:
            raise ValueError(
                f"span {event['name']!r} references missing parent {parent_id}"
            )
        start, end = event["ts"], event["ts"] + event["dur"]
        pstart, pend = parent["ts"], parent["ts"] + parent["dur"]
        if start + _EPS_US < pstart or end > pend + _EPS_US:
            raise ValueError(
                f"span {event['name']!r} [{start:.1f}, {end:.1f}] escapes "
                f"parent {parent['name']!r} [{pstart:.1f}, {pend:.1f}]"
            )


def atomic_write_json(path: str, payload: dict) -> None:
    """Write JSON via tmp-file + fsync + rename (the persist protocol).

    A reader never observes a truncated file: either the old content or
    the complete new one.
    """
    nonce = uuid.uuid4().hex[:8]
    tmp = f"{path}.tmp-{nonce}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error-path cleanup
            try:
                os.remove(tmp)
            except OSError:
                pass


def dump_chrome_trace(path: str, traces, extra: dict | None = None) -> None:
    """Write traces as one Chrome trace-event JSON file (atomically)."""
    payload = {
        "traceEvents": chrome_trace_events(traces),
        "displayTimeUnit": "ms",
        "otherData": dict(extra or {}),
    }
    atomic_write_json(path, payload)


# -- Sampling policy -------------------------------------------------------------

class QueryTracer:
    """Decides which queries get a span tree and which trees are kept.

    Two dials:

    * ``sample_every`` — every Nth query (the first of each stride) is
      *sampled*: traced and retained unconditionally.  0 disables
      periodic sampling.
    * ``slow_query_ms`` — when set, **every** query is traced, but a
      non-sampled trace is retained only if its root latency reaches the
      threshold.  This is what lets the slow-query log always link to a
      span tree; the cost is span bookkeeping on every query, so leave
      it None for maximum-throughput deployments and rely on sampling.

    Retained traces live in a bounded buffer; when it overflows, the
    oldest *non-slow* trace is evicted first, so slow-query evidence
    survives a flood of routine samples.  :class:`repro.serve.QueryService`
    fills ``slow_query_ms`` from its own ``--slow-query-ms`` threshold
    when the tracer is attached without one.
    """

    def __init__(
        self,
        sample_every: int = 16,
        slow_query_ms: float | None = None,
        capacity: int = 64,
    ) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0 (0 disables sampling)")
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        if slow_query_ms is not None and slow_query_ms < 0:
            raise ValueError("slow_query_ms must be >= 0 (or None)")
        self.sample_every = sample_every
        self.slow_query_ms = slow_query_ms
        self.capacity = capacity
        self._lock = threading.Lock()
        self._seen = 0
        self._kept: list[Trace] = []
        self._dropped = 0

    def begin(self, name: str = "query", start: float | None = None, **attrs) -> Trace | None:
        """Start a trace for the next query, or return None (untraced).

        The root span is created on the calling thread (the query
        worker); the caller activates it, runs the query, finishes it,
        and hands the trace back through :meth:`commit`.
        """
        with self._lock:
            seen = self._seen
            self._seen += 1
        sampled = self.sample_every > 0 and seen % self.sample_every == 0
        if not sampled and self.slow_query_ms is None:
            return None
        trace = Trace(sampled=sampled)
        trace.new_span(name, category="query", start=start, **attrs)
        return trace

    def commit(self, trace: Trace, total_ms: float) -> bool:
        """Retention decision for a finished trace; True when kept."""
        slow = self.slow_query_ms is not None and total_ms >= self.slow_query_ms
        if not trace.sampled and not slow:
            return False
        trace.slow = slow
        with self._lock:
            self._kept.append(trace)
            if len(self._kept) > self.capacity:
                for i, kept in enumerate(self._kept):
                    if not kept.slow:
                        del self._kept[i]
                        break
                else:
                    del self._kept[0]
                self._dropped += 1
        return True

    def traces(self) -> list[Trace]:
        """Snapshot of the retained traces, oldest first."""
        with self._lock:
            return list(self._kept)

    def get(self, trace_id: str) -> Trace | None:
        """Look one retained trace up by id."""
        with self._lock:
            for trace in self._kept:
                if trace.trace_id == trace_id:
                    return trace
        return None

    @property
    def seen(self) -> int:
        """Queries offered to the tracer over its lifetime."""
        with self._lock:
            return self._seen

    @property
    def dropped(self) -> int:
        """Retained traces later evicted by the capacity bound."""
        with self._lock:
            return self._dropped

    def chrome_events(self) -> list[dict]:
        """Chrome trace events across every retained trace."""
        return chrome_trace_events(self.traces())

    def dump_chrome(self, path: str, extra: dict | None = None) -> None:
        """Write the retained traces as one Chrome trace-event file."""
        meta = {
            "sample_every": self.sample_every,
            "slow_query_ms": self.slow_query_ms,
            "queries_seen": self.seen,
            "traces_retained": len(self.traces()),
            "traces_dropped": self.dropped,
        }
        meta.update(extra or {})
        dump_chrome_trace(path, self.traces(), extra=meta)
