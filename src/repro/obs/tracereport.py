"""Text rendering of query span trees: the ``repro trace`` cost report.

Turns a :class:`repro.obs.trace.Trace` into the per-query explanation
the paper's evaluation reasons in (Section VI): which tree levels were
visited and how hard the signatures pruned, how many candidate objects
were loaded and how many turned out to be false positives, and how the
block accesses split random/sequential — per span, plus a whole-query
attribution summary that reconciles with ``IOStats``/``SearchCounters``.
"""

from __future__ import annotations

from repro.obs.trace import (
    EVT_BLOCK_READ,
    EVT_BLOCK_WRITE,
    EVT_NODE_READ,
    EVT_OBJECT_LOAD,
    EVT_OBJECT_VERIFY,
    EVT_SIG_PRUNE,
    PATTERN_SEQUENTIAL,
    Span,
    Trace,
)

#: Root-span annotations surfaced on the header line, in display order.
_HEADER_ATTRS = ("algorithm", "strategy", "keywords", "k", "cache", "worker")

#: Span annotations surfaced inline on tree rows, in display order.
_ROW_ATTRS = (
    "algorithm", "strategy", "shard", "cache", "pruned", "pruned_by_keywords",
    "failed", "degraded", "retries", "results_offered", "num_results", "error",
)


def summarize_events(spans) -> dict:
    """Aggregate the instant events of ``spans`` into cost counters.

    Returns a dict with:

    * ``levels`` — ``{tree_level: {"nodes": int, "pruned": int}}``;
    * ``objects_verified`` / ``false_positives`` — verification outcomes;
    * ``objects_loaded`` — logical objects materialized;
    * ``random_reads`` / ``sequential_reads`` / ``writes`` — block I/O.
    """
    levels: dict = {}
    summary = {
        "levels": levels,
        "objects_verified": 0,
        "false_positives": 0,
        "objects_loaded": 0,
        "random_reads": 0,
        "sequential_reads": 0,
        "writes": 0,
    }
    for span in spans:
        for event in span.events:
            if event.name == EVT_NODE_READ:
                bucket = levels.setdefault(
                    event.attrs.get("level", 0), {"nodes": 0, "pruned": 0}
                )
                bucket["nodes"] += 1
            elif event.name == EVT_SIG_PRUNE:
                bucket = levels.setdefault(
                    event.attrs.get("level", 0), {"nodes": 0, "pruned": 0}
                )
                bucket["pruned"] += 1
            elif event.name == EVT_OBJECT_VERIFY:
                summary["objects_verified"] += 1
                if event.attrs.get("false_positive"):
                    summary["false_positives"] += 1
            elif event.name == EVT_OBJECT_LOAD:
                summary["objects_loaded"] += event.attrs.get("count", 1)
            elif event.name == EVT_BLOCK_READ:
                if event.attrs.get("pattern") == PATTERN_SEQUENTIAL:
                    summary["sequential_reads"] += 1
                else:
                    summary["random_reads"] += 1
            elif event.name == EVT_BLOCK_WRITE:
                summary["writes"] += 1
    return summary


def attribution_lines(summary: dict) -> list[str]:
    """Human-readable cost lines for one event summary (may be empty)."""
    lines: list[str] = []
    for level in sorted(summary["levels"], reverse=True):
        bucket = summary["levels"][level]
        lines.append(
            f"level {level}: {bucket['nodes']} nodes visited, "
            f"{bucket['pruned']} entries pruned by signature"
        )
    if summary["objects_verified"] or summary["objects_loaded"]:
        lines.append(
            f"objects: {summary['objects_loaded']} loaded, "
            f"{summary['objects_verified']} verified, "
            f"{summary['false_positives']} false positives"
        )
    if summary["random_reads"] or summary["sequential_reads"]:
        lines.append(
            f"io: {summary['random_reads']} random + "
            f"{summary['sequential_reads']} sequential block reads"
        )
    return lines


def _format_attr(value) -> str:
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(str(v) for v in value) + "]"
    return str(value)


_ZERO_HIDDEN = frozenset({"retries", "results_offered", "num_results"})


def _span_label(span: Span) -> str:
    parts = [f"{span.name} {span.duration_ms:.2f} ms"]
    for key in _ROW_ATTRS:
        if key in span.attrs:
            value = span.attrs[key]
            if value is False or value is None:
                continue
            if value == 0 and key in _ZERO_HIDDEN:
                continue
            parts.append(f"{key}={_format_attr(value)}")
    return "  ".join(parts)


def _render_span(
    trace: Trace, span: Span, prefix: str, is_last: bool, lines: list[str]
) -> None:
    connector = "└─ " if is_last else "├─ "
    lines.append(f"{prefix}{connector}{_span_label(span)}")
    child_prefix = prefix + ("   " if is_last else "│  ")
    detail = attribution_lines(summarize_events([span]))
    children = trace.children_of(span)
    for i, line in enumerate(detail):
        tail = "└· " if (i == len(detail) - 1 and not children) else "├· "
        lines.append(f"{child_prefix}{tail}{line}")
    for i, child in enumerate(children):
        _render_span(trace, child, child_prefix, i == len(children) - 1, lines)


def render_trace(trace: Trace) -> str:
    """Render one trace as a text tree with per-span cost attribution.

    Each span row shows its duration and key annotations; below it, its
    own instant events are summarized ("level 1: 14 nodes visited, ...").
    A final ``totals`` block aggregates attribution across the whole
    tree — the numbers that reconcile exactly with the execution's
    ``IOStats`` and ``SearchCounters``.
    """
    root = trace.root
    if root is None:
        return f"trace {trace.trace_id}: <empty>"
    flags = []
    if trace.sampled:
        flags.append("sampled")
    if trace.slow:
        flags.append("slow")
    header = [
        f"trace {trace.trace_id}"
        + (f" ({', '.join(flags)})" if flags else "")
        + f"  {trace.duration_ms:.2f} ms"
    ]
    for key in _HEADER_ATTRS:
        if key in root.attrs:
            header.append(f"{key}={_format_attr(root.attrs[key])}")
    lines = ["  ".join(header)]
    _render_span(trace, root, "", True, lines)
    totals = attribution_lines(summarize_events(trace.spans))
    if totals:
        lines.append("totals:")
        lines.extend(f"  {line}" for line in totals)
    return "\n".join(lines)


def render_traces(traces) -> str:
    """Render many traces separated by blank lines."""
    return "\n\n".join(render_trace(trace) for trace in traces)
