"""Bridge running storage/engine state into a :class:`MetricsRegistry`.

The device layer keeps its own running state (:class:`IOStats` counters,
:class:`~repro.storage.cache.BufferPoolDevice` hit/miss tallies) — hot
paths should not pay a registry lookup per block access.  These helpers
publish that state into a registry *at snapshot time*: the serving layer
calls :func:`export_engine` from ``QueryService.stats()`` so every
metrics dump reflects the devices as of that instant.

Gauge names are ``storage.<device>.<metric>``; device names are
sanitized to dotted-path-safe tokens (``lru(ir2-index)`` becomes
``lru_ir2_index``).
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry
from repro.storage.cache import BufferPoolDevice
from repro.storage.iostats import IOStats

_SANITIZE = re.compile(r"[^A-Za-z0-9_]+")


def metric_token(name: str) -> str:
    """A device/shard name reduced to a dotted-path-safe token."""
    token = _SANITIZE.sub("_", name).strip("_")
    return token or "device"


def _prometheus_name(raw: str, prefix: str) -> str:
    """A registry metric name as a Prometheus identifier.

    Dots (the registry's namespacing) and any other non-identifier
    characters become underscores; the shared prefix namespaces the
    whole exposition (``service.total_ms`` → ``repro_service_total_ms``).
    """
    name = _SANITIZE.sub("_", raw).strip("_")
    return f"{prefix}_{name}" if name else prefix


def _prometheus_number(value) -> str:
    """A sample value in exposition format (integers without ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text format.

    Counters and gauges export one sample each; histograms export the
    standard ``_bucket`` (cumulative counts with an explicit ``+Inf``
    bucket), ``_sum``, and ``_count`` series.  The output is the
    text-based exposition format (version 0.0.4), so any Prometheus
    scraper — or ``promtool check metrics`` — consumes it directly::

        registry = MetricsRegistry()
        ...
        print(render_prometheus(registry.snapshot()))

    Metric families are emitted in sorted-name order, so the exposition
    is deterministic for a given snapshot.
    """
    lines: list[str] = []
    for raw, value in sorted((snapshot.get("counters") or {}).items()):
        name = _prometheus_name(raw, prefix)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_prometheus_number(value)}")
    for raw, value in sorted((snapshot.get("gauges") or {}).items()):
        name = _prometheus_name(raw, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_prometheus_number(value)}")
    for raw, hist in sorted((snapshot.get("histograms") or {}).items()):
        name = _prometheus_name(raw, prefix)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bucket in hist.get("buckets", []):
            cumulative += bucket["count"]
            le = _prometheus_number(bucket["le"])
            lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
        cumulative += hist.get("overflow", 0)
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_prometheus_number(hist.get('sum', 0.0))}")
        lines.append(f"{name}_count {hist.get('count', 0)}")
    return "\n".join(lines) + "\n" if lines else ""


def export_iostats(
    registry: MetricsRegistry, prefix: str, io: IOStats
) -> None:
    """Publish one :class:`IOStats` as gauges under ``prefix``.

    Covers the read/write mix the paper's evaluation cares about:
    random vs sequential, reads vs writes, plus logical object loads.
    """
    snap = io.snapshot()
    registry.gauge(f"{prefix}.random_reads").set(snap.random.reads)
    registry.gauge(f"{prefix}.sequential_reads").set(snap.sequential.reads)
    registry.gauge(f"{prefix}.random_writes").set(snap.random.writes)
    registry.gauge(f"{prefix}.sequential_writes").set(snap.sequential.writes)
    registry.gauge(f"{prefix}.objects_loaded").set(snap.objects_loaded)
    total_reads = snap.random.reads + snap.sequential.reads
    total_writes = snap.random.writes + snap.sequential.writes
    total = total_reads + total_writes
    registry.gauge(f"{prefix}.read_fraction").set(
        total_reads / total if total else 0.0
    )
    registry.gauge(f"{prefix}.sequential_fraction").set(
        (snap.sequential.reads + snap.sequential.writes) / total if total else 0.0
    )


def export_device(registry: MetricsRegistry, device) -> None:
    """Publish one block device's running state.

    Every device exports its :class:`IOStats`; a
    :class:`BufferPoolDevice` additionally exports its hit/miss counts
    and hit rate (and its inner device is exported too, so cached and
    true disk traffic are both visible).
    """
    prefix = f"storage.{metric_token(device.name)}"
    export_iostats(registry, f"{prefix}.io", device.stats)
    if isinstance(device, BufferPoolDevice):
        registry.gauge(f"{prefix}.pool.hits").set(device.hits)
        registry.gauge(f"{prefix}.pool.misses").set(device.misses)
        registry.gauge(f"{prefix}.pool.hit_rate").set(device.hit_rate)
        registry.gauge(f"{prefix}.pool.cached_blocks").set(len(device._cache))


def _engine_devices(engine) -> list:
    devices = []
    index = getattr(engine, "index", None)
    if index is not None and getattr(index, "device", None) is not None:
        devices.append(index.device)
    corpus = getattr(engine, "corpus", None)
    if corpus is not None and getattr(corpus, "device", None) is not None:
        devices.append(corpus.device)
    return devices


def export_engine(registry: MetricsRegistry, engine) -> None:
    """Publish every device of a single or sharded engine.

    For a :class:`~repro.shard.ShardedEngine`, each shard's devices are
    exported with a ``shard<N>`` path segment and the merged running I/O
    additionally lands under ``storage.all_shards.io``.
    """
    shards = getattr(engine, "shards", None)
    if shards is None:
        for device in _engine_devices(engine):
            export_device(registry, device)
        return
    merged = IOStats()
    for shard_id, shard in enumerate(shards):
        for device in _engine_devices(shard):
            prefix = f"storage.shard{shard_id}.{metric_token(device.name)}"
            export_iostats(registry, f"{prefix}.io", device.stats)
            if isinstance(device, BufferPoolDevice):
                registry.gauge(f"{prefix}.pool.hits").set(device.hits)
                registry.gauge(f"{prefix}.pool.misses").set(device.misses)
                registry.gauge(f"{prefix}.pool.hit_rate").set(device.hit_rate)
            merged = merged.merged_with(device.stats.snapshot())
    export_iostats(registry, "storage.all_shards.io", merged)
