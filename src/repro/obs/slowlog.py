"""Slow-query log: a bounded buffer of the worst trace spans.

Latency histograms say *that* p99 regressed; the slow-query log says
*which queries did it*.  :class:`SlowQueryLog` keeps the ``capacity``
worst :class:`~repro.serve.tracing.TraceSpan` objects whose total
latency crossed a configurable threshold, so a `--serve-metrics` dump
(or ``repro metrics``) always carries concrete offender queries —
keywords, k, cache disposition, per-query I/O — next to the aggregate
distributions.
"""

from __future__ import annotations

import heapq
import itertools
import threading


class SlowQueryLog:
    """Keep the ``capacity`` worst spans at or above a latency threshold.

    Args:
        threshold_ms: minimum total latency for a span to be considered.
        capacity: maximum retained spans; once full, a new span must be
            slower than the current fastest member to enter.
    """

    def __init__(self, threshold_ms: float = 100.0, capacity: int = 32) -> None:
        if threshold_ms < 0:
            raise ValueError("slow-query threshold must be >= 0 ms")
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self.threshold_ms = float(threshold_ms)
        self.capacity = capacity
        self._lock = threading.Lock()
        # Min-heap on (total_ms, seq): the root is the fastest retained
        # span, i.e. the first to be displaced by a slower arrival.
        self._heap: list[tuple[float, int, object]] = []
        self._seq = itertools.count()
        self._observed = 0
        self._admitted = 0

    def offer(self, span) -> bool:
        """Consider one finished span; True when it was retained.

        ``span`` is any object with a ``total_ms`` attribute and an
        ``as_dict()`` method (in practice a
        :class:`~repro.serve.tracing.TraceSpan`).
        """
        total_ms = float(span.total_ms)
        with self._lock:
            self._observed += 1
            if total_ms < self.threshold_ms:
                return False
            entry = (total_ms, next(self._seq), span)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
                self._admitted += 1
                return True
            if total_ms > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)
                self._admitted += 1
                return True
            return False

    def spans(self) -> list:
        """The retained spans, slowest first."""
        with self._lock:
            entries = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [entry[2] for entry in entries]

    @property
    def observed(self) -> int:
        """Spans offered to the log over its lifetime."""
        with self._lock:
            return self._observed

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def clear(self) -> None:
        """Forget every retained span (counters too)."""
        with self._lock:
            self._heap = []
            self._observed = 0
            self._admitted = 0

    def as_dicts(self) -> list[dict]:
        """JSON-ready rows, slowest first (the dump's ``slow_queries``)."""
        return [span.as_dict() for span in self.spans()]
