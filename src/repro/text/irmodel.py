"""IR relevance scoring [Sin01] with signature-compatible upper bounds.

Section V.C of the paper ranks objects by ``f(distance, IRscore)`` and
orders tree nodes by the *maximum possible* score of any object beneath
them.  The node bound is built from the node's signature: "assume ... an
imaginary object T that contains all keywords of Q specified by the
signature of v.S exactly once (term frequency tf=1) ... the document
length (dl) of T.t is the number of such keywords" — i.e. evaluate the
tf-idf function on the most favorable document the signature permits.

For that construction to be an *admissible* (never-underestimating) bound,
the scoring function must be maximized by exactly that imaginary document.
We therefore use a binary-tf, idf-weighted, log-length-normalized model::

    IRscore(T, Q) = sum over q in Q with q in T of idf(q) / (1 + ln dl(T))

where ``dl(T)`` is T's token count and ``idf(q) = ln(1 + N / df(q))``.
Because a real document matching term subset ``M'`` has ``dl >= |M'|``,
its score is at most ``max over prefix sizes s of (top-s idfs) / (1+ln s)``
over the signature-matched terms — computed by
:func:`upper_bound_ir_score`.  The bound is exact for the imaginary
document when idfs are uniform and provably admissible otherwise (the
naive "all matched terms at once" bound is *not*, because length
normalization is non-monotone in the matched-set size; see the property
tests).

A classical weighted-tf variant (:func:`tf_idf_score`) is included for
completeness; the general search algorithm defaults to the admissible
model.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.text.analyzer import Analyzer
from repro.text.vocabulary import Vocabulary


def ir_score(
    text: str,
    query_terms: Sequence[str],
    vocabulary: Vocabulary,
    analyzer: Analyzer,
) -> float:
    """Relevance of ``text`` to the query under the default (binary-tf) model.

    Returns 0.0 when no query term occurs in the text.
    """
    if not query_terms:
        return 0.0
    frequencies = analyzer.term_frequencies(text)
    dl = sum(frequencies.values())
    if dl == 0:
        return 0.0
    matched_idf = sum(
        vocabulary.idf(term) for term in query_terms if term in frequencies
    )
    if matched_idf == 0.0:
        return 0.0
    return matched_idf / (1.0 + math.log(dl))


def tf_idf_score(
    text: str,
    query_terms: Sequence[str],
    vocabulary: Vocabulary,
    analyzer: Analyzer,
) -> float:
    """Classical weighted-tf scoring: ``sum (1+ln tf) * idf / (1+ln dl)``.

    Provided for applications that want graded term frequency; note the
    signature-based node bound is only heuristic under this model.
    """
    if not query_terms:
        return 0.0
    frequencies = analyzer.term_frequencies(text)
    dl = sum(frequencies.values())
    if dl == 0:
        return 0.0
    total = 0.0
    for term in query_terms:
        tf = frequencies.get(term, 0)
        if tf:
            total += (1.0 + math.log(tf)) * vocabulary.idf(term)
    return total / (1.0 + math.log(dl))


def upper_bound_ir_score(matched_idfs: Iterable[float]) -> float:
    """Largest default-model score any document matching a subset can reach.

    Args:
        matched_idfs: idf values of the query terms whose signatures are
            covered by the node (or object) signature.

    Implements the paper's imaginary-document construction made
    admissible: for every possible matched-subset size ``s`` the best
    document matches the ``s`` highest-idf terms exactly once each
    (``dl = s``), scoring ``(sum of top-s idfs) / (1 + ln s)``; the bound
    is the maximum over ``s``.
    """
    idfs = sorted(matched_idfs, reverse=True)
    if not idfs:
        return 0.0
    best = 0.0
    prefix = 0.0
    for s, idf in enumerate(idfs, start=1):
        prefix += idf
        candidate = prefix / (1.0 + math.log(s))
        if candidate > best:
            best = candidate
    return best
