"""Disk-resident inverted index.

The IIO baseline (paper Section V.A, Figure 7) "first finds all the
objects (object ids) whose text document contains the query keywords by
intersecting the lists returned by the inverted index".  This module is
that index: for every term, a sorted array of object pointers stored
*byte-packed* on a block device — lists are laid out contiguously, small
lists share blocks (as real inverted files do), and retrieving a list
costs one random access plus sequential accesses for every further block
it spans.  That cost profile is the reason IIO degrades when query
keywords are frequent and shines when they are rare (Section VI.B).

Incremental maintenance appends a rewritten copy of the affected list
(the old copy becomes dead space, as in log-structured postings files);
:meth:`InvertedIndex.compact` rewrites the file densely.  The term
dictionary is kept in memory, as real systems keep their lexicon cached;
its serialized size is charged to the structure footprint so Table 2's
IIO sizes are honest.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import QueryError
from repro.storage.block import BlockDevice
from repro.text.analyzer import Analyzer
from repro.text.codecs import PostingCodec, get_codec

#: Category label for posting-list accesses in IOStats.
POSTINGS_CATEGORY = "postings"


def intersect_sorted(short: Sequence[int], long: Sequence[int]) -> list[int]:
    """Intersect two sorted, duplicate-free lists via galloping search.

    For each element of the shorter list, the position in the longer list
    is found by exponential probing from the previous match followed by a
    binary search — ``O(s * log(l/s))``, which beats a linear merge when
    the lengths are skewed (the common case for conjunctive keyword
    queries: one rare term against one frequent term).
    """
    if len(short) > len(long):
        short, long = long, short
    result: list[int] = []
    base = 0
    n = len(long)
    for value in short:
        # Gallop: find an upper bound for value starting at `base`.
        step = 1
        high = base
        while high < n and long[high] < value:
            high = base + step
            step <<= 1
        low = max(base, (high - (step >> 1)))
        high = min(high, n)
        # Binary search in [low, high).
        while low < high:
            mid = (low + high) // 2
            if long[mid] < value:
                low = mid + 1
            else:
                high = mid
        if low < n and long[low] == value:
            result.append(value)
            base = low + 1
        else:
            base = low
        if base >= n:
            break
    return result


class InvertedIndex:
    """Term -> sorted object-pointer postings, byte-packed on a device.

    Args:
        device: block device holding the posting lists.
        analyzer: tokenizer shared with the rest of the system.
        compression: posting codec — "raw" (uint32 arrays, the base
            experiments) or "varint" (delta + LEB128 compression per
            [NMN+00], cited by the paper).
    """

    def __init__(
        self,
        device: BlockDevice,
        analyzer: Analyzer,
        compression: str = "raw",
    ) -> None:
        self.device = device
        self.analyzer = analyzer
        self.codec: PostingCodec = get_codec(compression)
        # term -> (byte_offset, byte_length, posting_count)
        self._lexicon: dict[str, tuple[int, int, int]] = {}
        self._end = 0  # next free byte in the postings log
        self._live_bytes = 0  # bytes of current (non-superseded) lists

    # -- Construction -----------------------------------------------------------

    def build(self, documents: Iterable[tuple[int, str]]) -> None:
        """Bulk-build from ``(object_pointer, text)`` pairs.

        Postings are accumulated in memory, sorted, and appended term by
        term — a dense, mostly-sequential layout.
        """
        accumulator: dict[str, list[int]] = {}
        for pointer, text in documents:
            for term in self.analyzer.terms(text):
                accumulator.setdefault(term, []).append(pointer)
        for term in sorted(accumulator):
            postings = sorted(set(accumulator[term]))
            self._append_postings(term, postings)

    def add(self, pointer: int, text: str) -> None:
        """Index one new document (incremental maintenance).

        Each of the document's terms has its posting list read, extended,
        and rewritten at the log tail — the linear per-term update cost
        that makes inverted-index maintenance expensive relative to the
        R-Tree family.
        """
        for term in self.analyzer.terms(text):
            postings = self._read_postings(term) if term in self._lexicon else []
            if pointer not in postings:
                postings.append(pointer)
                postings.sort()
            self._replace_postings(term, postings)

    def remove(self, pointer: int, text: str) -> bool:
        """Remove one document's pointer from its terms' posting lists.

        Returns whether the pointer was actually present in (and removed
        from) at least one list — callers use this to distinguish an
        effective delete from a no-op, so it must not report True merely
        because other documents share the terms.  Lists the pointer was
        never in are left untouched (no rewrite I/O).
        """
        removed = False
        for term in self.analyzer.terms(text):
            entry = self._lexicon.get(term)
            if entry is None:
                continue
            postings = self._read_postings(term)
            kept = [p for p in postings if p != pointer]
            if len(kept) == len(postings):
                continue
            removed = True
            if kept:
                self._replace_postings(term, kept)
            else:
                self._lexicon.pop(term)
                self._live_bytes -= entry[1]
        return removed

    def compact(self) -> None:
        """Rewrite every live list densely, reclaiming dead log space."""
        lists = {term: self._read_postings(term) for term in sorted(self._lexicon)}
        self._lexicon.clear()
        self._end = 0
        self._live_bytes = 0
        for term, postings in lists.items():
            self._append_postings(term, postings)

    def _append_postings(self, term: str, postings: Sequence[int]) -> None:
        data = self.codec.encode(postings)
        offset = self._end
        self._write_bytes(offset, data)
        self._end += len(data)
        self._lexicon[term] = (offset, len(data), len(postings))
        self._live_bytes += len(data)

    def _replace_postings(self, term: str, postings: Sequence[int]) -> None:
        old = self._lexicon.get(term)
        if old is not None:
            self._live_bytes -= old[1]
        self._append_postings(term, postings)

    def _write_bytes(self, offset: int, data: bytes) -> None:
        """Write ``data`` at byte ``offset`` via read-modify-write of blocks."""
        if not data:
            return
        block_size = self.device.block_size
        first = offset // block_size
        last = (offset + len(data) - 1) // block_size
        pos = 0
        for block_id in range(first, last + 1):
            block_lo = block_id * block_size
            in_block = max(offset, block_lo) - block_lo
            take = min(block_size - in_block, len(data) - pos)
            if in_block == 0 and take == block_size:
                chunk = data[pos : pos + take]
            else:
                if block_id < self.device.num_blocks:
                    existing = bytearray(self.device._read_raw(block_id))
                else:
                    existing = bytearray(block_size)
                existing[in_block : in_block + take] = data[pos : pos + take]
                chunk = bytes(existing)
            self.device.write_block(block_id, chunk, POSTINGS_CATEGORY)
            pos += take

    # -- Retrieval ---------------------------------------------------------------

    def postings(self, term: str) -> list[int]:
        """The paper's ``RetrieveObjectPointersList``: counted block reads."""
        if term not in self._lexicon:
            return []
        return self._read_postings(term)

    def _read_postings(self, term: str) -> list[int]:
        offset, length, count = self._lexicon[term]
        if length == 0:
            return []
        block_size = self.device.block_size
        first = offset // block_size
        last = (offset + length - 1) // block_size
        data = self.device.read_extent(first, last - first + 1, POSTINGS_CATEGORY)
        start = offset - first * block_size
        payload = data[start : start + length]
        return self.codec.decode(payload, count)

    def retrieve_conjunction(self, keywords: Iterable[str]) -> list[int]:
        """Pointers of objects containing *all* keywords (Figure 7, lines 1-3).

        Lists are fetched shortest-first so the running intersection stays
        small; an empty list short-circuits without further I/O.  The
        intersection itself uses galloping (exponential) search — probing
        each longer list for the survivors of the shorter one — the
        standard technique when list lengths are skewed.
        """
        terms = self.analyzer.query_terms(keywords)
        if not terms:
            raise QueryError("conjunctive retrieval needs at least one keyword")
        # Order by posting count without touching the disk.
        terms.sort(key=lambda t: self._lexicon.get(t, (0, 0, 0))[2])
        result: list[int] | None = None
        for term in terms:
            postings = self.postings(term)
            if not postings:
                return []
            if result is None:
                result = postings
            else:
                result = intersect_sorted(result, postings)
            if not result:
                return []
        return result if result is not None else []

    def document_frequency(self, term: str) -> int:
        """Posting-list length of ``term`` (no I/O)."""
        entry = self._lexicon.get(term)
        return entry[2] if entry else 0

    # -- Introspection -------------------------------------------------------------

    def __contains__(self, term: str) -> bool:
        return term in self._lexicon

    def __len__(self) -> int:
        return len(self._lexicon)

    def terms(self) -> Iterator[str]:
        """Iterate over indexed terms."""
        return iter(self._lexicon)

    @property
    def postings_bytes(self) -> int:
        """Bytes of live (current) posting lists."""
        return self._live_bytes

    @property
    def dead_bytes(self) -> int:
        """Superseded log space reclaimable by :meth:`compact`."""
        return self._end - self._live_bytes

    @property
    def lexicon_bytes(self) -> int:
        """Serialized size of the in-memory dictionary (term + extent info)."""
        return sum(len(term.encode("utf-8")) + 14 for term in self._lexicon)

    @property
    def size_bytes(self) -> int:
        """Structure footprint: live postings plus the lexicon (Table 2)."""
        return self._live_bytes + self.lexicon_bytes

    @property
    def size_mb(self) -> float:
        """Structure footprint in megabytes (Table 2's IIO column)."""
        return self.size_bytes / (1024 * 1024)
