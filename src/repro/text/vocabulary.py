"""Corpus vocabulary and document-frequency statistics.

Collects the per-corpus numbers the IR model (idf), the signature design
formulas (distinct words per document), and Table 1 of the paper (total
unique words, average unique words per object) all need.
"""

from __future__ import annotations

import math
from typing import Iterable


class Vocabulary:
    """Incremental corpus statistics: document frequencies and sizes.

    Feed it one document (as a set of distinct terms) at a time via
    :meth:`add_document`; query idf and corpus aggregates afterwards.
    """

    def __init__(self) -> None:
        self._df: dict[str, int] = {}
        self.document_count = 0
        self._distinct_terms_total = 0

    def add_document(self, terms: Iterable[str]) -> None:
        """Register one document's *distinct* term set."""
        count = 0
        for term in terms:
            self._df[term] = self._df.get(term, 0) + 1
            count += 1
        self.document_count += 1
        self._distinct_terms_total += count

    def remove_document(self, terms: Iterable[str]) -> None:
        """Unregister a previously added document's distinct term set."""
        count = 0
        for term in terms:
            remaining = self._df.get(term, 0) - 1
            if remaining > 0:
                self._df[term] = remaining
            else:
                self._df.pop(term, None)
            count += 1
        self.document_count = max(0, self.document_count - 1)
        self._distinct_terms_total = max(0, self._distinct_terms_total - count)

    # -- Lookups ---------------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (0 when unseen)."""
        return self._df.get(term, 0)

    def idf(self, term: str) -> float:
        """Inverse document frequency: ``ln(1 + N / df)``.

        Unseen terms get the maximum idf ``ln(1 + N)`` — they are rarer
        than anything observed, and a positive value keeps conjunctive
        scoring well-defined.
        """
        n = max(1, self.document_count)
        df = self._df.get(term, 0)
        if df == 0:
            return math.log(1.0 + n)
        return math.log(1.0 + n / df)

    def __contains__(self, term: str) -> bool:
        return term in self._df

    def __len__(self) -> int:
        return len(self._df)

    # -- Aggregates (Table 1) -----------------------------------------------------

    @property
    def unique_words(self) -> int:
        """Total distinct words across the corpus (Table 1, column 5)."""
        return len(self._df)

    @property
    def average_unique_words_per_document(self) -> float:
        """Average distinct words per document (Table 1, column 4)."""
        if self.document_count == 0:
            return 0.0
        return self._distinct_terms_total / self.document_count

    def terms(self) -> Iterable[str]:
        """Iterate over every known term."""
        return self._df.keys()

    def copy(self) -> "Vocabulary":
        """An independent snapshot of the current statistics."""
        dup = Vocabulary()
        dup._df = dict(self._df)
        dup.document_count = self.document_count
        dup._distinct_terms_total = self._distinct_terms_total
        return dup

    def merged_with(self, other: "Vocabulary") -> "Vocabulary":
        """A new vocabulary with both corpora's statistics summed.

        Documents are disjoint across the inputs (each object lives in
        exactly one shard), so document frequencies and counts add up to
        exactly the statistics of the combined corpus — the hook sharded
        execution uses to score with *global* idf values.
        """
        merged = Vocabulary()
        merged._df = dict(self._df)
        for term, df in other._df.items():
            merged._df[term] = merged._df.get(term, 0) + df
        merged.document_count = self.document_count + other.document_count
        merged._distinct_terms_total = (
            self._distinct_terms_total + other._distinct_terms_total
        )
        return merged
