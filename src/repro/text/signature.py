"""Signature files: superimposed coding [FC84].

A *signature* is a fixed-length bit vector.  Each word sets a small number
of bits (via independent hash functions); a document's signature is the
bitwise OR (superimposition) of its words' signatures, and a node's
signature superimposes everything below it.  The containment test

    ``document_signature & query_signature == query_signature``

never misses a true match (no false negatives) but can report *false
positives* — exactly the property the IR2-Tree exploits for subtree
pruning and then compensates for with the verification step on Line 21 of
the paper's Figure 8.

Two factories are provided:

* :class:`HashSignatureFactory` — the production scheme: ``bits_per_word``
  independent, deterministic, seeded BLAKE2b hashes per word, with a
  per-factory word cache so each vocabulary word is hashed once.
* :class:`ExactSignatureFactory` — one dedicated bit per vocabulary word:
  no false positives at all.  Used by tests to reproduce the paper's
  worked examples deterministically and by the false-positive ablation as
  the ground-truth reference.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SignatureLengthError


@dataclass(frozen=True)
class Signature:
    """An immutable bit-vector signature.

    Attributes:
        bits: the bit pattern as an arbitrary-precision integer (bit ``i``
            corresponds to position ``i``).
        length_bits: nominal width of the vector; ``bits`` always fits it.
    """

    bits: int
    length_bits: int

    def __post_init__(self) -> None:
        if self.length_bits < 0:
            raise SignatureLengthError(self.length_bits, self.length_bits)
        if self.bits < 0 or self.bits >> self.length_bits:
            raise SignatureLengthError(self.bits.bit_length(), self.length_bits)

    # -- Constructors ---------------------------------------------------------

    @staticmethod
    def empty(length_bits: int) -> "Signature":
        """The all-zero signature of the given width."""
        return Signature(0, length_bits)

    @staticmethod
    def from_bytes(data: bytes) -> "Signature":
        """Decode a signature from little-endian bytes."""
        return Signature(int.from_bytes(data, "little"), len(data) * 8)

    @staticmethod
    def superimpose_all(
        signatures: Iterable["Signature"], length_bits: int
    ) -> "Signature":
        """OR together any number of signatures of width ``length_bits``."""
        acc = 0
        for signature in signatures:
            if signature.length_bits != length_bits:
                raise SignatureLengthError(signature.length_bits, length_bits)
            acc |= signature.bits
        return Signature(acc, length_bits)

    # -- Operations -------------------------------------------------------------

    def superimpose(self, other: "Signature") -> "Signature":
        """Bitwise OR of two equal-width signatures."""
        if self.length_bits != other.length_bits:
            raise SignatureLengthError(self.length_bits, other.length_bits)
        return Signature(self.bits | other.bits, self.length_bits)

    def __or__(self, other: "Signature") -> "Signature":
        return self.superimpose(other)

    def matches(self, query: "Signature") -> bool:
        """Containment test: every bit of ``query`` is set in ``self``.

        The paper's "s matches w" check (Figure 8, lines 5 and 9).
        """
        if self.length_bits != query.length_bits:
            raise SignatureLengthError(self.length_bits, query.length_bits)
        return self.bits & query.bits == query.bits

    def weight(self) -> int:
        """Number of set bits (signature weight)."""
        return self.bits.bit_count()

    @property
    def length_bytes(self) -> int:
        """Width of the vector in whole bytes."""
        return (self.length_bits + 7) // 8

    def to_bytes(self) -> bytes:
        """Encode as little-endian bytes of the signature's byte width."""
        return self.bits.to_bytes(self.length_bytes, "little")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signature({self.length_bits} bits, weight={self.weight()})"


class SignatureFactory:
    """Interface: deterministic word -> signature mapping of fixed width."""

    #: Width of produced signatures in bits.
    length_bits: int

    @property
    def length_bytes(self) -> int:
        """Width of produced signatures in whole bytes."""
        return (self.length_bits + 7) // 8

    def for_word(self, word: str) -> Signature:
        """Signature of a single word."""
        raise NotImplementedError

    def for_words(self, words: Iterable[str]) -> Signature:
        """Superimposed signature of a word collection (a document)."""
        acc = 0
        for word in words:
            acc |= self.for_word(word).bits
        return Signature(acc, self.length_bits)

    def empty(self) -> Signature:
        """The all-zero signature at this factory's width."""
        return Signature.empty(self.length_bits)


class HashSignatureFactory(SignatureFactory):
    """Superimposed coding via seeded BLAKE2b multi-hashing.

    Each word sets ``bits_per_word`` (not necessarily distinct) bit
    positions derived from one 16-byte keyed hash.  The mapping is a pure
    function of ``(word, seed, length_bits, bits_per_word)``, so indexes
    are reproducible across runs and machines.

    Args:
        length_bytes: signature width in bytes (the paper sweeps 2-378).
        bits_per_word: bits set per word (``m`` in the design formulas).
        seed: hash seed; change to draw an independent signature scheme.
    """

    def __init__(self, length_bytes: int, bits_per_word: int = 3, seed: int = 0) -> None:
        if length_bytes <= 0:
            raise SignatureLengthError(length_bytes * 8, 0)
        if bits_per_word < 1:
            raise ValueError(f"bits_per_word must be >= 1, got {bits_per_word}")
        self.length_bits = length_bytes * 8
        self.bits_per_word = bits_per_word
        self.seed = seed
        self._cache: dict[str, int] = {}

    def for_word(self, word: str) -> Signature:
        bits = self._cache.get(word)
        if bits is None:
            bits = self._hash_word(word)
            self._cache[word] = bits
        return Signature(bits, self.length_bits)

    def _hash_word(self, word: str) -> int:
        digest = hashlib.blake2b(
            word.encode("utf-8"),
            digest_size=16,
            key=self.seed.to_bytes(8, "little"),
        ).digest()
        value = int.from_bytes(digest, "little")
        bits = 0
        for _ in range(self.bits_per_word):
            bits |= 1 << (value % self.length_bits)
            value //= self.length_bits
        return bits


class ExactSignatureFactory(SignatureFactory):
    """One dedicated bit per vocabulary word: zero false positives.

    Only practical for small vocabularies; used to reproduce the paper's
    worked examples (where pruning decisions are stated as facts) and as a
    ground-truth baseline in the false-positive ablation.

    Args:
        vocabulary: the closed set of words; width = its size.
        strict: raise on out-of-vocabulary words instead of mapping them
            to the empty signature.
    """

    def __init__(self, vocabulary: Sequence[str], strict: bool = False) -> None:
        ordered = sorted(set(vocabulary))
        self._slots = {word: i for i, word in enumerate(ordered)}
        # Round up to whole bytes so widths survive a disk round-trip
        # (signatures are stored as bytes in node entries).
        self.length_bits = 8 * max(1, -(-len(ordered) // 8))
        self.strict = strict

    def for_word(self, word: str) -> Signature:
        slot = self._slots.get(word)
        if slot is None:
            if self.strict:
                raise KeyError(f"word {word!r} not in signature vocabulary")
            return Signature(0, self.length_bits)
        return Signature(1 << slot, self.length_bits)
