"""Sequential signature file: the classic alternative to inverted files.

The paper's signature machinery descends from Faloutsos and
Christodoulakis's signature *files* [FC84]: a flat file holding one
fixed-length signature per document, scanned sequentially at query time.
Zobel et al. [ZMR98] (cited by the paper) is the classic comparison of
that organization against inverted files.  We include it as an extra
baseline for the keyword-filtering stage: it reads the whole (compact)
signature file with cheap *sequential* I/O, produces a candidate set with
false positives, and verifies candidates against the object store.

This is exactly the IR2-Tree's leaf level without the tree above it —
benchmarking it isolates how much the paper's contribution owes to the
spatial hierarchy versus to signatures alone.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from repro.errors import ObjectNotFoundError
from repro.storage.block import BlockDevice
from repro.text.analyzer import Analyzer
from repro.text.signature import HashSignatureFactory, Signature

#: Category label for signature-file accesses in IOStats.
SIGFILE_CATEGORY = "sigfile"

_PTR = struct.Struct("<I")


class SignatureFile:
    """Flat file of ``(object_pointer, signature)`` records.

    Args:
        device: block device holding the records.
        analyzer: tokenizer shared with the rest of the system.
        factory: signature scheme (length fixes the record size).
    """

    def __init__(
        self,
        device: BlockDevice,
        analyzer: Analyzer,
        factory: HashSignatureFactory,
    ) -> None:
        self.device = device
        self.analyzer = analyzer
        self.factory = factory
        self._record_size = _PTR.size + factory.length_bytes
        self._count = 0
        self._slot_by_pointer: dict[int, int] = {}

    # -- Construction -----------------------------------------------------------

    def build(self, documents: Iterable[tuple[int, str]]) -> None:
        """Append a signature record for every ``(pointer, text)`` pair."""
        for pointer, text in documents:
            self.add(pointer, text)

    def add(self, pointer: int, text: str) -> None:
        """Append one document's record (cheap: one record write)."""
        signature = self.factory.for_words(self.analyzer.terms(text))
        record = _PTR.pack(pointer) + signature.to_bytes()
        self._write_record(self._count, record)
        self._slot_by_pointer[pointer] = self._count
        self._count += 1

    def remove(self, pointer: int) -> None:
        """Tombstone a document's record (zeroed signature never matches
        a non-empty query)."""
        slot = self._slot_by_pointer.pop(pointer, None)
        if slot is None:
            raise ObjectNotFoundError(pointer)
        blank = _PTR.pack(0xFFFFFFFF) + bytes(self.factory.length_bytes)
        self._write_record(slot, blank)

    def _write_record(self, slot: int, record: bytes) -> None:
        offset = slot * self._record_size
        block_size = self.device.block_size
        first = offset // block_size
        last = (offset + len(record) - 1) // block_size
        pos = 0
        for block_id in range(first, last + 1):
            block_lo = block_id * block_size
            in_block = max(offset, block_lo) - block_lo
            take = min(block_size - in_block, len(record) - pos)
            if block_id < self.device.num_blocks:
                existing = bytearray(self.device._read_raw(block_id))
            else:
                existing = bytearray(block_size)
            existing[in_block : in_block + take] = record[pos : pos + take]
            self.device.write_block(block_id, bytes(existing), SIGFILE_CATEGORY)
            pos += take

    # -- Retrieval ---------------------------------------------------------------

    def candidates(self, keywords: Sequence[str]) -> list[int]:
        """Scan the whole file; return pointers whose signature covers the
        conjunctive query signature (includes false positives).

        The scan is one long extent read — almost entirely *sequential*
        accesses, the organization's selling point on spinning disks.
        """
        terms = self.analyzer.query_terms(keywords)
        query = self.factory.for_words(terms)
        if self._count == 0 or query.bits == 0:
            return []
        total_bytes = self._count * self._record_size
        blocks = self.device.blocks_needed(total_bytes)
        data = self.device.read_extent(0, blocks, SIGFILE_CATEGORY)
        matches: list[int] = []
        width = self.factory.length_bytes
        for slot in range(self._count):
            offset = slot * self._record_size
            (pointer,) = _PTR.unpack_from(data, offset)
            if pointer == 0xFFFFFFFF:
                continue  # tombstone
            signature = Signature.from_bytes(
                data[offset + _PTR.size : offset + _PTR.size + width]
            )
            if signature.matches(query):
                matches.append(pointer)
        return matches

    # -- Introspection -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slot_by_pointer)

    @property
    def size_bytes(self) -> int:
        """File footprint: every record slot (including tombstones)."""
        return self._count * self._record_size

    @property
    def size_mb(self) -> float:
        """File footprint in megabytes."""
        return self.size_bytes / (1024 * 1024)
