"""S-Tree: a dynamic balanced signature tree [Dep86].

Section VII: "we adopt the idea of an indexed descriptor file structure
[PBC80] (S-Tree [Dep86] is a variant of an indexed descriptor), which is
a tree where the lowest level consists of block signatures ... A group of
b signatures at the i-th level is superimposed together to form a
signature at the (i-1)-th level."

The IR²-Tree is exactly this idea grafted onto an R-Tree's *spatial*
grouping.  The S-Tree proper groups by **signature similarity** instead:
Insert descends toward the child whose signature needs the fewest new
bits (least weight increase), and an overfull node splits around the two
most dissimilar seed signatures.  Implementing it provides the paper's
intellectual ancestor as a keyword-only index, so benchmarks can separate
what the IR²-Tree owes to signatures-in-a-tree from what it owes to
spatial grouping.

The tree is disk-resident through the same
:class:`~repro.storage.pagestore.PageStore` machinery as the R-Tree
family (node images reuse the entry serialization with a degenerate
0-dimensional MBR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import TreeInvariantError
from repro.storage.pagestore import PageStore
from repro.storage.serialization import decode_node, encode_node
from repro.text.analyzer import Analyzer
from repro.text.signature import HashSignatureFactory, Signature

#: Default maximum entries per S-Tree node.
DEFAULT_NODE_CAPACITY = 32


@dataclass
class SEntry:
    """One S-Tree slot: a child reference and its signature.

    ``child_ref`` is a node id in internal nodes and an object pointer in
    leaves.
    """

    child_ref: int
    signature: Signature


@dataclass
class SNode:
    """One S-Tree node."""

    node_id: int
    level: int
    entries: list[SEntry] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def superimposed(self, length_bits: int) -> Signature:
        """OR of all entry signatures."""
        return Signature.superimpose_all(
            (entry.signature for entry in self.entries), length_bits
        )


class STree:
    """Dynamic balanced signature tree over ``(pointer, terms)`` documents.

    Args:
        pages: page store for node images.
        analyzer: shared tokenizer.
        factory: signature scheme (one fixed length, as in [Dep86]).
        capacity: maximum entries per node.
    """

    def __init__(
        self,
        pages: PageStore,
        analyzer: Analyzer,
        factory: HashSignatureFactory,
        capacity: int = DEFAULT_NODE_CAPACITY,
    ) -> None:
        if capacity < 2:
            raise TreeInvariantError(f"capacity must be >= 2, got {capacity}")
        self.pages = pages
        self.analyzer = analyzer
        self.factory = factory
        self.capacity = capacity
        self.height = 1
        self.size = 0
        root = SNode(pages.new_node_id(), 0)
        self.root_id = root.node_id
        self.store_node(root)

    # ------------------------------------------------------------------ I/O --

    def store_node(self, node: SNode) -> None:
        """Serialize and write one node (counted I/O)."""
        raw_entries = [
            (entry.child_ref, (), entry.signature.to_bytes())
            for entry in node.entries
        ]
        image = encode_node(
            node.node_id,
            node.level,
            node.is_leaf,
            0,  # no spatial dimensions
            self.factory.length_bytes,
            raw_entries,
        )
        self.pages.write(node.node_id, image)

    def load_node(self, node_id: int) -> SNode:
        """Read and decode one node (counted I/O)."""
        image = self.pages.read(node_id)
        _, level, _, _, raw_entries = decode_node(image, 0)
        entries = [
            SEntry(ref, Signature.from_bytes(sig)) for ref, _, sig in raw_entries
        ]
        return SNode(node_id, level, entries)

    # --------------------------------------------------------------- Insert --

    def insert(self, pointer: int, text: str) -> None:
        """Index one document."""
        signature = self.factory.for_words(self.analyzer.terms(text))
        self._insert_entry(SEntry(pointer, signature))
        self.size += 1

    def _insert_entry(self, entry: SEntry) -> None:
        path = self._choose_path(entry.signature)
        node = path[-1][0]
        node.entries.append(entry)
        sibling = self._split_if_needed(node)
        self.store_node(node)
        if sibling is not None:
            self.store_node(sibling)
        self._adjust(path, sibling)

    def _choose_path(self, signature: Signature) -> list[tuple[SNode, int]]:
        """Descend by least weight increase (the S-Tree criterion)."""
        node = self.load_node(self.root_id)
        path: list[tuple[SNode, int]] = []
        while not node.is_leaf:
            best_index = 0
            best_key = (float("inf"), float("inf"))
            for i, entry in enumerate(node.entries):
                grown = entry.signature.bits | signature.bits
                increase = (grown ^ entry.signature.bits).bit_count()
                key = (increase, entry.signature.weight())
                if key < best_key:
                    best_key = key
                    best_index = i
            path.append((node, best_index))
            node = self.load_node(node.entries[best_index].child_ref)
        path.append((node, -1))
        return path

    def _split_if_needed(self, node: SNode) -> SNode | None:
        if len(node.entries) <= self.capacity:
            return None
        group_a, group_b = self._split_entries(node.entries)
        node.entries = group_a
        return SNode(self.pages.new_node_id(), node.level, group_b)

    def _split_entries(
        self, entries: Sequence[SEntry]
    ) -> tuple[list[SEntry], list[SEntry]]:
        """Seed with the two most dissimilar signatures (max Hamming
        distance), then assign each entry to the seed needing fewer new
        bits, keeping groups at least quarter-full."""
        best_pair = (0, 1)
        best_distance = -1
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                distance = (
                    entries[i].signature.bits ^ entries[j].signature.bits
                ).bit_count()
                if distance > best_distance:
                    best_distance = distance
                    best_pair = (i, j)
        seed_a, seed_b = best_pair
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        bits_a = entries[seed_a].signature.bits
        bits_b = entries[seed_b].signature.bits
        min_fill = max(1, len(entries) // 4)
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        for index, entry in enumerate(rest):
            remaining = len(rest) - index
            if len(group_a) + remaining == min_fill:
                group_a.extend(rest[index:])
                break
            if len(group_b) + remaining == min_fill:
                group_b.extend(rest[index:])
                break
            grow_a = (entry.signature.bits | bits_a) ^ bits_a
            grow_b = (entry.signature.bits | bits_b) ^ bits_b
            if (grow_a.bit_count(), len(group_a)) <= (
                grow_b.bit_count(),
                len(group_b),
            ):
                group_a.append(entry)
                bits_a |= entry.signature.bits
            else:
                group_b.append(entry)
                bits_b |= entry.signature.bits
        return group_a, group_b

    def _adjust(self, path: list[tuple[SNode, int]], sibling: SNode | None) -> None:
        child = path[-1][0]
        for parent, child_index in reversed(path[:-1]):
            parent.entries[child_index].signature = child.superimposed(
                self.factory.length_bits
            )
            if sibling is not None:
                parent.entries.append(
                    SEntry(
                        sibling.node_id,
                        sibling.superimposed(self.factory.length_bits),
                    )
                )
            sibling = self._split_if_needed(parent)
            self.store_node(parent)
            if sibling is not None:
                self.store_node(sibling)
            child = parent
        if sibling is not None:
            new_root = SNode(self.pages.new_node_id(), child.level + 1)
            new_root.entries = [
                SEntry(child.node_id, child.superimposed(self.factory.length_bits)),
                SEntry(
                    sibling.node_id, sibling.superimposed(self.factory.length_bits)
                ),
            ]
            self.store_node(new_root)
            self.root_id = new_root.node_id
            self.height += 1

    # --------------------------------------------------------------- Search --

    def candidates(self, keywords: Sequence[str]) -> list[int]:
        """Object pointers whose signatures cover the conjunctive query.

        Prunes every subtree whose superimposed signature misses a query
        bit; the result still contains signature false positives and must
        be verified against the documents (as with every signature
        method).
        """
        terms = self.analyzer.query_terms(keywords)
        query = self.factory.for_words(terms)
        if query.bits == 0:
            return []
        matches: list[int] = []
        stack = [self.root_id]
        while stack:
            node = self.load_node(stack.pop())
            for entry in node.entries:
                if not entry.signature.matches(query):
                    continue
                if node.is_leaf:
                    matches.append(entry.child_ref)
                else:
                    stack.append(entry.child_ref)
        return sorted(matches)

    # ---------------------------------------------------------- Introspection --

    def _load_uncounted(self, node_id: int) -> SNode:
        """Load a node without charging I/O (validation/statistics only)."""
        stats = self.pages.device.stats
        snapshot = stats.snapshot()
        last = stats._last_block
        node = self.load_node(node_id)
        stats.random = snapshot.random
        stats.sequential = snapshot.sequential
        stats.by_category = snapshot.by_category
        stats._last_block = last
        return node

    def iter_nodes(self) -> Iterator[SNode]:
        """Yield every node (uncounted reads; for validation and stats)."""
        stack = [self.root_id]
        while stack:
            node = self._load_uncounted(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(entry.child_ref for entry in node.entries)

    def validate(self) -> None:
        """Check structural invariants (balance, coverage, fan-out)."""
        found = 0
        for node in self.iter_nodes():
            if len(node.entries) > self.capacity:
                raise TreeInvariantError(
                    f"S-Tree node {node.node_id} overfull: {len(node.entries)}"
                )
            if node.is_leaf:
                found += len(node.entries)
                continue
            for entry in node.entries:
                child = self._load_uncounted(entry.child_ref)
                if child.level != node.level - 1:
                    raise TreeInvariantError("S-Tree not height-balanced")
                child_sig = child.superimposed(self.factory.length_bits)
                if not entry.signature.matches(child_sig):
                    raise TreeInvariantError(
                        "parent signature does not cover child superimposition"
                    )
        if found != self.size:
            raise TreeInvariantError(
                f"S-Tree says size={self.size}, found {found}"
            )

    @property
    def size_bytes(self) -> int:
        """On-disk footprint in bytes."""
        return self.pages.size_bytes
