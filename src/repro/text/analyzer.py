"""Text analysis: turning documents into terms.

Section II treats ``T.t`` as a text document and queries as sets of
keywords; the Boolean containment test ``w in T.t`` is at the term level
("internet" matches "wireless Internet").  :class:`Analyzer` provides the
single tokenization pipeline used everywhere — object indexing, signature
generation, inverted-index construction, and query parsing — so that the
containment semantics are identical across all four algorithms.

Pipeline: Unicode-aware word extraction (letters+digits runs), lowercase
folding, optional minimum token length, optional stopword removal.
Stopwords are off by default: the paper gives no stopword list, and
removal would change the keyword-frequency distribution the experiments
depend on.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

_TOKEN_RE = re.compile(r"[^\W_]+", re.UNICODE)

#: A small English stopword list for applications that opt in.
DEFAULT_STOPWORDS = frozenset(
    """a an and are as at be by for from has he in is it its of on that the
    to was were will with""".split()
)


class Analyzer:
    """Configurable tokenizer shared by all indexing and query paths.

    Args:
        lowercase: fold tokens to lower case (the paper's example treats
            "Internet" and "internet" as the same keyword).
        min_token_length: drop tokens shorter than this many characters.
        stopwords: tokens to drop entirely, or ``None`` to keep everything.
    """

    def __init__(
        self,
        lowercase: bool = True,
        min_token_length: int = 1,
        stopwords: frozenset[str] | None = None,
    ) -> None:
        self.lowercase = lowercase
        self.min_token_length = min_token_length
        self.stopwords = stopwords

    def tokens(self, text: str) -> Iterator[str]:
        """Yield the token stream of ``text`` in document order."""
        for match in _TOKEN_RE.finditer(text):
            token = match.group(0)
            if self.lowercase:
                token = token.lower()
            if len(token) < self.min_token_length:
                continue
            if self.stopwords is not None and token in self.stopwords:
                continue
            yield token

    def terms(self, text: str) -> set[str]:
        """Distinct terms of ``text`` (the unit of signatures and postings)."""
        return set(self.tokens(text))

    def term_frequencies(self, text: str) -> dict[str, int]:
        """Term -> occurrence count map, plus the basis of document length."""
        frequencies: dict[str, int] = {}
        for token in self.tokens(text):
            frequencies[token] = frequencies.get(token, 0) + 1
        return frequencies

    def document_length(self, text: str) -> int:
        """Number of tokens in ``text`` (the ``dl`` of the IR model)."""
        return sum(1 for _ in self.tokens(text))

    def query_terms(self, keywords: Iterable[str]) -> list[str]:
        """Normalize query keywords through the same pipeline.

        Multi-word keywords are split; duplicates are removed while
        preserving first-seen order so signatures and scores are stable.
        """
        seen: dict[str, None] = {}
        for keyword in keywords:
            for token in self.tokens(keyword):
                seen.setdefault(token, None)
        return list(seen)

    def contains_all(self, text: str, keywords: Iterable[str]) -> bool:
        """Boolean keyword containment: every keyword appears in ``text``.

        This is the paper's ``Ans(Q_w)`` membership test and the false
        positive check on Line 21 of Figure 8.
        """
        needed = set(self.query_terms(keywords))
        if not needed:
            return True
        return needed.issubset(self.terms(text))


#: Analyzer instance with the library-wide default configuration.
DEFAULT_ANALYZER = Analyzer()
