"""Signature design: optimal lengths and false-positive analysis.

The paper sizes signatures with "the optimal signature length formula from
[MC94]" and builds the MIR2-Tree with longer signatures at higher levels
(multi-level superimposed coding [CS89, DR83]).  This module collects the
classic design mathematics of superimposed coding [FC84, MC94]:

For a signature of ``F`` bits, ``m`` bits set per word, and ``D`` distinct
words superimposed, the probability that an unrelated single-word query
signature is (falsely) covered is approximately::

    P_fp = (1 - e^(-m * D / F)) ** m

Minimizing over ``m`` for fixed ``F/D`` gives the textbook optimum
``m = F * ln(2) / D``, at which point half the bits are set and
``P_fp = 2 ** (-m)``.  Inverting: to achieve a target false-positive rate
``p`` one needs ``m = log2(1/p)`` bits per word and ``F = m * D / ln(2)``
bits total — the "optimal signature length formula" the paper cites.
"""

from __future__ import annotations

import math

#: ln(2), the constant of the optimal design point.
_LN2 = math.log(2.0)


def false_positive_probability(length_bits: int, distinct_words: int, bits_per_word: int) -> float:
    """Probability a random word's signature is covered by superimposition.

    Args:
        length_bits: signature width ``F``.
        distinct_words: number of distinct words ``D`` OR-ed together.
        bits_per_word: bits set per word ``m``.

    Uses the exact Bernoulli form ``(1 - (1 - 1/F)^(m*D))^m`` rather than
    the exponential approximation, so it stays accurate for tiny ``F``.
    """
    if length_bits <= 0:
        raise ValueError(f"length_bits must be positive, got {length_bits}")
    if distinct_words < 0 or bits_per_word < 1:
        raise ValueError("need distinct_words >= 0 and bits_per_word >= 1")
    if distinct_words == 0:
        return 0.0
    fill = 1.0 - (1.0 - 1.0 / length_bits) ** (bits_per_word * distinct_words)
    return fill**bits_per_word


def expected_weight_fraction(length_bits: int, distinct_words: int, bits_per_word: int) -> float:
    """Expected fraction of bits set after superimposing ``D`` words."""
    if distinct_words == 0:
        return 0.0
    return 1.0 - (1.0 - 1.0 / length_bits) ** (bits_per_word * distinct_words)


def optimal_bits_per_word(length_bits: int, distinct_words: int) -> int:
    """Optimal ``m`` for width ``F`` and ``D`` distinct words: ``F ln2 / D``.

    Returns at least 1.  At this value about half the signature's bits end
    up set, minimizing the false-positive probability for the given width.
    """
    if distinct_words <= 0:
        return 1
    return max(1, round(length_bits * _LN2 / distinct_words))


def optimal_length_bits(distinct_words: int, target_fp: float) -> int:
    """Optimal width ``F`` achieving false-positive rate <= ``target_fp``.

    The [MC94] design: ``m = log2(1/p)`` and ``F = m * D / ln 2``.
    """
    if not 0.0 < target_fp < 1.0:
        raise ValueError(f"target_fp must be in (0, 1), got {target_fp}")
    if distinct_words <= 0:
        return 8
    bits_per_word = max(1.0, math.log2(1.0 / target_fp))
    return max(8, math.ceil(bits_per_word * distinct_words / _LN2))


def optimal_length_bytes(distinct_words: int, target_fp: float) -> int:
    """:func:`optimal_length_bits` rounded up to whole bytes."""
    return -(-optimal_length_bits(distinct_words, target_fp) // 8)


def scaled_length_bytes(
    leaf_length_bytes: int, leaf_distinct_words: int, level_distinct_words: int
) -> int:
    """Width for an MIR2-Tree level, scaled from the leaf configuration.

    The multi-level design keeps the per-word bit count ``m`` fixed (it is
    chosen at the leaves) and scales the width proportionally to the
    number of distinct words a node at that level superimposes::

        F_level = F_leaf * D_level / D_leaf

    so that every level sits at the same optimal operating point (half the
    bits set) and the false-positive rate stays level-independent instead
    of exploding toward the root.
    """
    if leaf_length_bytes <= 0:
        raise ValueError(f"leaf length must be positive, got {leaf_length_bytes}")
    if leaf_distinct_words <= 0 or level_distinct_words <= 0:
        return leaf_length_bytes
    scaled = leaf_length_bytes * level_distinct_words / leaf_distinct_words
    return max(leaf_length_bytes, math.ceil(scaled))


def false_positive_rate_for_query(
    length_bits: int, distinct_words: int, bits_per_word: int, query_terms: int
) -> float:
    """False-positive probability of an ``m``-term conjunctive query.

    A query signature superimposes ``query_terms`` word signatures; all of
    its bits must be covered for a (false) match.  Approximating bit
    independence, that is the single-word probability raised to the number
    of query terms.
    """
    single = false_positive_probability(length_bits, distinct_words, bits_per_word)
    return single**query_terms
