"""Posting-list codecs: raw arrays and delta+varint compression.

The paper cites Navarro et al. [NMN+00], *Adding Compression to Block
Addressing Inverted Indexes* — the standard engineering move for the IIO
baseline's structure.  Two codecs are provided:

* :class:`RawCodec` — little-endian ``uint32`` per pointer (the layout
  the base experiments use; 4 bytes per posting, direct indexing).
* :class:`VarintCodec` — postings are sorted, so consecutive gaps are
  small; store the first pointer absolute and every subsequent one as a
  delta, each encoded as a LEB128 varint (7 payload bits per byte, high
  bit = continuation).  Dense lists compress toward ~1 byte/posting,
  which shrinks both the structure (Table 2's IIO column) and the blocks
  a retrieval must read.

Both codecs are self-inverse (`decode(encode(x)) == x` for any sorted
pointer list) and are property-tested against each other.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.errors import SerializationError

_PTR = struct.Struct("<I")


class PostingCodec:
    """Interface: sorted pointer list <-> bytes."""

    #: Identifier persisted in manifests and used by factories.
    name = "abstract"

    def encode(self, postings: Sequence[int]) -> bytes:
        """Serialize a sorted list of non-negative pointers."""
        raise NotImplementedError

    def decode(self, data: bytes, count: int) -> list[int]:
        """Inverse of :meth:`encode` (``count`` = number of postings)."""
        raise NotImplementedError


class RawCodec(PostingCodec):
    """Fixed-width uint32 postings (4 bytes each)."""

    name = "raw"

    def encode(self, postings: Sequence[int]) -> bytes:
        return b"".join(_PTR.pack(p) for p in postings)

    def decode(self, data: bytes, count: int) -> list[int]:
        if len(data) < 4 * count:
            raise SerializationError(
                f"raw posting data truncated: {len(data)} bytes for {count}"
            )
        return [_PTR.unpack_from(data, 4 * i)[0] for i in range(count)]


class VarintCodec(PostingCodec):
    """Delta + LEB128 varint compression for sorted postings."""

    name = "varint"

    def encode(self, postings: Sequence[int]) -> bytes:
        out = bytearray()
        previous = 0
        first = True
        for pointer in postings:
            if first:
                value = pointer
                first = False
            else:
                value = pointer - previous
                if value < 0:
                    raise SerializationError(
                        "varint codec requires sorted, unique postings"
                    )
            previous = pointer
            while True:
                byte = value & 0x7F
                value >>= 7
                if value:
                    out.append(byte | 0x80)
                else:
                    out.append(byte)
                    break
        return bytes(out)

    def decode(self, data: bytes, count: int) -> list[int]:
        postings: list[int] = []
        value = 0
        shift = 0
        current = 0
        for byte in data:
            if len(postings) >= count:
                break
            value |= (byte & 0x7F) << shift
            if byte & 0x80:
                shift += 7
                continue
            current = current + value if postings else value
            postings.append(current)
            value = 0
            shift = 0
        if len(postings) < count:
            raise SerializationError(
                f"varint posting data truncated: decoded {len(postings)} "
                f"of {count}"
            )
        return postings


_CODECS = {codec.name: codec for codec in (RawCodec(), VarintCodec())}


def get_codec(name: str) -> PostingCodec:
    """Look up a codec by name ("raw" or "varint")."""
    codec = _CODECS.get(name)
    if codec is None:
        raise SerializationError(f"unknown posting codec {name!r}")
    return codec
