"""Text substrate: analysis, signature files [FC84], inverted index, IR model."""

from repro.text.analyzer import DEFAULT_ANALYZER, DEFAULT_STOPWORDS, Analyzer
from repro.text.codecs import PostingCodec, RawCodec, VarintCodec, get_codec
from repro.text.inverted_index import POSTINGS_CATEGORY, InvertedIndex
from repro.text.irmodel import ir_score, tf_idf_score, upper_bound_ir_score
from repro.text.sigdesign import (
    expected_weight_fraction,
    false_positive_probability,
    false_positive_rate_for_query,
    optimal_bits_per_word,
    optimal_length_bits,
    optimal_length_bytes,
    scaled_length_bytes,
)
from repro.text.signature import (
    ExactSignatureFactory,
    HashSignatureFactory,
    Signature,
    SignatureFactory,
)
from repro.text.vocabulary import Vocabulary

__all__ = [
    "Analyzer",
    "DEFAULT_ANALYZER",
    "DEFAULT_STOPWORDS",
    "ExactSignatureFactory",
    "HashSignatureFactory",
    "InvertedIndex",
    "PostingCodec",
    "RawCodec",
    "VarintCodec",
    "POSTINGS_CATEGORY",
    "Signature",
    "SignatureFactory",
    "Vocabulary",
    "expected_weight_fraction",
    "false_positive_probability",
    "false_positive_rate_for_query",
    "get_codec",
    "ir_score",
    "optimal_bits_per_word",
    "optimal_length_bits",
    "optimal_length_bytes",
    "scaled_length_bytes",
    "tf_idf_score",
    "upper_bound_ir_score",
]
