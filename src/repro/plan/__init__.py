"""Cost-based adaptive query planning (the ``--index auto`` engine).

The benchmarks show a ~100x spread between index kinds on the same mixed
workload, with the winner flipping on keyword selectivity and query type:
rare keywords favor the inverted-index conjunction, frequent keywords
favor the distance-first trees, and ranked queries only run on the
signature trees at all.  This package holds the pieces that exploit that:

* :class:`~repro.plan.stats.PlannerStatistics` /
  :class:`~repro.plan.stats.DensityGrid` — keyword document frequencies,
  a coarse spatial histogram, and object-size samples.
* :mod:`repro.plan.cost` — per-strategy I/O cost estimators scalarized
  through the simulated drive model.
* :class:`~repro.plan.planner.QueryPlanner` — the router, with a plan
  cache keyed by query shape and per-strategy chosen/won counters.

The user-facing entry point is ``SpatialKeywordEngine(index="auto")``
(see :class:`repro.core.indexes.AutoIndex`), which builds one structure
per candidate strategy over the same corpus and routes each query — and
each shard sub-query, under :class:`repro.shard.ShardedEngine` — through
the planner.  See ``docs/PLANNER.md``.
"""

from repro.plan.cost import CostEstimate, estimate_iio, estimate_signature_scan, estimate_tree
from repro.plan.planner import PlanDecision, QueryPlanner, attach_planner_metrics
from repro.plan.stats import DensityGrid, PlannerStatistics

__all__ = [
    "CostEstimate",
    "DensityGrid",
    "PlanDecision",
    "PlannerStatistics",
    "QueryPlanner",
    "attach_planner_metrics",
    "estimate_iio",
    "estimate_signature_scan",
    "estimate_tree",
]
