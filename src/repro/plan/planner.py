"""The cost-based planner: route each query to the cheapest strategy.

:class:`QueryPlanner` holds one index instance per candidate strategy
(all built over the same shared corpus), asks each for a
:class:`~repro.plan.cost.CostEstimate` via its ``estimate_cost`` hook,
and picks the cheapest under the simulated drive model.  Decisions are
deterministic: ties break by candidate declaration order, and the plan
cache can only skip recomputation — identical statistics and query shape
always produce the identical :class:`PlanDecision`.

The **plan cache** is keyed by *query shape* — query class (point /
area / ranked), the sorted normalized keyword set, and ``k`` — not by the
query point: the cost model itself is location-independent for point
queries (selectivity and k drive the estimate), so one entry serves every
location asking the same question.  Area queries additionally key on the
density-grid cells the area overlaps.  Every entry remembers the
statistics version it was computed under and is dropped once inserts or
deletes move it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Mapping

from repro.errors import QueryError
from repro.plan.cost import CostEstimate
from repro.plan.stats import PlannerStatistics
from repro.storage.timing import DEFAULT_DRIVE, DriveModel


@dataclass(frozen=True)
class PlanDecision:
    """One routing decision: the chosen strategy and every alternative."""

    strategy: str
    query_class: str
    estimates: Mapping[str, CostEstimate]
    cost_ms: float
    stats_version: int
    cached: bool = False
    forced: bool = False

    def as_dict(self, drive: DriveModel = DEFAULT_DRIVE) -> dict:
        """JSON-ready payload recorded on the :class:`QueryExecution`."""
        return {
            "strategy": self.strategy,
            "query_class": self.query_class,
            "estimated_cost_ms": round(self.cost_ms, 4),
            "cached": self.cached,
            "forced": self.forced,
            "stats_version": self.stats_version,
            "estimates": {
                kind: estimate.as_dict(drive)
                for kind, estimate in self.estimates.items()
            },
        }


class QueryPlanner:
    """Pick the cheapest execution strategy for each query.

    Args:
        candidates: strategy name -> index instance exposing
            ``estimate_cost(query, stats)``; declaration order is the
            deterministic tie-break order.
        stats: the shared :class:`PlannerStatistics`.
        metrics: optional :class:`repro.obs.MetricsRegistry`; receives
            ``planner.chosen.<strategy>`` / ``planner.won.<strategy>`` /
            ``planner.lost.<strategy>`` counters plus plan-cache hit and
            miss counts.  :class:`repro.serve.QueryService` attaches its
            own registry when the planner has none.
        cache_capacity: LRU plan-cache entries (0 disables caching).
        drive: drive model used to scalarize estimates.
    """

    def __init__(
        self,
        candidates: Mapping[str, object],
        stats: PlannerStatistics,
        metrics=None,
        cache_capacity: int = 512,
        drive: DriveModel = DEFAULT_DRIVE,
    ) -> None:
        if not candidates:
            raise QueryError("planner needs at least one candidate strategy")
        self.candidates = dict(candidates)
        self.stats = stats
        self.metrics = metrics
        self.drive = drive
        self.cache_capacity = cache_capacity
        #: Pin every decision to one strategy (None routes freely).  Set
        #: to a candidate name to force, e.g. for debugging a workload.
        self.force: str | None = None
        self._cache: OrderedDict[tuple, PlanDecision] = OrderedDict()
        self._lock = threading.Lock()

    # -- Decisions --------------------------------------------------------------

    def query_class(self, query) -> str:
        if query.ranking is not None:
            return "ranked"
        if query.area is not None:
            return "area"
        return "point"

    def shape_key(self, query) -> tuple:
        """Cache key: everything the cost model reads except the point."""
        terms = tuple(sorted(self.stats.analyzer.query_terms(query.keywords)))
        area_key: tuple = ()
        if query.area is not None:
            grid = self.stats.grid
            if grid is not None:
                area_key = grid.cell_range(query.area)
            else:
                area_key = (tuple(query.area.lo), tuple(query.area.hi))
        return (self.query_class(query), terms, query.k, area_key, self.force)

    def decide(self, query) -> PlanDecision:
        """The routing decision for ``query`` (cached by query shape)."""
        key = self.shape_key(query)
        version = self.stats.version
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None and hit.stats_version == version:
                self._cache.move_to_end(key)
                self._count("planner.cache.hits")
                return replace(hit, cached=True)
        self._count("planner.cache.misses")
        decision = self._compute(query, version)
        if self.cache_capacity > 0:
            with self._lock:
                self._cache[key] = decision
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_capacity:
                    self._cache.popitem(last=False)
        return decision

    def _compute(self, query, version: int) -> PlanDecision:
        estimates: dict[str, CostEstimate] = {}
        for kind, index in self.candidates.items():
            estimate = index.estimate_cost(query, self.stats)
            if estimate is not None:
                estimates[kind] = estimate
        if not estimates:
            raise QueryError(
                f"no candidate strategy among {sorted(self.candidates)} "
                f"can execute a {self.query_class(query)} query"
            )
        forced = self.force is not None and self.force in estimates
        if forced:
            chosen = self.force
        else:
            # min() keeps the first of equal costs: candidate order is
            # the deterministic tie-break.
            chosen = min(estimates, key=lambda kind: estimates[kind].cost_ms(self.drive))
        return PlanDecision(
            strategy=chosen,
            query_class=self.query_class(query),
            estimates=estimates,
            cost_ms=estimates[chosen].cost_ms(self.drive),
            stats_version=version,
            forced=forced,
        )

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    # -- Accounting -------------------------------------------------------------

    def observe(self, decision: PlanDecision, actual_cost_ms: float) -> None:
        """Record a decision's outcome in the metrics registry.

        A decision *won* when the chosen strategy's **actual** simulated
        cost stayed at or below the cheapest **estimated** alternative —
        i.e. hindsight does not indict the choice.
        """
        m = self.metrics
        if m is None:
            return
        m.counter("planner.queries").inc()
        m.counter(f"planner.chosen.{decision.strategy}").inc()
        alternatives = [
            estimate.cost_ms(self.drive)
            for kind, estimate in decision.estimates.items()
            if kind != decision.strategy
        ]
        if not alternatives or actual_cost_ms <= min(alternatives) + 1e-9:
            m.counter(f"planner.won.{decision.strategy}").inc()
        else:
            m.counter(f"planner.lost.{decision.strategy}").inc()

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- Introspection ----------------------------------------------------------

    def explain(self, query) -> dict:
        """Full per-strategy breakdown for ``repro plan explain``."""
        decision = self.decide(query)
        terms = self.stats.analyzer.query_terms(query.keywords)
        return {
            "decision": decision.as_dict(self.drive),
            "statistics": {
                **self.stats.as_dict(),
                "query_terms": {
                    term: self.stats.document_frequency(term) for term in terms
                },
                "selectivity": self.stats.selectivity(terms),
            },
        }


def attach_planner_metrics(engine, metrics) -> int:
    """Point every planner under ``engine`` at ``metrics``; count attached.

    Walks the single-engine index and, for sharded engines, every shard's
    index.  Planners that already have a registry keep it.
    """
    indexes = []
    index = getattr(engine, "index", None)
    if index is not None:
        indexes.append(index)
    for shard in getattr(engine, "shards", None) or []:
        indexes.append(shard.index)
    attached = 0
    for candidate in indexes:
        planner = getattr(candidate, "planner", None)
        if planner is not None and planner.metrics is None:
            planner.metrics = metrics
            attached += 1
    return attached
