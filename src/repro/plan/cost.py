"""I/O cost model: price one query under each execution strategy.

Every estimator returns a :class:`CostEstimate` — expected random reads,
sequential reads, and object loads — which the planner scalarizes into
milliseconds with the same :class:`~repro.storage.timing.DriveModel` the
benchmarks report, so "cheapest plan" and "fastest simulated query" are
the same ordering.

The estimators mirror how each algorithm actually spends I/O:

* **IIO** (Section V.A, Figure 7): one random access per posting list
  plus a sequential access for every further block it spans — exact,
  because the lexicon records each list's byte extent — then one object
  load per expected intersection member.  An absent keyword
  short-circuits the whole conjunction at zero I/O, exactly like
  :meth:`~repro.text.inverted_index.InvertedIndex.retrieve_conjunction`.
* **Tree kinds** (Sections III-V): the distance-first search scans
  candidates in distance order until ``k`` true matches are found —
  about ``k / selectivity`` candidates.  A plain R-Tree loads every
  scanned candidate; signature-bearing trees load only true matches plus
  the false-positive fraction given by the [MC94] design formulas.  Node
  reads follow from the scanned fraction of leaves plus the root path.
* **SIG**: the signature file is always read end to end (sequential),
  then matches plus false positives are loaded and verified.

These are *estimates* under independence and uniformity assumptions; the
differential suite guarantees that a wrong pick can only cost I/O, never
answer correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.timing import DEFAULT_DRIVE, DriveModel

#: Ranked traversal explores by combined score instead of stopping at the
#: k-th distance; it inspects more of the tree than the distance-first
#: scan for the same k (Section V.C's "no modification" algorithm still
#: pays for the weaker stopping rule).
RANKED_SCAN_INFLATION = 1.5

#: Bulk-loaded nodes are filled to ~70% of capacity (builder default).
LEAF_FILL = 0.7


@dataclass(frozen=True)
class CostEstimate:
    """Expected I/O of answering one query with one strategy."""

    random_reads: float
    sequential_reads: float
    objects_loaded: float
    details: dict = field(default_factory=dict)

    def cost_ms(self, drive: DriveModel = DEFAULT_DRIVE) -> float:
        """Scalar cost: simulated drive time of the expected accesses."""
        return (
            self.random_reads * drive.random_access_ms
            + self.sequential_reads * drive.sequential_access_ms
        )

    def as_dict(self, drive: DriveModel = DEFAULT_DRIVE) -> dict:
        payload = {
            "random_reads": round(self.random_reads, 2),
            "sequential_reads": round(self.sequential_reads, 2),
            "objects_loaded": round(self.objects_loaded, 2),
            "cost_ms": round(self.cost_ms(drive), 4),
        }
        if self.details:
            payload["details"] = {
                key: (round(value, 6) if isinstance(value, float) else value)
                for key, value in self.details.items()
            }
        return payload


def _object_load_io(count: float, stats) -> tuple[float, float]:
    """(random, sequential) reads for ``count`` object-store loads."""
    blocks = max(1.0, stats.avg_blocks_per_object)
    return count, count * (blocks - 1.0)


def _expected_scan(query, stats, terms) -> tuple[float, float]:
    """(candidates scanned, selectivity) for a distance-first traversal.

    The traversal inspects candidates in distance order and stops once
    ``k`` true matches are drained, so it expects to touch about
    ``k / selectivity`` candidates.  For an area query the density grid
    refines this: objects inside the area come first (all of them are
    scanned if the area alone cannot fill ``k``), then the search widens
    outward at the global selectivity.
    """
    n = stats.document_count
    selectivity = stats.selectivity(terms)
    if n == 0:
        return 0.0, selectivity
    if selectivity <= 0.0:
        # Provably empty conjunction: the tree still descends wherever
        # node signatures (or plain MBBs) fail to prune; charge a full
        # scan and let the signature fp rate shrink the object loads.
        return float(n), 0.0
    scan = query.k / selectivity
    if query.area is not None:
        in_area = stats.area_count(query.area)
        if in_area is not None:
            expected_inside = in_area * selectivity
            if expected_inside >= query.k:
                scan = query.k / selectivity
            else:
                # Exhaust the area, then widen for the remainder.
                scan = in_area + (query.k - expected_inside) / selectivity
    return min(float(n), scan), selectivity


def estimate_iio(inverted, query, stats) -> CostEstimate:
    """Price the inverted-index conjunction (Figure 7).

    ``inverted`` is the :class:`~repro.text.inverted_index.InvertedIndex`;
    its lexicon gives each posting list's exact byte extent without I/O.
    """
    terms = stats.analyzer.query_terms(query.keywords)
    block_size = inverted.device.block_size
    n = stats.document_count
    random_reads = sequential_reads = 0.0
    frequencies = [inverted.document_frequency(term) for term in terms]
    if min(frequencies, default=0) > 0:
        for term in terms:
            offset, length, _ = inverted._lexicon[term]
            first = offset // block_size
            last = (offset + length - 1) // block_size if length else first
            random_reads += 1.0
            sequential_reads += float(last - first)
        selectivity = stats.selectivity(terms)
        matches = n * selectivity
        load_random, load_sequential = _object_load_io(matches, stats)
        random_reads += load_random
        sequential_reads += load_sequential
        objects = matches
    else:
        # An absent keyword short-circuits before any list is read.
        selectivity = 0.0
        objects = 0.0
    return CostEstimate(
        random_reads,
        sequential_reads,
        objects,
        details={"selectivity": selectivity, "terms": len(terms)},
    )


def estimate_tree(index, query, stats) -> CostEstimate:
    """Price a distance-first (or ranked) traversal of a tree index.

    ``index`` is any :class:`~repro.core.indexes._TreeIndex`; its
    ``_query_false_positive_rate`` hook supplies the signature design's
    query-level false-positive probability (1.0 for a plain R-Tree,
    which verifies every candidate).
    """
    terms = stats.analyzer.query_terms(query.keywords)
    n = stats.document_count
    if n == 0:
        return CostEstimate(0.0, 0.0, 0.0, details={"selectivity": 0.0})
    scan, selectivity = _expected_scan(query, stats, terms)
    fp_rate = index._query_false_positive_rate(len(terms), stats)
    if query.ranking is not None:
        scan = min(float(n), scan * RANKED_SCAN_INFLATION)
    # Candidate entries come from leaves; entries whose signature fails
    # are skipped without an object load.
    true_matches = min(float(query.k), n * selectivity)
    objects = true_matches + fp_rate * max(0.0, scan - true_matches)
    tree = index.tree
    leaf_fill = max(1.0, (tree.capacity or 1) * LEAF_FILL)
    height = max(1, tree.height)
    nodes = (height - 1) + scan / leaf_fill
    load_random, load_sequential = _object_load_io(objects, stats)
    return CostEstimate(
        nodes + load_random,
        load_sequential,
        objects,
        details={
            "selectivity": selectivity,
            "expected_scan": scan,
            "fp_rate": fp_rate,
            "nodes": nodes,
        },
    )


def estimate_signature_scan(sigfile, query, stats) -> CostEstimate:
    """Price the sequential signature-file scan baseline."""
    from repro.text.sigdesign import false_positive_rate_for_query

    terms = stats.analyzer.query_terms(query.keywords)
    n = stats.document_count
    block_size = sigfile.device.block_size
    scan_blocks = max(1.0, sigfile.size_bytes / block_size) if n else 0.0
    selectivity = stats.selectivity(terms)
    fp_rate = false_positive_rate_for_query(
        sigfile.factory.length_bits,
        max(1, round(stats.avg_distinct_terms)),
        sigfile.factory.bits_per_word,
        max(1, len(terms)),
    )
    matches = n * selectivity
    objects = matches + fp_rate * max(0.0, n - matches)
    load_random, load_sequential = _object_load_io(objects, stats)
    return CostEstimate(
        (1.0 if scan_blocks else 0.0) + load_random,
        max(0.0, scan_blocks - 1.0) + load_sequential,
        objects,
        details={"selectivity": selectivity, "fp_rate": fp_rate},
    )
