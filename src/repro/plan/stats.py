"""Planner statistics: keyword frequencies and a coarse density grid.

The cost model (:mod:`repro.plan.cost`) prices each execution strategy
from three lightweight statistics, all cheap enough to keep exact:

* **Keyword document frequencies** come straight from the corpus
  :class:`~repro.text.vocabulary.Vocabulary`, which is already maintained
  live on every add/delete — the planner never recounts anything, so its
  frequencies match a ground-truth recount by construction.
* **Spatial density** is a coarse d-dimensional grid histogram
  (:class:`DensityGrid`, ~16 cells per dimension) fitted to the data
  extent at build time and maintained exactly on inserts and deletes.
  Area queries use it to estimate how many objects fall inside the query
  rectangle; QDR-Tree-style keyword summaries per spatial region are the
  same idea one refinement further.
* **Object size** — the average number of blocks one object load costs —
  is sampled at (re)build time from the object store layout.

A monotonically increasing :attr:`PlannerStatistics.version` stamps every
mutation; plan-cache entries carry the version they were computed under
and are discarded when it moves, so cached decisions never outlive the
statistics that justified them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.spatial.geometry import Rect


class DensityGrid:
    """Coarse spatial histogram: object counts per grid cell.

    The extent is frozen when the grid is fitted; later points outside it
    are clamped into the nearest edge cell, which keeps maintenance exact
    (every live object is counted in exactly one cell) at the price of
    edge cells over-representing out-of-extent growth — acceptable for a
    planner that only needs order-of-magnitude area selectivities.
    """

    def __init__(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        cells_per_dim: int,
    ) -> None:
        if cells_per_dim < 1:
            raise ValueError(f"cells_per_dim must be >= 1, got {cells_per_dim}")
        self.lo = tuple(float(c) for c in lo)
        self.hi = tuple(float(c) for c in hi)
        self.dims = len(self.lo)
        self.cells_per_dim = cells_per_dim
        # Degenerate extents (single point, empty dimension) get width 1
        # so cell arithmetic stays well-defined.
        self.widths = tuple(
            (h - l) / cells_per_dim if h > l else 1.0
            for l, h in zip(self.lo, self.hi)
        )
        self.counts = [0] * (cells_per_dim**self.dims)
        self.total = 0

    @classmethod
    def fit(
        cls, points: Iterable[Sequence[float]], cells_per_dim: int = 16
    ) -> "DensityGrid | None":
        """Fit a grid to the points' extent and count them in; None if empty."""
        points = list(points)
        if not points:
            return None
        dims = len(points[0])
        lo = [min(p[d] for p in points) for d in range(dims)]
        hi = [max(p[d] for p in points) for d in range(dims)]
        grid = cls(lo, hi, cells_per_dim)
        for point in points:
            grid.add(point)
        return grid

    def _axis_cell(self, value: float, dim: int) -> int:
        cell = int((value - self.lo[dim]) / self.widths[dim])
        return min(max(cell, 0), self.cells_per_dim - 1)

    def cell_of(self, point: Sequence[float]) -> int:
        """Flat cell index holding ``point`` (clamped to the extent)."""
        index = 0
        for dim in range(self.dims):
            index = index * self.cells_per_dim + self._axis_cell(point[dim], dim)
        return index

    def add(self, point: Sequence[float]) -> None:
        self.counts[self.cell_of(point)] += 1
        self.total += 1

    def remove(self, point: Sequence[float]) -> None:
        """Uncount one object; exact inverse of :meth:`add`.

        Removing from an empty cell is a caller bug (a delete that never
        removed anything, or a point that was never added): silently
        clamping would desynchronize ``total`` from ``sum(counts)`` and
        skew every later :meth:`count_in` selectivity, so it raises.

        Raises:
            ValueError: when the point's cell holds no objects.
        """
        cell = self.cell_of(point)
        if self.counts[cell] <= 0:
            raise ValueError(
                f"density grid underflow: cell {cell} is empty "
                f"(point {tuple(point)} was never counted)"
            )
        self.counts[cell] -= 1
        self.total -= 1

    def cell_range(self, rect: Rect) -> tuple[tuple[int, int], ...]:
        """Per-dimension (first, last) cell indexes overlapping ``rect``."""
        return tuple(
            (self._axis_cell(rect.lo[d], d), self._axis_cell(rect.hi[d], d))
            for d in range(self.dims)
        )

    def count_in(self, rect: Rect) -> float:
        """Estimated number of objects inside ``rect``.

        Cells fully inside contribute their whole count; boundary cells
        contribute proportionally to the overlapped volume fraction
        (assuming uniform density within a cell).
        """
        ranges = self.cell_range(rect)

        def walk(dim: int, base: int, fraction: float) -> float:
            if fraction <= 0.0:
                return 0.0
            if dim == self.dims:
                return self.counts[base] * fraction
            first, last = ranges[dim]
            total = 0.0
            for cell in range(first, last + 1):
                cell_lo = self.lo[dim] + cell * self.widths[dim]
                cell_hi = cell_lo + self.widths[dim]
                overlap = min(rect.hi[dim], cell_hi) - max(rect.lo[dim], cell_lo)
                cover = min(1.0, max(0.0, overlap / self.widths[dim]))
                total += walk(
                    dim + 1, base * self.cells_per_dim + cell, fraction * cover
                )
            return total

        return walk(0, 0, 1.0)

    def as_dict(self) -> dict:
        """JSON-ready summary (bounds and occupancy, not the full array)."""
        occupied = sum(1 for c in self.counts if c)
        return {
            "lo": list(self.lo),
            "hi": list(self.hi),
            "cells_per_dim": self.cells_per_dim,
            "total": self.total,
            "occupied_cells": occupied,
        }


class PlannerStatistics:
    """The statistics bundle every cost estimate reads.

    Args:
        corpus: the shared :class:`~repro.core.corpus.Corpus`; keyword
            document frequencies are served directly from its live
            vocabulary.
        cells_per_dim: density-grid resolution per dimension.
    """

    def __init__(self, corpus, cells_per_dim: int = 16) -> None:
        self.corpus = corpus
        self.cells_per_dim = cells_per_dim
        self.grid: DensityGrid | None = None
        self.avg_blocks_per_object = 1.0
        #: Bumped on every rebuild/insert/delete; plan-cache entries
        #: computed under an older version are discarded.
        self.version = 0

    # -- Maintenance ------------------------------------------------------------

    def rebuild(self) -> None:
        """Refit the density grid and object-size sample (at index build)."""
        points = [obj.point for obj in self.corpus.objects()]
        self.grid = DensityGrid.fit(points, self.cells_per_dim)
        store = self.corpus.store
        pointers = [pointer for pointer, _ in self.corpus.iter_items()]
        if pointers:
            blocks = sum(store.blocks_for(pointer) for pointer in pointers)
            self.avg_blocks_per_object = max(1.0, blocks / len(pointers))
        else:
            self.avg_blocks_per_object = 1.0
        self.version += 1

    def note_insert(self, obj) -> None:
        """Account one live insert (document frequencies update upstream)."""
        if self.grid is not None:
            self.grid.add(obj.point)
        self.version += 1

    def note_delete(self, obj) -> None:
        """Account one live delete."""
        if self.grid is not None:
            self.grid.remove(obj.point)
        self.version += 1

    # -- Lookups ----------------------------------------------------------------

    @property
    def analyzer(self):
        return self.corpus.analyzer

    @property
    def document_count(self) -> int:
        return self.corpus.vocabulary.document_count

    @property
    def avg_distinct_terms(self) -> float:
        """Average distinct terms per document (signature fp input)."""
        return self.corpus.vocabulary.average_unique_words_per_document

    def document_frequency(self, term: str) -> int:
        return self.corpus.vocabulary.document_frequency(term)

    def selectivity(self, terms: Sequence[str]) -> float:
        """Estimated fraction of documents containing *all* ``terms``.

        Independence assumption: the product of per-term frequencies.
        Any zero-frequency term makes the conjunction provably empty.
        """
        n = self.document_count
        if n == 0:
            return 0.0
        result = 1.0
        for term in terms:
            result *= self.document_frequency(term) / n
            if result == 0.0:
                return 0.0
        return result

    def area_count(self, rect: Rect) -> float | None:
        """Estimated objects inside ``rect``; None without a fitted grid."""
        if self.grid is None:
            return None
        return self.grid.count_in(rect)

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "documents": self.document_count,
            "avg_distinct_terms": round(self.avg_distinct_terms, 3),
            "avg_blocks_per_object": round(self.avg_blocks_per_object, 3),
            "grid": self.grid.as_dict() if self.grid is not None else None,
        }
