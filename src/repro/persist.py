"""Engine persistence: save a built system to disk and reopen it.

The paper's indexes are disk resident; a production deployment also needs
them to *survive restarts*.  :func:`save_engine` writes an engine's block
devices verbatim plus a JSON manifest of the in-memory bookkeeping (page
directory, object pointers, tree shape, index configuration), and
:func:`load_engine` reconstructs an equivalent engine — queries,
insertions, and deletions continue exactly where they left off.

Layout of a saved single engine directory::

    manifest.json    configuration + directory state
    objects.dat      the plain-text object file's blocks
    index.dat        the index structure's blocks

A :class:`~repro.shard.ShardedEngine` saves as a manifest-of-manifests
(format version 2): a top-level ``manifest.json`` carrying the fitted
partitioner, the oid→shard routing table, and each partition's bounding
box, plus one complete single-engine layout per shard::

    manifest.json    {"sharded": true, partitioner, shard_of, mbbs, ...}
    shard-000/       a full single-engine directory
    shard-001/
    ...

Devices are reloaded into memory by default (matching the engine's
default backend); the block images are identical either way because both
backends share one serialization.
"""

from __future__ import annotations

import json
import os

from repro.core.engine import SpatialKeywordEngine
from repro.core.indexes import (
    IIOIndex,
    IR2Index,
    MIR2Index,
    RTreeIndex,
    SignatureFileIndex,
)
from repro.errors import DatasetError
from repro.shard.engine import ShardedEngine
from repro.shard.partitioner import partitioner_from_dict
from repro.spatial.geometry import Rect
from repro.storage.block import BlockDevice, InMemoryBlockDevice

#: Manifest format version (bump on incompatible layout changes).
#: Version 2 added sharded layouts; single-engine layouts are unchanged,
#: so version-1 directories still load.
MANIFEST_VERSION = 2

_SUPPORTED_VERSIONS = frozenset({1, 2})

_MANIFEST = "manifest.json"
_OBJECTS = "objects.dat"
_INDEX = "index.dat"


def save_engine(
    engine: SpatialKeywordEngine | ShardedEngine, directory: str
) -> str:
    """Persist a built engine (single or sharded); returns the manifest path.

    Raises:
        DatasetError: when the engine has not been built yet.
    """
    if isinstance(engine, ShardedEngine):
        return _save_sharded(engine, directory)
    return _save_single(engine, directory)


def load_engine(directory: str) -> SpatialKeywordEngine | ShardedEngine:
    """Reopen an engine saved by :func:`save_engine`.

    Returns a :class:`~repro.shard.ShardedEngine` when the directory holds
    a sharded layout, a plain :class:`SpatialKeywordEngine` otherwise.
    """
    manifest = _read_manifest(directory)
    if manifest.get("sharded"):
        return _load_sharded(manifest, directory)
    return _load_single(manifest, directory)


def _read_manifest(directory: str) -> dict:
    path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(path):
        raise DatasetError(f"no engine manifest at {path}")
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("version") not in _SUPPORTED_VERSIONS:
        raise DatasetError(
            f"unsupported manifest version {manifest.get('version')!r}"
        )
    return manifest


# ---------------------------------------------------------------------------
# Single engines
# ---------------------------------------------------------------------------


def _save_single(engine: SpatialKeywordEngine, directory: str) -> str:
    if not engine.index.built:
        raise DatasetError("cannot save an engine before build()")
    os.makedirs(directory, exist_ok=True)
    _dump_device(engine.corpus.device, os.path.join(directory, _OBJECTS))
    _dump_device(engine.index.device, os.path.join(directory, _INDEX))
    manifest = {
        "version": MANIFEST_VERSION,
        "block_size": engine.corpus.device.block_size,
        "index_kind": engine.index_kind,
        "dims": engine.corpus.dims,
        "pointers": {str(oid): ptr for oid, ptr in engine._pointers.items()},
        "store": {
            "end": engine.corpus.store._end,
            "count": engine.corpus.store._count,
        },
        "index": _index_state(engine.index),
    }
    path = os.path.join(directory, _MANIFEST)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return path


def _load_single(manifest: dict, directory: str) -> SpatialKeywordEngine:
    state = manifest["index"]
    engine = SpatialKeywordEngine(
        index=manifest["index_kind"],
        signature_bytes=state.get("signature_bytes", 16),
        bits_per_word=state.get("bits_per_word", 3),
        block_size=manifest["block_size"],
        seed=state.get("seed", 0),
        capacity=state.get("capacity"),
        compression=state.get("compression", "raw"),
    )
    # --- Object file + corpus bookkeeping. ---
    _load_device(
        engine.corpus.device, os.path.join(directory, _OBJECTS),
        manifest["block_size"],
    )
    store = engine.corpus.store
    store._end = manifest["store"]["end"]
    store._count = manifest["store"]["count"]
    store._pointers = {
        int(oid): ptr for oid, ptr in manifest["pointers"].items()
    }
    engine._pointers = dict(store._pointers)
    engine.corpus._dims = manifest["dims"]
    # Vocabulary statistics are a pure function of the stored documents.
    for _, obj in store.iter_objects():
        engine.corpus.vocabulary.add_document(engine.corpus.analyzer.terms(obj.text))
    # --- Index structure. ---
    # For tree indexes the tree object must exist *before* the device
    # image is loaded: constructing it writes a bootstrap root, which the
    # wholesale device reload then replaces with the saved blocks.
    if not isinstance(engine.index, (IIOIndex, SignatureFileIndex)):
        if isinstance(engine.index, MIR2Index):
            engine.index.level_lengths = [int(v) for v in state["level_lengths"]]
        engine.index.capacity = state["capacity"]
        engine.index.tree = engine.index._make_tree()
    _load_device(
        engine.index.device, os.path.join(directory, _INDEX),
        manifest["block_size"],
    )
    _restore_index_state(engine.index, state)
    engine.index.built = True
    return engine


# ---------------------------------------------------------------------------
# Sharded engines
# ---------------------------------------------------------------------------


def _shard_dirname(shard_id: int) -> str:
    return f"shard-{shard_id:03d}"


def _save_sharded(engine: ShardedEngine, directory: str) -> str:
    engine.require_built()
    os.makedirs(directory, exist_ok=True)
    shard_dirs = []
    for shard_id, shard in enumerate(engine.shards):
        name = _shard_dirname(shard_id)
        _save_single(shard, os.path.join(directory, name))
        shard_dirs.append(name)
    manifest = {
        "version": MANIFEST_VERSION,
        "sharded": True,
        "index_kind": engine.index_kind,
        "n_shards": engine.n_shards,
        "partitioner": engine.partitioner.to_dict(),
        "shard_of": {
            str(oid): shard_id
            for oid, shard_id in engine._shard_of.items()
            if shard_id >= 0
        },
        "mbbs": [
            list(mbb.to_coords()) if mbb is not None else None
            for mbb in engine.shard_mbbs
        ],
        "shards": shard_dirs,
    }
    path = os.path.join(directory, _MANIFEST)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return path


def _load_sharded(manifest: dict, directory: str) -> ShardedEngine:
    shards = []
    for name in manifest["shards"]:
        shard_dir = os.path.join(directory, name)
        shard_manifest = _read_manifest(shard_dir)
        if shard_manifest.get("sharded"):
            raise DatasetError(f"nested sharded layout at {shard_dir}")
        shards.append(_load_single(shard_manifest, shard_dir))
    return ShardedEngine.from_parts(
        shards=shards,
        partitioner=partitioner_from_dict(manifest["partitioner"]),
        shard_of={
            int(oid): shard_id
            for oid, shard_id in manifest["shard_of"].items()
        },
        mbbs=[
            Rect.from_coords(coords) if coords is not None else None
            for coords in manifest["mbbs"]
        ],
    )


# ---------------------------------------------------------------------------
# Device images
# ---------------------------------------------------------------------------


def _dump_device(device: BlockDevice, path: str) -> None:
    with open(path, "wb") as handle:
        for block in device.iter_blocks():
            handle.write(block)


def _load_device(device: InMemoryBlockDevice, path: str, block_size: int) -> None:
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) % block_size:
        raise DatasetError(
            f"{path}: size {len(data)} is not a multiple of block size {block_size}"
        )
    device._blocks = [
        bytearray(data[i : i + block_size]) for i in range(0, len(data), block_size)
    ]


# ---------------------------------------------------------------------------
# Per-index bookkeeping
# ---------------------------------------------------------------------------


def _index_state(index) -> dict:
    if not isinstance(
        index, (SignatureFileIndex, IIOIndex, IR2Index, MIR2Index, RTreeIndex)
    ):
        raise DatasetError(
            f"persistence is not supported for index kind {index.label!r}"
        )
    if isinstance(index, SignatureFileIndex):
        sigfile = index.sigfile
        return {
            "kind": "sig",
            "signature_bytes": sigfile.factory.length_bits // 8,
            "bits_per_word": sigfile.factory.bits_per_word,
            "seed": sigfile.factory.seed,
            "count": sigfile._count,
            "slots": {str(p): slot for p, slot in sigfile._slot_by_pointer.items()},
        }
    if isinstance(index, IIOIndex):
        inner = index.index
        return {
            "kind": "iio",
            "compression": inner.codec.name,
            "lexicon": {
                term: list(entry) for term, entry in inner._lexicon.items()
            },
            "end": inner._end,
            "live_bytes": inner._live_bytes,
        }
    state: dict = {
        "kind": index.label.lower(),
        "capacity": index.tree.capacity,
        "directory": {
            str(node_id): list(extent)
            for node_id, extent in index.pages._directory.items()
        },
        "next_node_id": index.pages._next_id,
        "allocator_tail": index.pages._allocator.tail,
        "free_extents": list(index.pages._allocator._free),
        "root_id": index.tree.root_id,
        "height": index.tree.height,
        "size": index.tree.size,
        "bulk_loaded": index.tree.bulk_loaded,
    }
    if isinstance(index, IR2Index):
        state.update(
            signature_bytes=index.factory.length_bits // 8,
            bits_per_word=index.factory.bits_per_word,
            seed=index.factory.seed,
        )
    elif isinstance(index, MIR2Index):
        state.update(
            signature_bytes=index.leaf_signature_bytes,
            bits_per_word=index.bits_per_word,
            seed=index.seed,
            level_lengths=index.tree.mir_scheme.level_lengths,
        )
    return state


def _restore_index_state(index, state: dict) -> None:
    """Put back the in-memory bookkeeping over an already-loaded device."""
    if isinstance(index, SignatureFileIndex):
        sigfile = index.sigfile
        sigfile._count = state["count"]
        sigfile._slot_by_pointer = {
            int(p): slot for p, slot in state["slots"].items()
        }
        return
    if isinstance(index, IIOIndex):
        inner = index.index
        inner._lexicon = {
            term: tuple(entry) for term, entry in state["lexicon"].items()
        }
        inner._end = state["end"]
        inner._live_bytes = state["live_bytes"]
        return
    pages = index.pages
    pages._directory = {
        int(node_id): tuple(extent)
        for node_id, extent in state["directory"].items()
    }
    pages._next_id = state["next_node_id"]
    pages._allocator._tail = state["allocator_tail"]
    pages._allocator._free = [tuple(extent) for extent in state["free_extents"]]
    tree = index.tree
    tree.root_id = state["root_id"]
    tree.height = state["height"]
    tree.size = state["size"]
    tree.bulk_loaded = state["bulk_loaded"]
