"""Engine persistence: save a built system to disk and reopen it.

The paper's indexes are disk resident; a production deployment also needs
them to *survive restarts* — including restarts in the middle of a save.
:func:`save_engine` writes an engine's block devices verbatim plus a JSON
manifest of the in-memory bookkeeping (page directory, object pointers,
tree shape, index configuration), and :func:`load_engine` reconstructs an
equivalent engine — queries, insertions, and deletions continue exactly
where they left off.

Layout of a saved single engine directory::

    manifest.json    configuration + directory state + file digests
    objects.dat      the plain-text object file's blocks
    index.dat        the index structure's blocks

An adaptive (``auto``) engine saves one device image per candidate child
— ``index-ir2.dat``, ``index-iio.dat``, ... — instead of ``index.dat``,
and its manifest nests each child's bookkeeping under
``index.children``; loading rebuilds the planner statistics from the
restored corpus.

A :class:`~repro.shard.ShardedEngine` saves as a manifest-of-manifests: a
top-level ``manifest.json`` carrying the fitted partitioner, the
oid→shard routing table, and each partition's bounding box, plus one
complete single-engine layout per shard::

    manifest.json    {"sharded": true, partitioner, shard_of, mbbs, ...}
    shard-000/       a full single-engine directory
    shard-001/
    ...

Durability protocol (manifest version 3)
----------------------------------------

A crash half-way through a naive in-place save leaves a directory that
*looks* valid but mixes old and new state.  ``save_engine`` therefore
never touches the destination until the new state is complete:

1. every artifact is written into a fresh ``<dir>.tmp-<nonce>`` sibling,
   each file flushed and fsynced;
2. each data file's SHA-256 digest and byte size are recorded in its
   manifest (a sharded top manifest digests every shard's manifest,
   chaining trust down to every block);
3. the staging directory tree is fsynced, then swapped into place with
   :func:`os.rename` — replacing the *whole* previous directory, so no
   stale file from an earlier layout (e.g. a ``shard-002/`` from a
   previous 3-shard save) can survive into the new one;
4. the previous directory is deleted only after the swap.

``load_engine`` re-hashes every file against the manifest digests before
reconstructing anything and raises a typed
:class:`~repro.errors.PersistError` (a :class:`DatasetError`) on any
mismatch; corrupt or truncated manifests surface as :class:`DatasetError`
naming the offending path, never as raw ``json`` / ``KeyError``
exceptions.  The only non-atomic window is between the two renames of
step 3, and it fails *loudly* (no directory → :class:`DatasetError`),
never silently.  :func:`verify_engine` runs the same integrity checks
without building an engine — the CLI exposes it as ``repro verify``.

Version-1/2 directories (no digests) still load, with digest checks
skipped.  Devices are reloaded into memory by default (matching the
engine's default backend); the block images are identical either way
because both backends share one serialization.

Crash testing hooks: :func:`saving_fault_hook` installs a callback
invoked at every named *fault point* inside a save; pairing it with
:class:`repro.storage.faults.CrashTimer` simulates a power loss at any
step (see ``tests/test_crash_safety.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import secrets
import shutil
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.core.engine import SpatialKeywordEngine
from repro.core.indexes import (
    AutoIndex,
    IIOIndex,
    IR2Index,
    MIR2Index,
    RTreeIndex,
    SignatureFileIndex,
)
from repro.errors import DatasetError, PersistError, ReproError
from repro.shard.engine import ShardedEngine
from repro.shard.partitioner import partitioner_from_dict
from repro.shard.summary import KeywordSummary
from repro.spatial.geometry import Rect
from repro.storage.block import BlockDevice, InMemoryBlockDevice

#: Manifest format version (bump on incompatible layout changes).
#: Version 2 added sharded layouts; version 3 added per-file SHA-256
#: digests ("files") written by the atomic save protocol.  Loading is
#: backward compatible: v1/v2 directories load with digest checks skipped.
MANIFEST_VERSION = 3

_SUPPORTED_VERSIONS = frozenset({1, 2, 3})

_MANIFEST = "manifest.json"
_OBJECTS = "objects.dat"
_INDEX = "index.dat"

#: Test hook: called with a label at each fault point during a save.
_fault_hook: Callable[[str], None] | None = None


@contextmanager
def saving_fault_hook(hook: Callable[[str], None]) -> Iterator[None]:
    """Install a fault-point callback for the duration of the block.

    The hook is called with a label (``"objects-dumped"``,
    ``"manifest-written"``, ``"swapped-out"``, ...) at every step of
    :func:`save_engine`; raising from it simulates a crash at that
    point.  Test-only — production saves run with no hook installed.
    """
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    try:
        yield
    finally:
        _fault_hook = previous


def _fault_point(label: str) -> None:
    if _fault_hook is not None:
        _fault_hook(label)


def save_engine(
    engine: SpatialKeywordEngine | ShardedEngine, directory: str
) -> str:
    """Atomically persist a built engine; returns the manifest path.

    The previous contents of ``directory`` (if any) are replaced
    wholesale — either the complete new state is visible or the complete
    previous state is, never a mixture.

    Raises:
        DatasetError: when the engine has not been built yet.
        PersistError: when ``directory`` exists but is not a directory.
    """
    if isinstance(engine, ShardedEngine):
        engine.require_built()
    elif not engine.index.built:
        raise DatasetError("cannot save an engine before build()")
    directory = os.path.abspath(directory)
    if os.path.exists(directory) and not os.path.isdir(directory):
        raise PersistError(
            f"save target {directory} exists and is not a directory"
        )
    nonce = secrets.token_hex(4)
    staging = f"{directory}.tmp-{nonce}"
    try:
        if isinstance(engine, ShardedEngine):
            _save_sharded(engine, staging)
        else:
            _save_single(engine, staging)
        _fault_point("staged")
        _swap_into_place(staging, directory, nonce)
    except Exception:
        # Polite failures (full disk, permission errors) clean their
        # staging up; SimulatedCrash is a BaseException precisely so it
        # skips this handler, like the power loss it stands in for.
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return os.path.join(directory, _MANIFEST)


def load_engine(directory: str) -> SpatialKeywordEngine | ShardedEngine:
    """Reopen an engine saved by :func:`save_engine`.

    Verifies every file's SHA-256 digest against the manifest before
    reconstructing anything (version-3 layouts).  Returns a
    :class:`~repro.shard.ShardedEngine` when the directory holds a
    sharded layout, a plain :class:`SpatialKeywordEngine` otherwise.

    Raises:
        DatasetError: missing/corrupt/truncated manifest, or unsupported
            version.
        PersistError: a file is missing, truncated, or fails its digest.
    """
    manifest = _read_manifest(directory)
    try:
        if manifest.get("sharded"):
            return _load_sharded(manifest, directory)
        return _load_single(manifest, directory)
    except PersistError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise DatasetError(
            f"corrupt engine manifest under {directory}: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def _read_manifest(directory: str) -> dict:
    path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(path):
        raise DatasetError(f"no engine manifest at {path}")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        raise DatasetError(f"corrupt engine manifest at {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise DatasetError(
            f"corrupt engine manifest at {path}: not a JSON object"
        )
    if manifest.get("version") not in _SUPPORTED_VERSIONS:
        raise DatasetError(
            f"unsupported manifest version {manifest.get('version')!r} "
            f"at {path}"
        )
    return manifest


# ---------------------------------------------------------------------------
# Durability helpers
# ---------------------------------------------------------------------------


def _fsync_file(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: str) -> None:
    # Directory fsync persists the entries themselves (the renames);
    # not supported everywhere, so failures are non-fatal.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def _file_digest(path: str) -> dict:
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
            size += len(chunk)
    return {"sha256": digest.hexdigest(), "bytes": size}


def _swap_into_place(staging: str, directory: str, nonce: str) -> None:
    """Replace ``directory`` with ``staging`` via whole-directory renames."""
    parent = os.path.dirname(directory) or "."
    _fsync_dir(parent)
    if os.path.exists(directory):
        trash = f"{directory}.old-{nonce}"
        os.rename(directory, trash)
        _fault_point("swapped-out")
        os.rename(staging, directory)
        _fault_point("swapped-in")
        _fsync_dir(parent)
        shutil.rmtree(trash, ignore_errors=True)
        _fault_point("cleaned-up")
    else:
        os.rename(staging, directory)
        _fault_point("swapped-in")
        _fsync_dir(parent)


def _write_manifest(directory: str, manifest: dict) -> str:
    path = os.path.join(directory, _MANIFEST)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        _fsync_file(handle)
    return path


def _verify_manifest_files(manifest: dict, directory: str) -> None:
    """Re-hash every file the manifest covers; raise on any mismatch."""
    for rel, meta in manifest.get("files", {}).items():
        path = os.path.join(directory, rel)
        if not os.path.exists(path):
            raise PersistError(f"missing engine file {path}")
        actual = _file_digest(path)
        if actual["bytes"] != meta["bytes"]:
            raise PersistError(
                f"truncated engine file {path}: {actual['bytes']} bytes, "
                f"manifest records {meta['bytes']}"
            )
        if actual["sha256"] != meta["sha256"]:
            raise PersistError(
                f"checksum mismatch for {path}: sha256 {actual['sha256']} "
                f"!= manifest {meta['sha256']}"
            )


# ---------------------------------------------------------------------------
# Single engines
# ---------------------------------------------------------------------------


def _save_single(engine: SpatialKeywordEngine, directory: str) -> str:
    if not engine.index.built:
        raise DatasetError("cannot save an engine before build()")
    os.makedirs(directory, exist_ok=True)
    files = {
        _OBJECTS: _dump_device(
            engine.corpus.device, os.path.join(directory, _OBJECTS)
        ),
    }
    _fault_point("objects-dumped")
    if isinstance(engine.index, AutoIndex):
        # One device image per candidate child; the adaptive wrapper
        # itself holds no blocks of its own.
        for kind, child in engine.index.children.items():
            name = _child_index_filename(kind)
            files[name] = _dump_device(
                child.device, os.path.join(directory, name)
            )
    else:
        files[_INDEX] = _dump_device(
            engine.index.device, os.path.join(directory, _INDEX)
        )
    _fault_point("index-dumped")
    manifest = {
        "version": MANIFEST_VERSION,
        "block_size": engine.corpus.device.block_size,
        "index_kind": engine.index_kind,
        "dims": engine.corpus.dims,
        "pointers": {str(oid): ptr for oid, ptr in engine._pointers.items()},
        "store": {
            "end": engine.corpus.store._end,
            "count": engine.corpus.store._count,
        },
        "index": _index_state(engine.index),
        "files": files,
    }
    path = _write_manifest(directory, manifest)
    _fault_point("manifest-written")
    return path


def _load_single(manifest: dict, directory: str) -> SpatialKeywordEngine:
    _verify_manifest_files(manifest, directory)
    state = manifest["index"]
    engine = SpatialKeywordEngine(
        index=manifest["index_kind"],
        signature_bytes=state.get("signature_bytes", 16),
        bits_per_word=state.get("bits_per_word", 3),
        block_size=manifest["block_size"],
        seed=state.get("seed", 0),
        capacity=state.get("capacity"),
        compression=state.get("compression", "raw"),
        auto_kinds=state.get("candidates"),
    )
    # --- Object file + corpus bookkeeping. ---
    _load_device(
        engine.corpus.device, os.path.join(directory, _OBJECTS),
        manifest["block_size"],
    )
    store = engine.corpus.store
    store._end = manifest["store"]["end"]
    store._count = manifest["store"]["count"]
    store._pointers = {
        int(oid): ptr for oid, ptr in manifest["pointers"].items()
    }
    engine._pointers = dict(store._pointers)
    engine.corpus._dims = manifest["dims"]
    # Vocabulary statistics are a pure function of the stored documents.
    for _, obj in store.iter_objects():
        engine.corpus.vocabulary.add_document(engine.corpus.analyzer.terms(obj.text))
    # --- Index structure. ---
    if isinstance(engine.index, AutoIndex):
        for kind, child in engine.index.children.items():
            _load_index_structure(
                child, state["children"][kind], directory,
                _child_index_filename(kind), manifest["block_size"],
            )
        engine.index.stats.rebuild()
        engine.index.built = True
    else:
        _load_index_structure(
            engine.index, state, directory, _INDEX, manifest["block_size"]
        )
    return engine


def _child_index_filename(kind: str) -> str:
    return f"index-{kind}.dat"


def _load_index_structure(
    index, state: dict, directory: str, filename: str, block_size: int
) -> None:
    """Reload one concrete index: device image + in-memory bookkeeping.

    For tree indexes the tree object must exist *before* the device
    image is loaded: constructing it writes a bootstrap root, which the
    wholesale device reload then replaces with the saved blocks.
    """
    if not isinstance(index, (IIOIndex, SignatureFileIndex)):
        if isinstance(index, MIR2Index):
            index.level_lengths = [int(v) for v in state["level_lengths"]]
        index.capacity = state["capacity"]
        index.tree = index._make_tree()
    _load_device(index.device, os.path.join(directory, filename), block_size)
    _restore_index_state(index, state)
    index.built = True


# ---------------------------------------------------------------------------
# Sharded engines
# ---------------------------------------------------------------------------


def _shard_dirname(shard_id: int) -> str:
    return f"shard-{shard_id:03d}"


def _save_sharded(engine: ShardedEngine, directory: str) -> str:
    engine.require_built()
    os.makedirs(directory, exist_ok=True)
    shard_dirs = []
    files = {}
    for shard_id, shard in enumerate(engine.shards):
        name = _shard_dirname(shard_id)
        shard_manifest = _save_single(shard, os.path.join(directory, name))
        files[f"{name}/{_MANIFEST}"] = _file_digest(shard_manifest)
        shard_dirs.append(name)
        _fault_point(f"shard-{shard_id}-saved")
    manifest = {
        "version": MANIFEST_VERSION,
        "sharded": True,
        "index_kind": engine.index_kind,
        "n_shards": engine.n_shards,
        "partitioner": engine.partitioner.to_dict(),
        "shard_of": {
            str(oid): shard_id
            for oid, shard_id in engine._shard_of.items()
            if shard_id >= 0
        },
        "mbbs": [
            list(mbb.to_coords()) if mbb is not None else None
            for mbb in engine.shard_mbbs
        ],
        "shards": shard_dirs,
        # Routing-table keyword summaries (added after manifest v3 shipped;
        # optional, so older manifests — and older readers — stay valid).
        "summaries": [
            summary.to_dict() if summary is not None else None
            for summary in engine.summaries
        ],
        "files": files,
    }
    path = _write_manifest(directory, manifest)
    _fault_point("manifest-written")
    return path


def _load_sharded(manifest: dict, directory: str) -> ShardedEngine:
    _verify_manifest_files(manifest, directory)
    shards = []
    for name in manifest["shards"]:
        shard_dir = os.path.join(directory, name)
        shard_manifest = _read_manifest(shard_dir)
        if shard_manifest.get("sharded"):
            raise DatasetError(f"nested sharded layout at {shard_dir}")
        shards.append(_load_single(shard_manifest, shard_dir))
    # Manifests written before keyword routing carry no "summaries" field;
    # from_parts(summaries=None) rebuilds them from the loaded corpora.
    summaries = None
    if manifest.get("summaries") is not None:
        summaries = [
            KeywordSummary.from_dict(state) if state is not None else None
            for state in manifest["summaries"]
        ]
    return ShardedEngine.from_parts(
        shards=shards,
        partitioner=partitioner_from_dict(manifest["partitioner"]),
        shard_of={
            int(oid): shard_id
            for oid, shard_id in manifest["shard_of"].items()
        },
        mbbs=[
            Rect.from_coords(coords) if coords is not None else None
            for coords in manifest["mbbs"]
        ],
        summaries=summaries,
    )


# ---------------------------------------------------------------------------
# Integrity verification (the `repro verify` command)
# ---------------------------------------------------------------------------


def verify_engine(directory: str, load: bool = True) -> dict:
    """Check an on-disk engine directory's integrity without mutating it.

    Runs the same checks :func:`load_engine` applies — manifest parse,
    version, per-file size + SHA-256 digests, shard layout — and records
    each as a check row instead of raising.  With ``load=True`` (the
    default) it finishes by actually reconstructing the engine, which
    additionally catches bookkeeping corruption the digests cannot see
    (digests cover files written by us; a hand-edited manifest re-hashes
    fine yet still cannot load).

    Returns a JSON-serializable report::

        {"directory": ..., "ok": bool,
         "checks": [{"path", "status": "ok"|"skipped"|"error", "detail"}],
         "warnings": [...]}
    """
    directory = os.path.abspath(directory)
    checks: list[dict] = []
    warnings: list[str] = []

    def check(path: str, status: str, detail: str = "") -> None:
        checks.append({"path": path, "status": status, "detail": detail})

    _verify_directory(directory, directory, check)
    # Leftover staging/trash siblings mean an earlier save crashed.
    parent = os.path.dirname(directory) or "."
    base = os.path.basename(directory)
    if os.path.isdir(parent):
        for entry in sorted(os.listdir(parent)):
            if entry.startswith(f"{base}.tmp-") or entry.startswith(f"{base}.old-"):
                warnings.append(
                    f"leftover directory {os.path.join(parent, entry)} "
                    "from an interrupted save (safe to delete)"
                )
    ok = all(row["status"] != "error" for row in checks)
    if load and ok:
        try:
            load_engine(directory)
            check(directory, "ok", "engine loads")
        except ReproError as exc:
            check(directory, "error", f"load failed: {exc}")
            ok = False
    return {
        "directory": directory,
        "ok": ok,
        "checks": checks,
        "warnings": warnings,
    }


def _verify_directory(directory: str, root: str, check) -> None:
    """Structural + digest checks for one layout directory (recursive)."""

    def rel(path: str) -> str:
        return os.path.relpath(path, root)

    manifest_path = os.path.join(directory, _MANIFEST)
    try:
        manifest = _read_manifest(directory)
    except DatasetError as exc:
        check(rel(manifest_path), "error", str(exc))
        return
    version = manifest.get("version")
    sharded = bool(manifest.get("sharded"))
    label = f"version {version}" + (", sharded" if sharded else "")
    check(rel(manifest_path), "ok", label)
    files = manifest.get("files")
    if files is None:
        check(rel(directory), "skipped",
              "legacy layout without digests (manifest version < 3)")
    else:
        for file_rel, meta in sorted(files.items()):
            path = os.path.join(directory, file_rel)
            try:
                _verify_manifest_files({"files": {file_rel: meta}}, directory)
            except PersistError as exc:
                check(rel(path), "error", str(exc))
            else:
                check(rel(path), "ok",
                      f"sha256 ok, {meta['bytes']} bytes")
    if sharded:
        names = manifest.get("shards", [])
        if not isinstance(names, list):
            check(rel(manifest_path), "error", "invalid shard list")
            return
        for name in names:
            shard_dir = os.path.join(directory, name)
            if not os.path.isdir(shard_dir):
                check(rel(shard_dir), "error", "missing shard directory")
                continue
            _verify_directory(shard_dir, root, check)
        # A directory that looks like a shard but is not in the manifest
        # is stale state from a different layout.
        expected = set(names)
        for entry in sorted(os.listdir(directory)):
            if entry.startswith("shard-") and entry not in expected:
                check(rel(os.path.join(directory, entry)), "error",
                      "stale shard directory not in the manifest")


# ---------------------------------------------------------------------------
# Device images
# ---------------------------------------------------------------------------


def _dump_device(device: BlockDevice, path: str) -> dict:
    digest = hashlib.sha256()
    size = 0
    with open(path, "wb") as handle:
        for block in device.iter_blocks():
            handle.write(block)
            digest.update(block)
            size += len(block)
        _fsync_file(handle)
    return {"sha256": digest.hexdigest(), "bytes": size}


def copy_built_engine(engine):
    """A deep structural copy of a *built* in-memory engine, or ``None``.

    The snapshot maintainer's incremental merges fold a small write
    buffer into a copy of the serving base instead of rebuilding it from
    scratch.  The copy reuses the same state the disk round-trip
    serializes — device block images plus the per-structure bookkeeping
    of :func:`_index_state` — so it is exactly the engine a save/load
    cycle would produce, without touching the filesystem and without
    re-deriving the vocabulary.

    Returns ``None`` when the engine cannot be copied this way (not yet
    built, non-memory block devices, an index kind without persistence
    support); callers fall back to a full rebuild.
    """
    if isinstance(engine, ShardedEngine):
        if not engine.built:
            return None
        shards = []
        for shard in engine.shards:
            duplicate = copy_built_engine(shard)
            if duplicate is None:
                return None
            shards.append(duplicate)
        clone = ShardedEngine.from_parts(
            shards=shards,
            partitioner=partitioner_from_dict(engine.partitioner.to_dict()),
            shard_of={
                oid: shard_id
                for oid, shard_id in engine._shard_of.items()
                if shard_id >= 0
            },
            mbbs=list(engine.shard_mbbs),
            failure_policy=engine.failure_policy,
            retries=engine.retries,
            retry_backoff_s=engine.retry_backoff_s,
            summaries=[
                summary.copy() if summary is not None else None
                for summary in engine.summaries
            ],
        )
        clone.metrics = engine.metrics
        return clone
    if not engine.index.built:
        return None
    try:
        state = _index_state(engine.index)
    except DatasetError:
        return None
    clone = engine.clone_empty()
    if not _copy_device_blocks(engine.corpus.device, clone.corpus.device):
        return None
    src_store, dst_store = engine.corpus.store, clone.corpus.store
    dst_store._end = src_store._end
    dst_store._count = src_store._count
    dst_store._pointers = dict(src_store._pointers)
    clone._pointers = dict(engine._pointers)
    clone.corpus._dims = engine.corpus._dims
    src_vocab, dst_vocab = engine.corpus.vocabulary, clone.corpus.vocabulary
    dst_vocab._df = dict(src_vocab._df)
    dst_vocab.document_count = src_vocab.document_count
    dst_vocab._distinct_terms_total = src_vocab._distinct_terms_total
    if isinstance(engine.index, AutoIndex):
        for kind, child in engine.index.children.items():
            target = clone.index.children[kind]
            if not _copy_index_structure(child, state["children"][kind], target):
                return None
        clone.index.stats.rebuild()
        clone.index.built = True
    else:
        if not _copy_index_structure(engine.index, state, clone.index):
            return None
    return clone


def _copy_index_structure(src_index, state: dict, dst_index) -> bool:
    """In-memory twin of :func:`_load_index_structure`."""
    if not isinstance(dst_index, (IIOIndex, SignatureFileIndex)):
        if isinstance(dst_index, MIR2Index):
            dst_index.level_lengths = [int(v) for v in state["level_lengths"]]
        dst_index.capacity = state["capacity"]
        # The fresh tree writes a bootstrap root; the wholesale block
        # copy below replaces it with the source image.
        dst_index.tree = dst_index._make_tree()
    if not _copy_device_blocks(src_index.device, dst_index.device):
        return False
    _restore_index_state(dst_index, state)
    dst_index.built = True
    return True


def _copy_device_blocks(src, dst) -> bool:
    if not isinstance(src, InMemoryBlockDevice) or not isinstance(
        dst, InMemoryBlockDevice
    ):
        return False
    dst._blocks = [bytearray(block) for block in src._blocks]
    return True


def _load_device(device: InMemoryBlockDevice, path: str, block_size: int) -> None:
    if not os.path.exists(path):
        raise PersistError(f"missing engine file {path}")
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) % block_size:
        raise DatasetError(
            f"{path}: size {len(data)} is not a multiple of block size {block_size}"
        )
    device._blocks = [
        bytearray(data[i : i + block_size]) for i in range(0, len(data), block_size)
    ]


# ---------------------------------------------------------------------------
# Per-index bookkeeping
# ---------------------------------------------------------------------------


def _index_state(index) -> dict:
    if isinstance(index, AutoIndex):
        return {
            "kind": "auto",
            "candidates": list(index.candidates),
            **index._config,
            "children": {
                kind: _index_state(child)
                for kind, child in index.children.items()
            },
        }
    if not isinstance(
        index, (SignatureFileIndex, IIOIndex, IR2Index, MIR2Index, RTreeIndex)
    ):
        raise DatasetError(
            f"persistence is not supported for index kind {index.label!r}"
        )
    if isinstance(index, SignatureFileIndex):
        sigfile = index.sigfile
        return {
            "kind": "sig",
            "signature_bytes": sigfile.factory.length_bits // 8,
            "bits_per_word": sigfile.factory.bits_per_word,
            "seed": sigfile.factory.seed,
            "count": sigfile._count,
            "slots": {str(p): slot for p, slot in sigfile._slot_by_pointer.items()},
        }
    if isinstance(index, IIOIndex):
        inner = index.index
        return {
            "kind": "iio",
            "compression": inner.codec.name,
            "lexicon": {
                term: list(entry) for term, entry in inner._lexicon.items()
            },
            "end": inner._end,
            "live_bytes": inner._live_bytes,
        }
    state: dict = {
        "kind": index.label.lower(),
        "capacity": index.tree.capacity,
        "directory": {
            str(node_id): list(extent)
            for node_id, extent in index.pages._directory.items()
        },
        "next_node_id": index.pages._next_id,
        "allocator_tail": index.pages._allocator.tail,
        "free_extents": list(index.pages._allocator._free),
        "root_id": index.tree.root_id,
        "height": index.tree.height,
        "size": index.tree.size,
        "bulk_loaded": index.tree.bulk_loaded,
    }
    if isinstance(index, IR2Index):
        state.update(
            signature_bytes=index.factory.length_bits // 8,
            bits_per_word=index.factory.bits_per_word,
            seed=index.factory.seed,
        )
    elif isinstance(index, MIR2Index):
        state.update(
            signature_bytes=index.leaf_signature_bytes,
            bits_per_word=index.bits_per_word,
            seed=index.seed,
            level_lengths=index.tree.mir_scheme.level_lengths,
        )
    return state


def _restore_index_state(index, state: dict) -> None:
    """Put back the in-memory bookkeeping over an already-loaded device."""
    if isinstance(index, SignatureFileIndex):
        sigfile = index.sigfile
        sigfile._count = state["count"]
        sigfile._slot_by_pointer = {
            int(p): slot for p, slot in state["slots"].items()
        }
        return
    if isinstance(index, IIOIndex):
        inner = index.index
        inner._lexicon = {
            term: tuple(entry) for term, entry in state["lexicon"].items()
        }
        inner._end = state["end"]
        inner._live_bytes = state["live_bytes"]
        return
    pages = index.pages
    pages._directory = {
        int(node_id): tuple(extent)
        for node_id, extent in state["directory"].items()
    }
    pages._next_id = state["next_node_id"]
    pages._allocator._tail = state["allocator_tail"]
    pages._allocator._free = [tuple(extent) for extent in state["free_extents"]]
    tree = index.tree
    tree.root_id = state["root_id"]
    tree.height = state["height"]
    tree.size = state["size"]
    tree.bulk_loaded = state["bulk_loaded"]
