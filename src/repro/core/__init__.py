"""Core: the paper's contribution — IR2-/MIR2-Trees, search algorithms,
baselines, bulk loading, and the user-facing engine facade."""

from repro.core.baselines import iio_top_k
from repro.core.builder import BulkItem, bulk_load, insert_build
from repro.core.corpus import Corpus, CorpusStats
from repro.core.diagnostics import (
    LevelSaturation,
    estimated_false_positive_rates,
    signature_saturation,
)
from repro.core.engine import SpatialKeywordEngine
from repro.core.indexes import (
    IIOIndex,
    IR2Index,
    MIR2Index,
    RTreeIndex,
    STreeIndex,
    SignatureFileIndex,
    SpatialKeywordIndex,
    make_index,
)
from repro.core.ir2tree import IR2Tree
from repro.core.mir2tree import MIR2Tree
from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.core.ranking import (
    DistanceDecayRanking,
    LinearRanking,
    RankingFunction,
    validate_monotonicity,
)
from repro.core.schemes import IR2Scheme, MIR2Scheme, plan_level_lengths
from repro.core.search import (
    SearchCounters,
    SearchOutcome,
    brute_force_top_k,
    ir2_top_k,
    ir2_top_k_iter,
    rtree_top_k,
    rtree_top_k_iter,
)
from repro.core.search_general import brute_force_ranked, ranked_top_k, ranked_top_k_iter

__all__ = [
    "BulkItem",
    "Corpus",
    "CorpusStats",
    "DistanceDecayRanking",
    "IIOIndex",
    "IR2Index",
    "IR2Scheme",
    "IR2Tree",
    "LevelSaturation",
    "LinearRanking",
    "MIR2Index",
    "MIR2Scheme",
    "MIR2Tree",
    "QueryExecution",
    "RTreeIndex",
    "STreeIndex",
    "RankingFunction",
    "SearchCounters",
    "SearchOutcome",
    "SignatureFileIndex",
    "SpatialKeywordEngine",
    "SpatialKeywordIndex",
    "SpatialKeywordQuery",
    "brute_force_ranked",
    "brute_force_top_k",
    "bulk_load",
    "iio_top_k",
    "insert_build",
    "ir2_top_k",
    "ir2_top_k_iter",
    "make_index",
    "plan_level_lengths",
    "ranked_top_k",
    "ranked_top_k_iter",
    "estimated_false_positive_rates",
    "rtree_top_k",
    "rtree_top_k_iter",
    "signature_saturation",
    "validate_monotonicity",
]
