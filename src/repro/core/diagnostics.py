"""Index diagnostics: signature saturation and false-positive estimates.

Section IV motivates the MIR2-Tree with a structural observation: "the
same signature length is used for all levels which leads to more false
positives in the higher levels, which have more 1's (since they are the
superimpositions of the lower levels)".  :func:`signature_saturation`
measures exactly that — the mean fraction of set bits per tree level —
and :func:`estimated_false_positive_rates` converts the fill into the
probability that a random ``m``-bit word signature is falsely covered.

On an IR2-Tree the fill climbs toward 1.0 at the root (upper levels prune
nothing); on an MIR2-Tree the per-level optimal lengths hold it near the
0.5 design point.  ``benchmarks/bench_ablation_saturation.py`` turns this
into a table, and the invariants are asserted in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spatial.rtree import RTree
from repro.text.signature import Signature


@dataclass(frozen=True)
class LevelSaturation:
    """Signature statistics of one tree level.

    Attributes:
        level: tree level (0 = leaves' entries, i.e. object signatures).
        nodes: nodes at this level.
        entries: entries across those nodes.
        signature_bits: signature width used at this level.
        mean_fill: mean fraction of set bits over the level's entries.
        max_fill: highest fill of any single entry.
    """

    level: int
    nodes: int
    entries: int
    signature_bits: int
    mean_fill: float
    max_fill: float


def signature_saturation(tree: RTree) -> list[LevelSaturation]:
    """Per-level signature fill of an IR2-/MIR2-Tree, leaves first.

    Uses uncounted reads (a diagnostic, not a query).  Levels with
    zero-length signatures (plain R-Trees) report zero fill.
    """
    per_level: dict[int, list[float]] = {}
    node_counts: dict[int, int] = {}
    widths: dict[int, int] = {}
    for node in tree.iter_nodes():
        node_counts[node.level] = node_counts.get(node.level, 0) + 1
        fills = per_level.setdefault(node.level, [])
        for entry in node.entries:
            width = len(entry.signature) * 8
            widths[node.level] = width
            if width == 0:
                fills.append(0.0)
            else:
                fills.append(Signature.from_bytes(entry.signature).weight() / width)
    report = []
    for level in sorted(per_level):
        fills = per_level[level]
        report.append(
            LevelSaturation(
                level=level,
                nodes=node_counts[level],
                entries=len(fills),
                signature_bits=widths.get(level, 0),
                mean_fill=sum(fills) / len(fills) if fills else 0.0,
                max_fill=max(fills) if fills else 0.0,
            )
        )
    return report


def estimated_false_positive_rates(
    tree: RTree, bits_per_word: int
) -> dict[int, float]:
    """Per-level probability a random word signature is falsely covered.

    With mean fill ``f`` and ``m`` bits per word, an unrelated word's
    bits are all covered with probability ``f ** m`` (the superimposed-
    coding false-drop model evaluated at the measured fill rather than
    the analytic expectation).
    """
    return {
        level.level: level.mean_fill**bits_per_word
        for level in signature_saturation(tree)
    }
