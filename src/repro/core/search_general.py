"""General (ranked) top-k spatial keyword search, paper Section V.C.

Objects are ranked by ``f(distance(T.p, Q.p), IRscore(T.t, Q.t))`` with
``f`` decreasing in distance and increasing in IR score.  The paper's
changes relative to the distance-first algorithm:

1. per-keyword signatures instead of one conjunctive query signature (no
   AND semantics — partial matches may appear in the result);
2. the queue is ordered by ``Upper(v)``, the maximum score any object in
   ``v``'s subtree could reach, built from MINDIST and the best IR score
   the node signature permits;
3. an object is emitted only once its *actual* score is at least the best
   upper bound left in the queue; otherwise it is re-enqueued with its
   actual score ("to be considered later").

The node IR bound follows the paper's imaginary-document construction
(every signature-matched keyword present once), made admissible by
maximizing over matched-subset sizes — see
:func:`repro.text.irmodel.upper_bound_ir_score`.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterator

from repro.core.query import SpatialKeywordQuery
from repro.core.ranking import RankingCallable
from repro.core.search import SearchCounters, SearchOutcome
from repro.model import SearchResult
from repro.obs import trace as qtrace
from repro.spatial.geometry import target_min_distance, target_point_distance
from repro.spatial.rtree import RTree
from repro.storage.objectstore import ObjectStore
from repro.text.analyzer import Analyzer
from repro.text.irmodel import ir_score, upper_bound_ir_score
from repro.text.vocabulary import Vocabulary

#: Queue element kinds (max-heap on upper bound / actual score).
_NODE = 0
_OBJECT_PTR = 1
_RESULT = 2


def ranked_top_k_iter(
    tree: RTree,
    store: ObjectStore,
    analyzer: Analyzer,
    vocabulary: Vocabulary,
    query: SpatialKeywordQuery,
    ranking: RankingCallable,
    prune_zero_ir: bool = True,
    counters: SearchCounters | None = None,
) -> Iterator[SearchResult]:
    """Yield ranked results in non-increasing combined score.

    Args:
        tree: an IR2- or MIR2-Tree (anything exposing ``matched_terms``).
        store: object store for candidate verification.
        analyzer: shared tokenizer.
        vocabulary: corpus statistics providing idf values.
        query: the top-k query (its ``k`` is applied by the caller).
        ranking: combined ranking function ``f`` (monotone per contract).
        prune_zero_ir: drop subtrees whose signature matches no query
            keyword (the paper's optional "if Score > 0" check; disable to
            allow pure-distance results with zero IR score).
        counters: optional cost counters to fill in.
    """
    terms = analyzer.query_terms(query.keywords)
    idf = {term: vocabulary.idf(term) for term in terms}
    counter = 0
    # Max-heap via negated priority: (-upper, seq, kind, payload, distance)
    heap: list[tuple[float, int, int, object, float]] = []

    def push(priority: float, kind: int, payload, distance: float = 0.0) -> None:
        nonlocal counter
        heapq.heappush(heap, (-priority, counter, kind, payload, distance))
        counter += 1

    push(math.inf, _NODE, tree.root_id)
    while heap:
        neg_priority, _, kind, payload, distance = heapq.heappop(heap)
        if kind == _RESULT:
            # Every remaining element's upper bound is <= this actual
            # score (heap order), so the result is final — the paper's
            # "if Score >= Upper(U.top())" test, realized by re-queueing.
            yield payload
            continue
        if kind == _OBJECT_PTR:
            obj = store.load(payload)
            if counters is not None:
                counters.objects_inspected += 1
            actual_ir = ir_score(obj.text, terms, vocabulary, analyzer)
            rejected = prune_zero_ir and actual_ir == 0.0
            span = qtrace.current_span()
            if span is not None:
                span.event(
                    qtrace.EVT_OBJECT_VERIFY,
                    oid=obj.oid,
                    false_positive=rejected,
                )
            if rejected:
                if counters is not None:
                    counters.false_positives += 1
                continue
            actual_distance = target_point_distance(obj.point, query.target)
            score = ranking(actual_distance, actual_ir)
            push(
                score,
                _RESULT,
                SearchResult(obj, actual_distance, score=score, ir_score=actual_ir),
            )
            continue
        node = tree.load_node(payload)
        span = qtrace.current_span()
        if span is not None:
            span.event(
                qtrace.EVT_NODE_READ,
                node=payload,
                level=node.level,
                entries=len(node.entries),
                distance=distance,
            )
        for entry in node.entries:
            matched = tree.matched_terms(entry, node, terms)
            if prune_zero_ir and not matched:
                if span is not None:
                    span.event(
                        qtrace.EVT_SIG_PRUNE,
                        level=node.level,
                        entry=entry.child_ref,
                        kind="object" if node.is_leaf else "node",
                    )
                continue
            bound_ir = upper_bound_ir_score(idf[term] for term in matched)
            entry_distance = target_min_distance(entry.rect, query.target)
            upper = ranking(entry_distance, bound_ir)
            if node.is_leaf:
                push(upper, _OBJECT_PTR, entry.child_ref, entry_distance)
            else:
                push(upper, _NODE, entry.child_ref)


def ranked_top_k(
    tree: RTree,
    store: ObjectStore,
    analyzer: Analyzer,
    vocabulary: Vocabulary,
    query: SpatialKeywordQuery,
    ranking: RankingCallable,
    prune_zero_ir: bool = True,
) -> SearchOutcome:
    """Top ``Q.k`` answers under the combined ranking function."""
    outcome = SearchOutcome()
    iterator = ranked_top_k_iter(
        tree,
        store,
        analyzer,
        vocabulary,
        query,
        ranking,
        prune_zero_ir=prune_zero_ir,
        counters=outcome.counters,
    )
    with qtrace.start_span("ranked-traverse", category="phase"):
        for result in iterator:
            outcome.results.append(result)
            if len(outcome.results) >= query.k:
                break
    return outcome


def brute_force_ranked(
    objects,
    analyzer: Analyzer,
    vocabulary: Vocabulary,
    query: SpatialKeywordQuery,
    ranking: RankingCallable,
    prune_zero_ir: bool = True,
) -> list[SearchResult]:
    """Index-free oracle for the ranked query (test reference)."""
    terms = analyzer.query_terms(query.keywords)
    scored = []
    for obj in objects:
        relevance = ir_score(obj.text, terms, vocabulary, analyzer)
        if prune_zero_ir and relevance == 0.0:
            continue
        distance = target_point_distance(obj.point, query.target)
        scored.append(
            SearchResult(
                obj, distance, score=ranking(distance, relevance), ir_score=relevance
            )
        )
    scored.sort(key=lambda r: (-r.score, r.obj.oid))
    return scored[: query.k]
