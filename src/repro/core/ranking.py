"""Combined ranking functions ``f(distance, IRscore)`` (Section V.C).

The general top-k algorithm requires ``f`` to be *decreasing* in distance
and *increasing* in IR score — that monotonicity is what makes the node
upper bound ``Upper(v) = f(MINDIST(v), UpperIR(v))`` admissible.  Every
class here satisfies the contract and documents its trade-off profile;
:func:`validate_monotonicity` spot-checks a custom function before the
search trusts it.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from repro.errors import QueryError

RankingCallable = Callable[[float, float], float]


class RankingFunction(Protocol):
    """Contract: ``f(distance, ir_score)``, decreasing in the former and
    increasing in the latter."""

    def __call__(self, distance: float, ir_score: float) -> float: ...


class DistanceDecayRanking:
    """``f = ir_score / (1 + distance / half_distance)``.

    At ``distance == half_distance`` a result keeps half the relevance it
    would have at the query point.  Scale-free over IR scores: doubling all
    IR scores doubles all combined scores, so no normalization constants
    are needed.

    Args:
        half_distance: distance at which relevance is halved (> 0).
    """

    def __init__(self, half_distance: float = 1.0) -> None:
        if half_distance <= 0:
            raise QueryError(f"half_distance must be > 0, got {half_distance}")
        self.half_distance = half_distance

    def __call__(self, distance: float, ir_score: float) -> float:
        return ir_score / (1.0 + distance / self.half_distance)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DistanceDecayRanking(half_distance={self.half_distance})"


class LinearRanking:
    """``f = alpha * (1 - distance / max_distance) + (1 - alpha) * ir_score``.

    The additive blend used by many follow-up spatial-keyword papers.
    Distances beyond ``max_distance`` clamp to a proximity of zero (the
    function must stay monotone, so it cannot go negative on distance
    alone).

    Args:
        alpha: weight of the spatial component in [0, 1].
        max_distance: distance at which spatial proximity reaches zero.
    """

    def __init__(self, alpha: float = 0.5, max_distance: float = 1.0) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise QueryError(f"alpha must be in [0, 1], got {alpha}")
        if max_distance <= 0:
            raise QueryError(f"max_distance must be > 0, got {max_distance}")
        self.alpha = alpha
        self.max_distance = max_distance

    def __call__(self, distance: float, ir_score: float) -> float:
        proximity = max(0.0, 1.0 - distance / self.max_distance)
        return self.alpha * proximity + (1.0 - self.alpha) * ir_score

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LinearRanking(alpha={self.alpha}, max_distance={self.max_distance})"


def validate_monotonicity(
    f: RankingCallable,
    distances: Sequence[float] = (0.0, 0.5, 1.0, 5.0, 50.0),
    ir_scores: Sequence[float] = (0.0, 0.1, 1.0, 10.0),
) -> None:
    """Spot-check that ``f`` honours the monotonicity contract.

    Raises:
        QueryError: when ``f`` increases with distance or decreases with
            IR score anywhere on the probe grid.
    """
    for ir in ir_scores:
        previous = None
        for d in sorted(distances):
            value = f(d, ir)
            if previous is not None and value > previous + 1e-12:
                raise QueryError(
                    f"ranking function increases with distance at d={d}, ir={ir}"
                )
            previous = value
    for d in distances:
        previous = None
        for ir in sorted(ir_scores):
            value = f(d, ir)
            if previous is not None and value < previous - 1e-12:
                raise QueryError(
                    f"ranking function decreases with IR score at d={d}, ir={ir}"
                )
            previous = value
