"""Bulk loading: Sort-Tile-Recursive packing for all tree variants.

The paper builds its indexes by repeated insertion; at experiment scale a
Python reproduction benefits from the classic STR bulk loader (Leutenegger
et al.), which produces a structurally equivalent height-balanced tree in
one bottom-up pass.  Crucially for the MIR2-Tree, the loader carries each
subtree's distinct-term union upward, so per-level signatures are computed
*without* re-reading objects — a build-time optimization only; incremental
maintenance stays faithful to the paper's expensive recomputation.

``benchmarks/bench_ablation_build.py`` confirms that insertion-built and
bulk-loaded trees answer queries with comparable I/O, so using the loader
for the figure experiments does not distort the comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import TreeInvariantError
from repro.spatial.geometry import Rect
from repro.spatial.rtree import Entry, Node, RTree

#: Default node fill during bulk load (fraction of capacity).
DEFAULT_BULK_FILL = 0.7


@dataclass
class BulkItem:
    """One object to pack: pointer, bounding rectangle, distinct terms."""

    obj_ptr: int
    rect: Rect
    terms: set[str] = field(default_factory=set)


def bulk_load(tree: RTree, items: Sequence[BulkItem], fill: float = DEFAULT_BULK_FILL) -> None:
    """Pack ``items`` into an empty tree bottom-up (STR order).

    Args:
        tree: a freshly constructed (empty) RTree / IR2Tree / MIR2Tree.
        items: objects to load.
        fill: node fill fraction in (0, 1]; the paper-equivalent fan-out
            limit still applies.

    Raises:
        TreeInvariantError: when the tree is not empty or ``fill`` is
            infeasible.
    """
    if tree.size != 0:
        raise TreeInvariantError("bulk_load requires an empty tree")
    if not 0.0 < fill <= 1.0:
        raise TreeInvariantError(f"fill must be in (0, 1], got {fill}")
    if not items:
        return
    group_size = max(2, min(tree.capacity, int(tree.capacity * fill)))
    old_root = tree.root_id

    # ---- Leaves: STR partition of the objects. ----
    def item_center(item: BulkItem) -> tuple[float, ...]:
        return item.rect.center

    groups = _str_partition(list(items), group_size, tree.dims, item_center)
    level_nodes: list[tuple[Node, set[str]]] = []
    for group in groups:
        node = Node(tree.pages.new_node_id(), 0)
        subtree_terms: set[str] = set()
        for item in group:
            node.entries.append(
                Entry(item.obj_ptr, item.rect, tree.scheme.object_signature(item.terms))
            )
            subtree_terms |= item.terms
        tree.store_node(node)
        level_nodes.append((node, subtree_terms))

    # ---- Internal levels: pack children until one root remains. ----
    while len(level_nodes) > 1:
        def node_center(pair: tuple[Node, set[str]]) -> tuple[float, ...]:
            return pair[0].mbr().center

        parent_groups = _str_partition(level_nodes, group_size, tree.dims, node_center)
        next_level: list[tuple[Node, set[str]]] = []
        for group in parent_groups:
            parent = Node(tree.pages.new_node_id(), group[0][0].level + 1)
            parent_terms: set[str] = set()
            for child, child_terms in group:
                parent.entries.append(
                    Entry(
                        child.node_id,
                        child.mbr(),
                        tree.scheme.subtree_signature(child, child_terms),
                    )
                )
                parent_terms |= child_terms
            tree.store_node(parent)
            next_level.append((parent, parent_terms))
        level_nodes = next_level

    root, _ = level_nodes[0]
    tree.root_id = root.node_id
    tree.height = root.level + 1
    tree.size = len(items)
    tree.bulk_loaded = True
    tree.pages.delete(old_root)


def insert_build(tree: RTree, items: Sequence[BulkItem]) -> None:
    """Build by repeated insertion (the paper's construction path)."""
    for item in items:
        tree.insert(item.obj_ptr, item.rect, tree.scheme.object_signature(item.terms))


def _str_partition(items: list, group_size: int, dims: int, center) -> list[list]:
    """Sort-Tile-Recursive grouping: runs of ~``group_size`` nearby items.

    Sorts by the first dimension, slices into vertical slabs sized so the
    recursion on the remaining dimensions yields square-ish tiles, and
    chunks along the last dimension.
    """

    def recurse(chunk: list, dim: int) -> list[list]:
        if len(chunk) <= group_size:
            return [chunk]
        chunk = sorted(chunk, key=lambda it: center(it)[dim])
        if dim == dims - 1:
            return [
                chunk[i : i + group_size] for i in range(0, len(chunk), group_size)
            ]
        total_groups = math.ceil(len(chunk) / group_size)
        slabs = max(1, math.ceil(total_groups ** (1.0 / (dims - dim))))
        slab_size = math.ceil(len(chunk) / slabs)
        result: list[list] = []
        for i in range(0, len(chunk), slab_size):
            result.extend(recurse(chunk[i : i + slab_size], dim + 1))
        return result

    groups = recurse(list(items), 0)
    # Guard against a pathological trailing group of size 1 (an internal
    # node must have >= 2 entries): borrow one item from its neighbour.
    for i, group in enumerate(groups):
        if len(group) == 1 and i > 0 and len(groups[i - 1]) > 2:
            group.insert(0, groups[i - 1].pop())
    return [g for g in groups if g]
