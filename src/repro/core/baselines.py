"""The IIO (Inverted Index Only) baseline, paper Section V.A / Figure 7.

The other baseline — the plain R-Tree fetch-and-filter algorithm — lives
in :mod:`repro.core.search` (:func:`~repro.core.search.rtree_top_k`)
because it shares the incremental-NN machinery with ``IR2TopK``.

``IIOTopK`` intersects the inverted lists of every query keyword, loads
every object in the intersection, computes its distance, sorts, and
returns the first ``k``.  It is the paper's only *non-incremental*
algorithm: its cost is independent of ``k`` (flat lines in Figures 9/12)
and grows with keyword frequency, but it wins when keywords are very rare
(Section VI.B).
"""

from __future__ import annotations

from repro.core.query import SpatialKeywordQuery
from repro.core.search import SearchOutcome
from repro.model import SearchResult, result_sort_key
from repro.obs import trace as qtrace
from repro.spatial.geometry import target_point_distance
from repro.storage.objectstore import ObjectStore
from repro.text.inverted_index import InvertedIndex


def iio_top_k(
    index: InvertedIndex,
    store: ObjectStore,
    query: SpatialKeywordQuery,
) -> SearchOutcome:
    """The paper's ``IIOTopK`` (Figure 7).

    Lines 1-3: retrieve and intersect the keyword posting lists.
    Lines 4-8: load every object in the intersection and compute its
    distance to ``Q.p``.  Lines 9-10: sort by distance, return the first
    ``Q.k``.  Every object in the intersection is charged as an
    inspection — the algorithm cannot stop early.
    """
    outcome = SearchOutcome()
    with qtrace.start_span("postings", category="phase"):
        pointers = index.retrieve_conjunction(query.keywords)
    scored: list[SearchResult] = []
    with qtrace.start_span("verify", category="phase") as span:
        for pointer in pointers:
            obj = store.load(pointer)
            outcome.counters.objects_inspected += 1
            if span is not None:
                # Every intersection member is a true match (the posting
                # lists are exact), so IIO never sees a false positive.
                span.event(
                    qtrace.EVT_OBJECT_VERIFY, oid=obj.oid, false_positive=False
                )
            distance = target_point_distance(obj.point, query.target)
            scored.append(SearchResult(obj, distance, score=-distance))
    scored.sort(key=result_sort_key)
    outcome.results = scored[: query.k]
    return outcome
