"""Signature schemes: what turns an R-Tree into an IR2- or MIR2-Tree.

Section IV: an IR2-Tree node's signature "is the superimposition (OR-ing)
of all the signatures of its entries", one fixed length everywhere.  The
MIR2-Tree instead uses "the optimal signature length for each level" and
superimposes "the signatures of all objects in the subtree of each node,
instead of the signatures of the children nodes" — which is exactly why
its maintenance must re-read the underlying objects.

Both behaviours plug into :class:`~repro.spatial.rtree.RTree` through the
:class:`~repro.spatial.rtree.SignatureScheme` hooks, so signature upkeep
rides the standard AdjustTree / CondenseTree passes, as the paper intends.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.spatial.rtree import Node, RTree, SignatureScheme
from repro.text.sigdesign import scaled_length_bytes
from repro.text.signature import HashSignatureFactory, SignatureFactory

#: Resolves an object pointer to the object's distinct term set.  Supplied
#: by the engine as ``analyzer.terms(store.load(ptr).text)`` so the object
#: reads are charged as disk accesses.
TermResolver = Callable[[int], set[str]]


class IR2Scheme(SignatureScheme):
    """Fixed-length signatures, parent = OR of the child's entry signatures.

    Args:
        factory: word -> signature mapping shared by the whole tree.
    """

    def __init__(self, factory: SignatureFactory) -> None:
        self.factory = factory

    def length_for_level(self, level: int) -> int:
        return self.factory.length_bytes

    def entry_signature_for_child(self, tree: RTree, child: Node) -> bytes:
        """Superimpose the child's entry signatures (cheap, no extra I/O).

        Because every level shares one length, OR-ing the child's entries
        equals OR-ing every object signature in the subtree — the identity
        the IR2-Tree's cheap maintenance rests on.
        """
        superimposed = child.or_signature()
        if not superimposed:
            return bytes(self.factory.length_bytes)
        return superimposed

    def object_signature(self, terms) -> bytes:
        return self.factory.for_words(terms).to_bytes()

    def subtree_signature(self, child: Node, subtree_terms) -> bytes:
        """OR of the child's (in-memory) entries — no object reads needed."""
        return self.entry_signature_for_child(None, child)  # type: ignore[arg-type]


class MIR2Scheme(SignatureScheme):
    """Per-level signature lengths with object-level superimposition.

    Entries stored at level ``l`` carry signatures of ``level_lengths[l]``
    bytes (clamped to the last configured level).  A parent entry's
    signature is recomputed from *all objects* in the child's subtree:
    the walk loads every descendant node and object through counted I/O,
    faithfully reproducing the expensive maintenance the paper warns
    about ("we have to recompute the signatures of all ancestor nodes by
    accessing all underlying objects").

    Args:
        level_lengths: signature bytes per level, leaves first.
        term_resolver: maps an object pointer to its distinct terms
            (loading the object through the store so I/O is charged).
        bits_per_word: hash bits set per word at every level.
        seed: signature hash seed.
    """

    def __init__(
        self,
        level_lengths: Sequence[int],
        term_resolver: TermResolver,
        bits_per_word: int = 3,
        seed: int = 0,
    ) -> None:
        if not level_lengths:
            raise ValueError("need at least one level length")
        self.level_lengths = list(level_lengths)
        self.term_resolver = term_resolver
        self.bits_per_word = bits_per_word
        self.seed = seed
        self._factories = [
            HashSignatureFactory(length, bits_per_word, seed)
            for length in self.level_lengths
        ]

    def factory_for_level(self, level: int) -> HashSignatureFactory:
        """Signature factory for entries stored at ``level`` (clamped)."""
        index = min(max(level, 0), len(self._factories) - 1)
        return self._factories[index]

    def length_for_level(self, level: int) -> int:
        return self.factory_for_level(level).length_bytes

    def entry_signature_for_child(self, tree: RTree, child: Node) -> bytes:
        """Re-hash every term under ``child`` at the parent level's length."""
        terms: set[str] = set()
        for pointer in self.subtree_object_pointers(tree, child):
            terms |= self.term_resolver(pointer)
        factory = self.factory_for_level(child.level + 1)
        return factory.for_words(terms).to_bytes()

    def object_signature(self, terms) -> bytes:
        return self.factory_for_level(0).for_words(terms).to_bytes()

    def subtree_signature(self, child: Node, subtree_terms) -> bytes:
        """Hash the known subtree term union at the parent level's length."""
        factory = self.factory_for_level(child.level + 1)
        return factory.for_words(subtree_terms).to_bytes()

    @staticmethod
    def subtree_object_pointers(tree: RTree, node: Node) -> list[int]:
        """All object pointers below ``node`` (descendants loaded, counted)."""
        pointers: list[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                pointers.extend(entry.child_ref for entry in current.entries)
            else:
                for entry in current.entries:
                    stack.append(tree.load_node(entry.child_ref))
        return pointers


def plan_level_lengths(
    leaf_length_bytes: int,
    avg_unique_words_per_object: float,
    vocabulary_size: int,
    capacity: int,
    max_levels: int = 8,
    fill_factor: float = 0.7,
) -> list[int]:
    """Size each MIR2-Tree level with the optimal-length scaling [MC94].

    Level 0 keeps the configured leaf length.  A node at level ``l``
    superimposes roughly ``(fill_factor * capacity) ** l`` objects; the
    expected number of distinct words among ``n`` documents that each
    contribute ``d`` distinct words from a vocabulary of ``V`` follows the
    coupon-collector form ``V * (1 - (1 - d/V) ** n)``.  Each level's
    length scales the leaf length by the ratio of distinct-word counts so
    every level operates at the same false-positive design point.

    Returns:
        One length (bytes) per level, leaves first, non-decreasing.
    """
    if leaf_length_bytes <= 0:
        raise ValueError(f"leaf length must be positive, got {leaf_length_bytes}")
    if vocabulary_size <= 0 or avg_unique_words_per_object <= 0:
        return [leaf_length_bytes] * max(1, max_levels)
    d0 = min(avg_unique_words_per_object, float(vocabulary_size))
    lengths = [leaf_length_bytes]
    branch = max(2.0, fill_factor * capacity)
    for level in range(1, max_levels):
        subtree_objects = branch**level
        try:
            miss = (1.0 - d0 / vocabulary_size) ** subtree_objects
        except OverflowError:  # pragma: no cover - astronomically large trees
            miss = 0.0
        distinct = vocabulary_size * (1.0 - miss)
        distinct = max(d0, min(float(vocabulary_size), distinct))
        lengths.append(scaled_length_bytes(leaf_length_bytes, math.ceil(d0), math.ceil(distinct)))
    return lengths
