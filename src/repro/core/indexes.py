"""Uniform index wrappers: one class per algorithm of the paper.

The evaluation (Section VI) compares four algorithms — R-Tree, IIO,
IR2-Tree, MIR2-Tree — on the same corpus.  Each wrapper here owns its
structure's block device, knows how to build itself from a
:class:`~repro.core.corpus.Corpus`, executes distance-first queries, and
returns a :class:`~repro.core.query.QueryExecution` whose I/O delta spans
both the index device and the shared object file.  Benchmarks and the
engine facade talk only to this interface.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.baselines import iio_top_k
from repro.core.builder import BulkItem, bulk_load, insert_build
from repro.core.corpus import Corpus
from repro.core.ir2tree import IR2Tree
from repro.core.mir2tree import MIR2Tree
from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.core.ranking import RankingCallable
from repro.core.search import SearchOutcome, ir2_top_k, rtree_top_k
from repro.core.search_general import ranked_top_k
from repro.errors import IndexError_, QueryError
from repro.model import SpatialObject
from repro.obs import trace as qtrace
from repro.spatial.geometry import Rect
from repro.spatial.rtree import RTree
from repro.storage.block import BlockDevice, InMemoryBlockDevice
from repro.storage.iostats import collecting_io
from repro.storage.pagestore import PageStore
from repro.text.inverted_index import InvertedIndex
from repro.text.signature import HashSignatureFactory


class SpatialKeywordIndex:
    """Common behaviour: device ownership, build, measured execution."""

    label = "?"

    def __init__(self, corpus: Corpus, device: BlockDevice | None = None) -> None:
        self.corpus = corpus
        self.device = device or InMemoryBlockDevice(
            corpus.device.block_size, name=f"{self.label.lower()}-index"
        )
        self.built = False

    # -- Construction -----------------------------------------------------------

    def build(self, bulk: bool = True, fill: float = 0.7) -> None:
        """Build the structure over every object currently in the corpus.

        Args:
            bulk: use the STR bulk loader (True) or repeated insertion
                (False, the paper's construction path).
            fill: bulk-load node fill fraction.
        """
        items = [
            BulkItem(
                pointer,
                Rect.from_point(obj.point),
                self.corpus.analyzer.terms(obj.text),
            )
            for pointer, obj in self.corpus.iter_items()
        ]
        self._build_structure(items, bulk=bulk, fill=fill)
        self.built = True

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        raise NotImplementedError

    def require_built(self) -> None:
        """Raise :class:`IndexError_` unless :meth:`build` has completed.

        Public so facades (engine, sharded engine, service) can guard
        operations without reaching into private state.
        """
        if not self.built:
            raise IndexError_(f"{self.label} index has not been built yet")

    # Backwards-compatible alias for pre-1.1 callers.
    _require_built = require_built

    @property
    def supports_incremental(self) -> bool:
        """Whether this index can stream results in distance order.

        Only the R-Tree-family indexes traverse space nearest-first; the
        scan baselines (IIO, SIG, S-Tree) materialize candidates in bulk
        and are inherently non-incremental (paper Section V.A).
        """
        return False

    # -- Execution ------------------------------------------------------------------

    def execute(self, query: SpatialKeywordQuery) -> QueryExecution:
        """Run a distance-first query with full I/O accounting."""
        self.require_built()
        return self._measured(query, lambda: self._run(query), self.label)

    def _measured(
        self,
        query: SpatialKeywordQuery,
        runner: Callable[[], SearchOutcome],
        algorithm: str,
    ) -> QueryExecution:
        """Run ``runner`` with per-execution I/O accounting.

        The delta comes from a thread-local collector rather than a
        snapshot/diff of the shared device counters, so concurrent queries
        (the :mod:`repro.serve` layer) each see exactly their own I/O.

        When a trace is active on this thread, the whole measured region
        runs under a ``search`` span wrapping exactly the same code the
        collector observes — which is why the span's block-read events
        reconcile one-to-one with the execution's I/O delta.
        """
        with qtrace.start_span("search", category="engine", algorithm=algorithm) as span:
            with collecting_io() as io:
                outcome = runner()
            if span is not None:
                span.annotate(
                    random_reads=io.random_reads,
                    sequential_reads=io.sequential_reads,
                    objects_loaded=io.objects_loaded,
                    nodes_visited=io.category_reads("node"),
                    objects_inspected=outcome.counters.objects_inspected,
                    false_positives=outcome.counters.false_positives,
                    num_results=len(outcome.results),
                )
        return QueryExecution(
            query=query,
            results=outcome.results,
            io=io,
            objects_inspected=outcome.counters.objects_inspected,
            false_positive_candidates=outcome.counters.false_positives,
            nodes_visited=io.category_reads("node"),
            algorithm=algorithm,
        )

    def _devices(self) -> list[BlockDevice]:
        return [self.device, self.corpus.device]

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        raise NotImplementedError

    # -- Maintenance -------------------------------------------------------------------

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        """Add one (already corpus-stored) object to the structure."""
        raise NotImplementedError

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        """Remove one object from the structure; True when found."""
        raise NotImplementedError

    # -- Introspection ------------------------------------------------------------------

    @property
    def size_mb(self) -> float:
        """Structure footprint in megabytes (Table 2)."""
        raise NotImplementedError

    def reset_io(self) -> None:
        """Zero the I/O counters on every device this index touches."""
        for device in self._devices():
            device.stats.reset()


class _TreeIndex(SpatialKeywordIndex):
    """Shared logic for the three R-Tree-family indexes."""

    def __init__(
        self,
        corpus: Corpus,
        device: BlockDevice | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(corpus, device)
        self.pages = PageStore(self.device)
        self.capacity = capacity
        self.tree: RTree | None = None

    @property
    def supports_incremental(self) -> bool:
        """Tree indexes stream results nearest-first (paper Section V.B)."""
        return True

    def _make_tree(self) -> RTree:
        raise NotImplementedError

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        self.tree = self._make_tree()
        if bulk:
            bulk_load(self.tree, items, fill=fill)
        else:
            insert_build(self.tree, items)

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        self.require_built()
        terms = self.corpus.analyzer.terms(obj.text)
        self.tree.insert(
            pointer, Rect.from_point(obj.point), self.tree.scheme.object_signature(terms)
        )

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        self.require_built()
        return self.tree.delete(pointer, Rect.from_point(obj.point))

    @property
    def size_mb(self) -> float:
        return self.pages.size_mb


class _RankedTreeIndex(_TreeIndex):
    """Signature-bearing trees additionally support ranked queries (§V.C)."""

    def execute_ranked(
        self,
        query: SpatialKeywordQuery,
        ranking: RankingCallable,
        prune_zero_ir: bool = True,
        vocabulary=None,
    ) -> QueryExecution:
        """General ranked top-k with I/O accounting.

        Works on IR2- and MIR2-Trees "with no modification" (the paper's
        Section V.C remark).

        Args:
            query: the top-k query.
            ranking: combined ranking function ``f(distance, ir_score)``.
            prune_zero_ir: drop candidates with zero IR score.
            vocabulary: idf statistics to score against; defaults to this
                corpus's own.  A sharded engine passes the merged global
                vocabulary so every shard scores with corpus-wide idf.
        """
        self.require_built()
        return self._measured(
            query,
            lambda: ranked_top_k(
                self.tree,
                self.corpus.store,
                self.corpus.analyzer,
                vocabulary if vocabulary is not None else self.corpus.vocabulary,
                query,
                ranking,
                prune_zero_ir=prune_zero_ir,
            ),
            f"{self.label}-RANKED",
        )


class RTreeIndex(_TreeIndex):
    """Baseline 1: plain R-Tree with fetch-and-filter NN (Section V.A)."""

    label = "RTREE"

    def _make_tree(self) -> RTree:
        return RTree(self.pages, dims=self.corpus.dims, capacity=self.capacity)

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        return rtree_top_k(self.tree, self.corpus.store, self.corpus.analyzer, query)


class IR2Index(_RankedTreeIndex):
    """The IR2-Tree with the distance-first ``IR2TopK`` algorithm."""

    label = "IR2"

    def __init__(
        self,
        corpus: Corpus,
        signature_bytes: int,
        bits_per_word: int = 3,
        seed: int = 0,
        device: BlockDevice | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(corpus, device, capacity)
        self.factory = HashSignatureFactory(signature_bytes, bits_per_word, seed)

    def _make_tree(self) -> IR2Tree:
        return IR2Tree(
            self.pages, self.factory, dims=self.corpus.dims, capacity=self.capacity
        )

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        return ir2_top_k(self.tree, self.corpus.store, self.corpus.analyzer, query)


class MIR2Index(_RankedTreeIndex):
    """The MIR2-Tree: per-level signature lengths (Section IV)."""

    label = "MIR2"

    def __init__(
        self,
        corpus: Corpus,
        leaf_signature_bytes: int,
        bits_per_word: int = 3,
        seed: int = 0,
        level_lengths: Sequence[int] | None = None,
        device: BlockDevice | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(corpus, device, capacity)
        self.leaf_signature_bytes = leaf_signature_bytes
        self.bits_per_word = bits_per_word
        self.seed = seed
        self.level_lengths = list(level_lengths) if level_lengths else None

    def _make_tree(self) -> MIR2Tree:
        if self.level_lengths is not None:
            return MIR2Tree(
                self.pages,
                self.level_lengths,
                self.corpus.term_resolver,
                dims=self.corpus.dims,
                capacity=self.capacity,
                bits_per_word=self.bits_per_word,
                seed=self.seed,
            )
        vocabulary = self.corpus.vocabulary
        return MIR2Tree.with_planned_levels(
            self.pages,
            self.leaf_signature_bytes,
            max(1.0, vocabulary.average_unique_words_per_document),
            max(1, vocabulary.unique_words),
            self.corpus.term_resolver,
            dims=self.corpus.dims,
            capacity=self.capacity,
            bits_per_word=self.bits_per_word,
            seed=self.seed,
        )

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        return ir2_top_k(self.tree, self.corpus.store, self.corpus.analyzer, query)


class IIOIndex(SpatialKeywordIndex):
    """Baseline 2: Inverted Index Only (Section V.A, Figure 7).

    Args:
        corpus: the shared corpus.
        device: custom backing device.
        compression: posting codec — "raw" (the paper's layout) or
            "varint" (delta compression per [NMN+00], cited in §7).
    """

    label = "IIO"

    def __init__(
        self,
        corpus: Corpus,
        device: BlockDevice | None = None,
        compression: str = "raw",
    ) -> None:
        super().__init__(corpus, device)
        self.index = InvertedIndex(self.device, corpus.analyzer, compression)

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        documents = (
            (pointer, obj.text) for pointer, obj in self.corpus.iter_items()
        )
        self.index.build(documents)

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        return iio_top_k(self.index, self.corpus.store, query)

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        self.require_built()
        self.index.add(pointer, obj.text)

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        self.require_built()
        had = any(
            self.index.document_frequency(term)
            for term in self.corpus.analyzer.terms(obj.text)
        )
        self.index.remove(pointer, obj.text)
        return had

    @property
    def size_mb(self) -> float:
        return self.index.size_mb


class SignatureFileIndex(SpatialKeywordIndex):
    """Extra baseline: sequential signature-file scan [FC84, ZMR98].

    The keyword filter reads the whole compact signature file (almost
    all sequential I/O), then verifies every candidate against the object
    store and sorts survivors by distance — the IR2-Tree's leaf level
    without the spatial hierarchy.  Like IIO it is non-incremental.
    """

    label = "SIG"

    def __init__(
        self,
        corpus: Corpus,
        signature_bytes: int,
        bits_per_word: int = 3,
        seed: int = 0,
        device: BlockDevice | None = None,
    ) -> None:
        super().__init__(corpus, device)
        from repro.text.sigfile import SignatureFile

        self.sigfile = SignatureFile(
            self.device,
            corpus.analyzer,
            HashSignatureFactory(signature_bytes, bits_per_word, seed),
        )

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        self.sigfile.build(
            (pointer, obj.text) for pointer, obj in self.corpus.iter_items()
        )

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        from repro.core.search import SearchOutcome as Outcome
        from repro.model import SearchResult
        from repro.spatial.geometry import target_point_distance

        outcome = Outcome()
        terms = self.corpus.analyzer.query_terms(query.keywords)
        with qtrace.start_span("signature-scan", category="phase"):
            candidates = self.sigfile.candidates(query.keywords)
        scored: list[SearchResult] = []
        with qtrace.start_span("verify", category="phase") as span:
            for pointer in candidates:
                obj = self.corpus.store.load(pointer)
                outcome.counters.objects_inspected += 1
                ok = self.corpus.analyzer.contains_all(obj.text, terms)
                if span is not None:
                    span.event(
                        qtrace.EVT_OBJECT_VERIFY,
                        oid=obj.oid,
                        false_positive=not ok,
                    )
                if not ok:
                    outcome.counters.false_positives += 1
                    continue
                distance = target_point_distance(obj.point, query.target)
                scored.append(SearchResult(obj, distance, score=-distance))
        scored.sort(key=lambda r: (r.distance, r.obj.oid))
        outcome.results = scored[: query.k]
        return outcome

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        self.require_built()
        self.sigfile.add(pointer, obj.text)

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        self.require_built()
        from repro.errors import ObjectNotFoundError

        try:
            self.sigfile.remove(pointer)
        except ObjectNotFoundError:
            return False
        return True

    @property
    def size_mb(self) -> float:
        return self.sigfile.size_mb


class STreeIndex(SpatialKeywordIndex):
    """Extra baseline: S-Tree [Dep86] signature hierarchy, no spatial data.

    The paper's IR2-Tree grafts the indexed-descriptor idea onto spatial
    grouping; this index keeps the signature hierarchy but groups by
    signature *similarity* instead, isolating what the spatial tree
    contributes.  Query processing mirrors SIG/IIO: generate candidates,
    verify, sort by distance.
    """

    label = "STREE"

    def __init__(
        self,
        corpus: Corpus,
        signature_bytes: int,
        bits_per_word: int = 3,
        seed: int = 0,
        device: BlockDevice | None = None,
        capacity: int = 32,
    ) -> None:
        super().__init__(corpus, device)
        from repro.text.stree import STree

        self.pages = PageStore(self.device)
        self.stree = STree(
            self.pages,
            corpus.analyzer,
            HashSignatureFactory(signature_bytes, bits_per_word, seed),
            capacity=capacity,
        )

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        for pointer, obj in self.corpus.iter_items():
            self.stree.insert(pointer, obj.text)

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        from repro.model import SearchResult
        from repro.spatial.geometry import target_point_distance

        outcome = SearchOutcome()
        terms = self.corpus.analyzer.query_terms(query.keywords)
        with qtrace.start_span("signature-scan", category="phase"):
            candidates = self.stree.candidates(query.keywords)
        scored: list[SearchResult] = []
        with qtrace.start_span("verify", category="phase") as span:
            for pointer in candidates:
                obj = self.corpus.store.load(pointer)
                outcome.counters.objects_inspected += 1
                ok = self.corpus.analyzer.contains_all(obj.text, terms)
                if span is not None:
                    span.event(
                        qtrace.EVT_OBJECT_VERIFY,
                        oid=obj.oid,
                        false_positive=not ok,
                    )
                if not ok:
                    outcome.counters.false_positives += 1
                    continue
                distance = target_point_distance(obj.point, query.target)
                scored.append(SearchResult(obj, distance, score=-distance))
        scored.sort(key=lambda r: (r.distance, r.obj.oid))
        outcome.results = scored[: query.k]
        return outcome

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        self.require_built()
        self.stree.insert(pointer, obj.text)

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        raise IndexError_(
            "the S-Tree baseline does not implement deletion; "
            "rebuild the index instead"
        )

    @property
    def size_mb(self) -> float:
        return self.pages.size_mb


def make_index(
    kind: str,
    corpus: Corpus,
    signature_bytes: int = 16,
    bits_per_word: int = 3,
    seed: int = 0,
    capacity: int | None = None,
    compression: str = "raw",
) -> SpatialKeywordIndex:
    """Factory: ``kind`` in {"rtree", "iio", "ir2", "mir2", "sig",\n    "stree"} (case-insensitive)."""
    normalized = kind.strip().lower()
    if normalized == "rtree":
        return RTreeIndex(corpus, capacity=capacity)
    if normalized == "iio":
        return IIOIndex(corpus, compression=compression)
    if normalized == "ir2":
        return IR2Index(
            corpus, signature_bytes, bits_per_word=bits_per_word, seed=seed,
            capacity=capacity,
        )
    if normalized == "mir2":
        return MIR2Index(
            corpus, signature_bytes, bits_per_word=bits_per_word, seed=seed,
            capacity=capacity,
        )
    if normalized in ("sig", "sigfile"):
        return SignatureFileIndex(
            corpus, signature_bytes, bits_per_word=bits_per_word, seed=seed
        )
    if normalized == "stree":
        return STreeIndex(
            corpus, signature_bytes, bits_per_word=bits_per_word, seed=seed
        )
    raise QueryError(f"unknown index kind {kind!r}")
