"""Uniform index wrappers: one class per algorithm of the paper.

The evaluation (Section VI) compares four algorithms — R-Tree, IIO,
IR2-Tree, MIR2-Tree — on the same corpus.  Each wrapper here owns its
structure's block device, knows how to build itself from a
:class:`~repro.core.corpus.Corpus`, executes distance-first queries, and
returns a :class:`~repro.core.query.QueryExecution` whose I/O delta spans
both the index device and the shared object file.  Benchmarks and the
engine facade talk only to this interface.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.core.baselines import iio_top_k
from repro.core.builder import BulkItem, bulk_load, insert_build
from repro.core.corpus import Corpus
from repro.core.ir2tree import IR2Tree
from repro.core.mir2tree import MIR2Tree
from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.core.ranking import RankingCallable
from repro.core.search import (
    SearchCounters,
    SearchOutcome,
    ir2_top_k,
    ir2_top_k_iter,
    rtree_top_k,
    rtree_top_k_iter,
)
from repro.core.search_general import ranked_top_k
from repro.errors import IndexError_, QueryError
from repro.model import SearchResult, SpatialObject
from repro.obs import trace as qtrace
from repro.plan import PlannerStatistics, QueryPlanner
from repro.plan.cost import (
    CostEstimate,
    estimate_iio,
    estimate_signature_scan,
    estimate_tree,
)
from repro.spatial.geometry import Rect
from repro.spatial.rtree import RTree
from repro.storage.block import BlockDevice, InMemoryBlockDevice
from repro.storage.iostats import collecting_io
from repro.storage.pagestore import PageStore
from repro.storage.timing import DEFAULT_DRIVE
from repro.text.inverted_index import InvertedIndex
from repro.text.sigdesign import false_positive_rate_for_query
from repro.text.signature import HashSignatureFactory


class SpatialKeywordIndex:
    """Common behaviour: device ownership, build, measured execution."""

    label = "?"

    def __init__(self, corpus: Corpus, device: BlockDevice | None = None) -> None:
        self.corpus = corpus
        self.device = device or InMemoryBlockDevice(
            corpus.device.block_size, name=f"{self.label.lower()}-index"
        )
        self.built = False

    # -- Construction -----------------------------------------------------------

    def build(self, bulk: bool = True, fill: float = 0.7) -> None:
        """Build the structure over every object currently in the corpus.

        Args:
            bulk: use the STR bulk loader (True) or repeated insertion
                (False, the paper's construction path).
            fill: bulk-load node fill fraction.
        """
        items = [
            BulkItem(
                pointer,
                Rect.from_point(obj.point),
                self.corpus.analyzer.terms(obj.text),
            )
            for pointer, obj in self.corpus.iter_items()
        ]
        self._build_structure(items, bulk=bulk, fill=fill)
        self.built = True

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        raise NotImplementedError

    def require_built(self) -> None:
        """Raise :class:`IndexError_` unless :meth:`build` has completed.

        Public so facades (engine, sharded engine, service) can guard
        operations without reaching into private state.
        """
        if not self.built:
            raise IndexError_(f"{self.label} index has not been built yet")

    # Backwards-compatible alias for pre-1.1 callers.
    _require_built = require_built

    @property
    def supports_incremental(self) -> bool:
        """Whether this index can stream results in distance order.

        Only the R-Tree-family indexes traverse space nearest-first; the
        scan baselines (IIO, SIG, S-Tree) materialize candidates in bulk
        and are inherently non-incremental (paper Section V.A).
        """
        return False

    # -- Planning -------------------------------------------------------------------

    def estimate_cost(
        self, query: SpatialKeywordQuery, stats: PlannerStatistics
    ) -> CostEstimate | None:
        """Expected I/O of answering ``query`` here; None = cannot execute.

        The hook the cost-based planner (:mod:`repro.plan`) calls on each
        candidate strategy.  The base class cannot price itself.
        """
        return None

    def result_stream(
        self,
        query: SpatialKeywordQuery,
        counters: SearchCounters | None = None,
    ) -> Iterator[SearchResult]:
        """Lazy nearest-first result stream (incremental kinds only).

        Raises:
            QueryError: when :attr:`supports_incremental` is False.
        """
        raise QueryError(
            f"index kind {self.label!r} cannot stream results incrementally"
        )

    # -- Execution ------------------------------------------------------------------

    def execute(self, query: SpatialKeywordQuery) -> QueryExecution:
        """Run a distance-first query with full I/O accounting."""
        self.require_built()
        return self._measured(query, lambda: self._run(query), self.label)

    def _measured(
        self,
        query: SpatialKeywordQuery,
        runner: Callable[[], SearchOutcome],
        algorithm: str,
    ) -> QueryExecution:
        """Run ``runner`` with per-execution I/O accounting.

        The delta comes from a thread-local collector rather than a
        snapshot/diff of the shared device counters, so concurrent queries
        (the :mod:`repro.serve` layer) each see exactly their own I/O.

        When a trace is active on this thread, the whole measured region
        runs under a ``search`` span wrapping exactly the same code the
        collector observes — which is why the span's block-read events
        reconcile one-to-one with the execution's I/O delta.
        """
        with qtrace.start_span("search", category="engine", algorithm=algorithm) as span:
            with collecting_io() as io:
                outcome = runner()
            if span is not None:
                span.annotate(
                    random_reads=io.random_reads,
                    sequential_reads=io.sequential_reads,
                    objects_loaded=io.objects_loaded,
                    nodes_visited=io.category_reads("node"),
                    objects_inspected=outcome.counters.objects_inspected,
                    false_positives=outcome.counters.false_positives,
                    num_results=len(outcome.results),
                )
        return QueryExecution(
            query=query,
            results=outcome.results,
            io=io,
            objects_inspected=outcome.counters.objects_inspected,
            false_positive_candidates=outcome.counters.false_positives,
            nodes_visited=io.category_reads("node"),
            algorithm=algorithm,
        )

    def _devices(self) -> list[BlockDevice]:
        return [self.device, self.corpus.device]

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        raise NotImplementedError

    # -- Maintenance -------------------------------------------------------------------

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        """Add one (already corpus-stored) object to the structure."""
        raise NotImplementedError

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        """Remove one object from the structure; True when found."""
        raise NotImplementedError

    # -- Introspection ------------------------------------------------------------------

    @property
    def size_mb(self) -> float:
        """Structure footprint in megabytes (Table 2)."""
        raise NotImplementedError

    def reset_io(self) -> None:
        """Zero the I/O counters on every device this index touches."""
        for device in self._devices():
            device.stats.reset()


class _TreeIndex(SpatialKeywordIndex):
    """Shared logic for the three R-Tree-family indexes."""

    def __init__(
        self,
        corpus: Corpus,
        device: BlockDevice | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(corpus, device)
        self.pages = PageStore(self.device)
        self.capacity = capacity
        self.tree: RTree | None = None

    @property
    def supports_incremental(self) -> bool:
        """Tree indexes stream results nearest-first (paper Section V.B)."""
        return True

    def _query_false_positive_rate(self, n_terms: int, stats) -> float:
        """Probability a non-matching candidate survives the leaf filter.

        A plain R-Tree has no keyword filter: every scanned candidate is
        loaded and verified.  Signature-bearing subclasses override this
        with the [MC94] design-formula rate.
        """
        return 1.0

    def estimate_cost(
        self, query: SpatialKeywordQuery, stats: PlannerStatistics
    ) -> CostEstimate | None:
        if query.ranking is not None:
            return None  # ranked execution needs signatures (Section V.C)
        return estimate_tree(self, query, stats)

    def result_stream(
        self,
        query: SpatialKeywordQuery,
        counters: SearchCounters | None = None,
    ) -> Iterator[SearchResult]:
        self.require_built()
        return ir2_top_k_iter(
            self.tree, self.corpus.store, self.corpus.analyzer, query,
            counters=counters,
        )

    def _make_tree(self) -> RTree:
        raise NotImplementedError

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        self.tree = self._make_tree()
        if bulk:
            bulk_load(self.tree, items, fill=fill)
        else:
            insert_build(self.tree, items)

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        self.require_built()
        terms = self.corpus.analyzer.terms(obj.text)
        self.tree.insert(
            pointer, Rect.from_point(obj.point), self.tree.scheme.object_signature(terms)
        )

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        self.require_built()
        return self.tree.delete(pointer, Rect.from_point(obj.point))

    @property
    def size_mb(self) -> float:
        return self.pages.size_mb


class _RankedTreeIndex(_TreeIndex):
    """Signature-bearing trees additionally support ranked queries (§V.C)."""

    def estimate_cost(
        self, query: SpatialKeywordQuery, stats: PlannerStatistics
    ) -> CostEstimate | None:
        # Unlike the plain R-Tree, ranked queries are priceable here.
        return estimate_tree(self, query, stats)

    def execute_ranked(
        self,
        query: SpatialKeywordQuery,
        ranking: RankingCallable,
        prune_zero_ir: bool = True,
        vocabulary=None,
    ) -> QueryExecution:
        """General ranked top-k with I/O accounting.

        Works on IR2- and MIR2-Trees "with no modification" (the paper's
        Section V.C remark).

        Args:
            query: the top-k query.
            ranking: combined ranking function ``f(distance, ir_score)``.
            prune_zero_ir: drop candidates with zero IR score.
            vocabulary: idf statistics to score against; defaults to this
                corpus's own.  A sharded engine passes the merged global
                vocabulary so every shard scores with corpus-wide idf.
        """
        self.require_built()
        return self._measured(
            query,
            lambda: ranked_top_k(
                self.tree,
                self.corpus.store,
                self.corpus.analyzer,
                vocabulary if vocabulary is not None else self.corpus.vocabulary,
                query,
                ranking,
                prune_zero_ir=prune_zero_ir,
            ),
            f"{self.label}-RANKED",
        )


class RTreeIndex(_TreeIndex):
    """Baseline 1: plain R-Tree with fetch-and-filter NN (Section V.A)."""

    label = "RTREE"

    def _make_tree(self) -> RTree:
        return RTree(self.pages, dims=self.corpus.dims, capacity=self.capacity)

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        return rtree_top_k(self.tree, self.corpus.store, self.corpus.analyzer, query)

    def result_stream(
        self,
        query: SpatialKeywordQuery,
        counters: SearchCounters | None = None,
    ) -> Iterator[SearchResult]:
        self.require_built()
        return rtree_top_k_iter(
            self.tree, self.corpus.store, self.corpus.analyzer, query,
            counters=counters,
        )


class IR2Index(_RankedTreeIndex):
    """The IR2-Tree with the distance-first ``IR2TopK`` algorithm."""

    label = "IR2"

    def __init__(
        self,
        corpus: Corpus,
        signature_bytes: int,
        bits_per_word: int = 3,
        seed: int = 0,
        device: BlockDevice | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(corpus, device, capacity)
        self.factory = HashSignatureFactory(signature_bytes, bits_per_word, seed)

    def _make_tree(self) -> IR2Tree:
        return IR2Tree(
            self.pages, self.factory, dims=self.corpus.dims, capacity=self.capacity
        )

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        return ir2_top_k(self.tree, self.corpus.store, self.corpus.analyzer, query)

    def _query_false_positive_rate(self, n_terms: int, stats) -> float:
        return false_positive_rate_for_query(
            self.factory.length_bits,
            max(1, round(stats.avg_distinct_terms)),
            self.factory.bits_per_word,
            max(1, n_terms),
        )


class MIR2Index(_RankedTreeIndex):
    """The MIR2-Tree: per-level signature lengths (Section IV)."""

    label = "MIR2"

    def __init__(
        self,
        corpus: Corpus,
        leaf_signature_bytes: int,
        bits_per_word: int = 3,
        seed: int = 0,
        level_lengths: Sequence[int] | None = None,
        device: BlockDevice | None = None,
        capacity: int | None = None,
    ) -> None:
        super().__init__(corpus, device, capacity)
        self.leaf_signature_bytes = leaf_signature_bytes
        self.bits_per_word = bits_per_word
        self.seed = seed
        self.level_lengths = list(level_lengths) if level_lengths else None

    def _make_tree(self) -> MIR2Tree:
        if self.level_lengths is not None:
            return MIR2Tree(
                self.pages,
                self.level_lengths,
                self.corpus.term_resolver,
                dims=self.corpus.dims,
                capacity=self.capacity,
                bits_per_word=self.bits_per_word,
                seed=self.seed,
            )
        vocabulary = self.corpus.vocabulary
        return MIR2Tree.with_planned_levels(
            self.pages,
            self.leaf_signature_bytes,
            max(1.0, vocabulary.average_unique_words_per_document),
            max(1, vocabulary.unique_words),
            self.corpus.term_resolver,
            dims=self.corpus.dims,
            capacity=self.capacity,
            bits_per_word=self.bits_per_word,
            seed=self.seed,
        )

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        return ir2_top_k(self.tree, self.corpus.store, self.corpus.analyzer, query)

    def _query_false_positive_rate(self, n_terms: int, stats) -> float:
        return false_positive_rate_for_query(
            self.leaf_signature_bytes * 8,
            max(1, round(stats.avg_distinct_terms)),
            self.bits_per_word,
            max(1, n_terms),
        )


class IIOIndex(SpatialKeywordIndex):
    """Baseline 2: Inverted Index Only (Section V.A, Figure 7).

    Args:
        corpus: the shared corpus.
        device: custom backing device.
        compression: posting codec — "raw" (the paper's layout) or
            "varint" (delta compression per [NMN+00], cited in §7).
    """

    label = "IIO"

    def __init__(
        self,
        corpus: Corpus,
        device: BlockDevice | None = None,
        compression: str = "raw",
    ) -> None:
        super().__init__(corpus, device)
        self.index = InvertedIndex(self.device, corpus.analyzer, compression)

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        documents = (
            (pointer, obj.text) for pointer, obj in self.corpus.iter_items()
        )
        self.index.build(documents)

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        return iio_top_k(self.index, self.corpus.store, query)

    def estimate_cost(
        self, query: SpatialKeywordQuery, stats: PlannerStatistics
    ) -> CostEstimate | None:
        if query.ranking is not None:
            return None  # no IR scores without signatures/idf traversal
        return estimate_iio(self.index, query, stats)

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        self.require_built()
        self.index.add(pointer, obj.text)

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        self.require_built()
        # The inverted index reports whether this pointer was really in
        # a posting list; "some other document shares the terms" must
        # not count as an effective delete (AutoIndex would uncount the
        # object's point from the planner's density grid).
        return self.index.remove(pointer, obj.text)

    @property
    def size_mb(self) -> float:
        return self.index.size_mb


class SignatureFileIndex(SpatialKeywordIndex):
    """Extra baseline: sequential signature-file scan [FC84, ZMR98].

    The keyword filter reads the whole compact signature file (almost
    all sequential I/O), then verifies every candidate against the object
    store and sorts survivors by distance — the IR2-Tree's leaf level
    without the spatial hierarchy.  Like IIO it is non-incremental.
    """

    label = "SIG"

    def __init__(
        self,
        corpus: Corpus,
        signature_bytes: int,
        bits_per_word: int = 3,
        seed: int = 0,
        device: BlockDevice | None = None,
    ) -> None:
        super().__init__(corpus, device)
        from repro.text.sigfile import SignatureFile

        self.sigfile = SignatureFile(
            self.device,
            corpus.analyzer,
            HashSignatureFactory(signature_bytes, bits_per_word, seed),
        )

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        self.sigfile.build(
            (pointer, obj.text) for pointer, obj in self.corpus.iter_items()
        )

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        from repro.core.search import SearchOutcome as Outcome
        from repro.model import SearchResult
        from repro.spatial.geometry import target_point_distance

        outcome = Outcome()
        terms = self.corpus.analyzer.query_terms(query.keywords)
        with qtrace.start_span("signature-scan", category="phase"):
            candidates = self.sigfile.candidates(query.keywords)
        scored: list[SearchResult] = []
        with qtrace.start_span("verify", category="phase") as span:
            for pointer in candidates:
                obj = self.corpus.store.load(pointer)
                outcome.counters.objects_inspected += 1
                ok = self.corpus.analyzer.contains_all(obj.text, terms)
                if span is not None:
                    span.event(
                        qtrace.EVT_OBJECT_VERIFY,
                        oid=obj.oid,
                        false_positive=not ok,
                    )
                if not ok:
                    outcome.counters.false_positives += 1
                    continue
                distance = target_point_distance(obj.point, query.target)
                scored.append(SearchResult(obj, distance, score=-distance))
        scored.sort(key=lambda r: (r.distance, r.obj.oid))
        outcome.results = scored[: query.k]
        return outcome

    def estimate_cost(
        self, query: SpatialKeywordQuery, stats: PlannerStatistics
    ) -> CostEstimate | None:
        if query.ranking is not None:
            return None
        return estimate_signature_scan(self.sigfile, query, stats)

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        self.require_built()
        self.sigfile.add(pointer, obj.text)

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        self.require_built()
        from repro.errors import ObjectNotFoundError

        try:
            self.sigfile.remove(pointer)
        except ObjectNotFoundError:
            return False
        return True

    @property
    def size_mb(self) -> float:
        return self.sigfile.size_mb


class STreeIndex(SpatialKeywordIndex):
    """Extra baseline: S-Tree [Dep86] signature hierarchy, no spatial data.

    The paper's IR2-Tree grafts the indexed-descriptor idea onto spatial
    grouping; this index keeps the signature hierarchy but groups by
    signature *similarity* instead, isolating what the spatial tree
    contributes.  Query processing mirrors SIG/IIO: generate candidates,
    verify, sort by distance.
    """

    label = "STREE"

    def __init__(
        self,
        corpus: Corpus,
        signature_bytes: int,
        bits_per_word: int = 3,
        seed: int = 0,
        device: BlockDevice | None = None,
        capacity: int = 32,
    ) -> None:
        super().__init__(corpus, device)
        from repro.text.stree import STree

        self.pages = PageStore(self.device)
        self.stree = STree(
            self.pages,
            corpus.analyzer,
            HashSignatureFactory(signature_bytes, bits_per_word, seed),
            capacity=capacity,
        )

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        for pointer, obj in self.corpus.iter_items():
            self.stree.insert(pointer, obj.text)

    def _run(self, query: SpatialKeywordQuery) -> SearchOutcome:
        from repro.model import SearchResult
        from repro.spatial.geometry import target_point_distance

        outcome = SearchOutcome()
        terms = self.corpus.analyzer.query_terms(query.keywords)
        with qtrace.start_span("signature-scan", category="phase"):
            candidates = self.stree.candidates(query.keywords)
        scored: list[SearchResult] = []
        with qtrace.start_span("verify", category="phase") as span:
            for pointer in candidates:
                obj = self.corpus.store.load(pointer)
                outcome.counters.objects_inspected += 1
                ok = self.corpus.analyzer.contains_all(obj.text, terms)
                if span is not None:
                    span.event(
                        qtrace.EVT_OBJECT_VERIFY,
                        oid=obj.oid,
                        false_positive=not ok,
                    )
                if not ok:
                    outcome.counters.false_positives += 1
                    continue
                distance = target_point_distance(obj.point, query.target)
                scored.append(SearchResult(obj, distance, score=-distance))
        scored.sort(key=lambda r: (r.distance, r.obj.oid))
        outcome.results = scored[: query.k]
        return outcome

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        self.require_built()
        self.stree.insert(pointer, obj.text)

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        raise IndexError_(
            "the S-Tree baseline does not implement deletion; "
            "rebuild the index instead"
        )

    @property
    def size_mb(self) -> float:
        return self.pages.size_mb


#: Default strategy set for ``index="auto"``: the distance-first tree and
#: the inverted-index conjunction cover both ends of the selectivity
#: spectrum (and "ir2" keeps ranked + incremental queries available).
AUTO_DEFAULT_CANDIDATES = ("ir2", "iio")


class AutoIndex(SpatialKeywordIndex):
    """Adaptive meta-index: one structure per candidate, planner-routed.

    Builds every candidate index kind over the *same* shared corpus and
    routes each query to whichever strategy the cost model expects to be
    cheapest (see :mod:`repro.plan`).  Every answer is produced by a real
    candidate index, so the differential guarantees of the fixed kinds
    carry over unchanged — a wrong estimate costs I/O, never correctness.

    Args:
        corpus: the shared corpus.
        candidates: strategy kinds to build and route among (any of
            "ir2", "mir2", "rtree", "iio", "sig"; order is the
            deterministic cost tie-break).  Defaults to
            :data:`AUTO_DEFAULT_CANDIDATES`.
        signature_bytes / bits_per_word / seed / capacity / compression:
            forwarded to every candidate that uses them.
    """

    label = "AUTO"

    def __init__(
        self,
        corpus: Corpus,
        signature_bytes: int = 16,
        bits_per_word: int = 3,
        seed: int = 0,
        capacity: int | None = None,
        compression: str = "raw",
        candidates: Sequence[str] | None = None,
    ) -> None:
        super().__init__(corpus)
        raw = tuple(candidates) if candidates else AUTO_DEFAULT_CANDIDATES
        normalized: list[str] = []
        for kind in raw:
            name = kind.strip().lower()
            if name == "auto":
                raise QueryError("auto index cannot nest itself as a candidate")
            if name not in normalized:
                normalized.append(name)
        self.candidates = tuple(normalized)
        self._config = {
            "signature_bytes": signature_bytes,
            "bits_per_word": bits_per_word,
            "seed": seed,
            "capacity": capacity,
            "compression": compression,
        }
        self.children: dict[str, SpatialKeywordIndex] = {
            kind: make_index(
                kind,
                corpus,
                signature_bytes=signature_bytes,
                bits_per_word=bits_per_word,
                seed=seed,
                capacity=capacity,
                compression=compression,
            )
            for kind in self.candidates
        }
        self.stats = PlannerStatistics(corpus)
        self.planner = QueryPlanner(self.children, self.stats)

    # -- Construction -----------------------------------------------------------

    def _build_structure(self, items: list[BulkItem], bulk: bool, fill: float) -> None:
        for child in self.children.values():
            child.build(bulk=bulk, fill=fill)
        self.stats.rebuild()

    # -- Planning ---------------------------------------------------------------

    def plan_for(self, query: SpatialKeywordQuery):
        """The (cached) routing decision for ``query``.

        Exposed so :class:`repro.shard.ShardedEngine` can route each
        shard's sub-query before choosing the pull strategy.
        """
        return self.planner.decide(query)

    def strategy_supports_streaming(self, strategy: str) -> bool:
        """Whether the named strategy can stream results nearest-first."""
        child = self.children.get(strategy)
        return child is not None and child.supports_incremental

    def explain(self, query: SpatialKeywordQuery) -> dict:
        """Planner breakdown for the CLI's ``repro plan explain``."""
        return self.planner.explain(query)

    def _plan(self, query: SpatialKeywordQuery):
        with qtrace.start_span("plan", category="phase") as span:
            decision = self.planner.decide(query)
            if span is not None:
                span.annotate(
                    strategy=decision.strategy,
                    query_class=decision.query_class,
                    cached=decision.cached,
                    estimated_cost_ms=round(decision.cost_ms, 4),
                )
        return decision

    def _finalize(self, decision, execution: QueryExecution) -> QueryExecution:
        actual_ms = DEFAULT_DRIVE.simulated_ms(execution.io)
        execution.algorithm = f"AUTO:{execution.algorithm}"
        plan = decision.as_dict(self.planner.drive)
        plan["actual_cost_ms"] = round(actual_ms, 4)
        execution.plan = plan
        self.planner.observe(decision, actual_ms)
        return execution

    # -- Execution --------------------------------------------------------------

    def execute(self, query: SpatialKeywordQuery) -> QueryExecution:
        self.require_built()
        decision = self._plan(query)
        child = self.children[decision.strategy]
        return self._finalize(decision, child.execute(query))

    def execute_ranked(
        self,
        query: SpatialKeywordQuery,
        ranking: RankingCallable,
        prune_zero_ir: bool = True,
        vocabulary=None,
    ) -> QueryExecution:
        """Route a ranked query among the ranked-capable candidates."""
        self.require_built()
        planned = query if query.ranking is not None else query.with_ranking(ranking)
        decision = self._plan(planned)
        child = self.children[decision.strategy]
        execution = child.execute_ranked(
            query, ranking, prune_zero_ir=prune_zero_ir, vocabulary=vocabulary
        )
        return self._finalize(decision, execution)

    @property
    def supports_incremental(self) -> bool:
        return any(
            child.supports_incremental for child in self.children.values()
        )

    def result_stream(
        self,
        query: SpatialKeywordQuery,
        counters: SearchCounters | None = None,
    ) -> Iterator[SearchResult]:
        """Stream from the planned strategy when it can, else any tree.

        Streaming is only meaningful on tree candidates; when the planner
        prefers a scan strategy but the caller insists on a stream (e.g.
        ``query_incremental``), the first tree candidate serves it.
        """
        self.require_built()
        decision = self.planner.decide(query)
        strategy = decision.strategy
        if not self.strategy_supports_streaming(strategy):
            strategy = next(
                (
                    kind
                    for kind in self.candidates
                    if self.children[kind].supports_incremental
                ),
                None,
            )
        if strategy is None:
            raise QueryError(
                f"index kind {self.label!r} cannot stream results "
                "incrementally: no tree candidate available"
            )
        return self.children[strategy].result_stream(query, counters=counters)

    # -- Maintenance ------------------------------------------------------------

    def insert_object(self, pointer: int, obj: SpatialObject) -> None:
        self.require_built()
        for child in self.children.values():
            child.insert_object(pointer, obj)
        self.stats.note_insert(obj)

    def delete_object(self, pointer: int, obj: SpatialObject) -> bool:
        self.require_built()
        removed = False
        for child in self.children.values():
            removed = child.delete_object(pointer, obj) or removed
        # A delete that removed nothing must not move the statistics:
        # bumping the version would needlessly flush the plan cache, and
        # uncounting a never-present point would corrupt the density
        # grid's accounting.
        if removed:
            self.stats.note_delete(obj)
        return removed

    # -- Introspection ----------------------------------------------------------

    @property
    def size_mb(self) -> float:
        """Summed footprint: adaptivity is paid for in structure space."""
        return sum(child.size_mb for child in self.children.values())

    def _devices(self) -> list[BlockDevice]:
        devices: list[BlockDevice] = []
        for child in self.children.values():
            for device in child._devices():
                if all(device is not seen for seen in devices):
                    devices.append(device)
        return devices


def make_index(
    kind: str,
    corpus: Corpus,
    signature_bytes: int = 16,
    bits_per_word: int = 3,
    seed: int = 0,
    capacity: int | None = None,
    compression: str = "raw",
    auto_candidates: Sequence[str] | None = None,
) -> SpatialKeywordIndex:
    """Factory: ``kind`` in {"rtree", "iio", "ir2", "mir2", "sig",\n    "stree", "auto"} (case-insensitive)."""
    normalized = kind.strip().lower()
    if normalized == "rtree":
        return RTreeIndex(corpus, capacity=capacity)
    if normalized == "iio":
        return IIOIndex(corpus, compression=compression)
    if normalized == "ir2":
        return IR2Index(
            corpus, signature_bytes, bits_per_word=bits_per_word, seed=seed,
            capacity=capacity,
        )
    if normalized == "mir2":
        return MIR2Index(
            corpus, signature_bytes, bits_per_word=bits_per_word, seed=seed,
            capacity=capacity,
        )
    if normalized in ("sig", "sigfile"):
        return SignatureFileIndex(
            corpus, signature_bytes, bits_per_word=bits_per_word, seed=seed
        )
    if normalized == "stree":
        return STreeIndex(
            corpus, signature_bytes, bits_per_word=bits_per_word, seed=seed
        )
    if normalized == "auto":
        return AutoIndex(
            corpus,
            signature_bytes=signature_bytes,
            bits_per_word=bits_per_word,
            seed=seed,
            capacity=capacity,
            compression=compression,
            candidates=auto_candidates,
        )
    raise QueryError(f"unknown index kind {kind!r}")
