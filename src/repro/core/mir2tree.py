"""The Multilevel IR2-Tree (MIR2-Tree), paper Section IV.

Fixed-length signatures saturate toward the root: a high node superimposes
so many words that most bits are 1 and the signature stops pruning.  The
MIR2-Tree counters this with multi-level superimposed coding [CS89, DR83]:
every level gets its own (optimal [MC94]) signature length, and a node's
signature superimposes the signatures of *all objects in its subtree*
hashed at that level's length.

The price is maintenance: differing lengths mean a parent signature cannot
be derived from its children's signatures, so Insert/Delete recompute each
affected ancestor by re-reading every object below it (counted I/O).  The
paper's verdict — "for frequently updated datasets, IR2-Tree is the
choice" — is reproduced by ``benchmarks/bench_maintenance.py``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.ir2tree import EntryMatcher
from repro.core.schemes import MIR2Scheme, TermResolver, plan_level_lengths
from repro.spatial.geometry import Rect
from repro.spatial.rtree import Entry, Node, RTree
from repro.spatial.split import SplitStrategy
from repro.storage.pagestore import PageStore
from repro.text.signature import Signature


class MIR2Tree(RTree):
    """R-Tree with per-level signature lengths (object superimposition).

    Args:
        pages: page store for the node images.
        level_lengths: signature bytes per level, leaves first; levels
            beyond the list reuse its last value.  Use
            :func:`~repro.core.schemes.plan_level_lengths` to derive them
            from corpus statistics.
        term_resolver: object pointer -> distinct terms, used by the
            maintenance walks (reads are charged to the object store).
        dims: spatial dimensionality.
        capacity: entries per node (paper: same fan-out as the R-Tree).
        bits_per_word: signature hash bits per word.
        seed: signature hash seed.
        split_strategy: node split algorithm (quadratic by default).
    """

    algorithm_label = "MIR2"

    def __init__(
        self,
        pages: PageStore,
        level_lengths: Sequence[int],
        term_resolver: TermResolver,
        dims: int = 2,
        capacity: int | None = None,
        bits_per_word: int = 3,
        seed: int = 0,
        split_strategy: SplitStrategy | None = None,
    ) -> None:
        scheme = MIR2Scheme(level_lengths, term_resolver, bits_per_word, seed)
        super().__init__(
            pages,
            dims=dims,
            capacity=capacity,
            split_strategy=split_strategy,
            scheme=scheme,
        )
        self.mir_scheme = scheme

    @classmethod
    def with_planned_levels(
        cls,
        pages: PageStore,
        leaf_length_bytes: int,
        avg_unique_words_per_object: float,
        vocabulary_size: int,
        term_resolver: TermResolver,
        dims: int = 2,
        capacity: int | None = None,
        bits_per_word: int = 3,
        seed: int = 0,
        split_strategy: SplitStrategy | None = None,
    ) -> "MIR2Tree":
        """Build with level lengths planned from corpus statistics.

        Mirrors the paper's setup where "the displayed signature lengths
        are used for the leaf nodes of MIR2-Tree.  Longer signatures are
        used for the top nodes."
        """
        from repro.storage.serialization import node_capacity

        effective_capacity = capacity or node_capacity(
            pages.device.block_size, dims
        )
        lengths = plan_level_lengths(
            leaf_length_bytes,
            avg_unique_words_per_object,
            vocabulary_size,
            effective_capacity,
        )
        return cls(
            pages,
            lengths,
            term_resolver,
            dims=dims,
            capacity=capacity,
            bits_per_word=bits_per_word,
            seed=seed,
            split_strategy=split_strategy,
        )

    # -- Object-level API ----------------------------------------------------------

    def insert_object(
        self, obj_ptr: int, point: Sequence[float], terms: Sequence[str] | set[str]
    ) -> None:
        """Insert an object (leaf signature at the level-0 length).

        Ancestor signatures are recomputed by the scheme's subtree walks
        during AdjustTree — the expensive maintenance the paper describes.
        """
        signature = self.mir_scheme.factory_for_level(0).for_words(terms)
        self.insert(obj_ptr, Rect.from_point(point), signature.to_bytes())

    def delete_object(self, obj_ptr: int, point: Sequence[float]) -> bool:
        """Delete the entry for ``obj_ptr`` at ``point``; True when found."""
        return self.delete(obj_ptr, Rect.from_point(point))

    # -- Query-side signature helpers -------------------------------------------------

    def signature_matcher(self, terms: Sequence[str]) -> EntryMatcher:
        """Per-level "s matches w" test for distance-first search.

        The query signature is materialized lazily at each level's length
        the first time an entry of that level is tested.
        """
        per_level: dict[int, Signature] = {}

        def matches(entry: Entry, node: Node) -> bool:
            query = per_level.get(node.level)
            if query is None:
                query = self.mir_scheme.factory_for_level(node.level).for_words(terms)
                per_level[node.level] = query
            return Signature.from_bytes(entry.signature).matches(query)

        return matches

    def matched_terms(
        self, entry: Entry, node: Node, terms: Sequence[str]
    ) -> list[str]:
        """Query terms individually covered by the entry's signature."""
        factory = self.mir_scheme.factory_for_level(node.level)
        entry_signature = Signature.from_bytes(entry.signature)
        return [
            term
            for term in terms
            if entry_signature.matches(factory.for_word(term))
        ]
