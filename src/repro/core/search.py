"""Distance-first top-k spatial keyword search (paper Section V.B).

:func:`ir2_top_k` is the paper's ``IR2TopK`` (Figure 8): the incremental
NN traversal with the query-signature test applied to every entry, plus
the false-positive verification of Line 21 ("if T.t contains all keywords
in Q.t").  It works unchanged on IR2- and MIR2-Trees — the only
difference is the tree's :meth:`signature_matcher`, exactly as the paper
notes ("these last two algorithms can also operate on MIR2-Trees with no
modification").

An incremental generator variant is exposed for callers who want to pull
results lazily (e.g. pagination), plus counters for the cost metrics the
experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.query import SpatialKeywordQuery
from repro.model import SearchResult, result_sort_key
from repro.obs import trace as qtrace
from repro.spatial.geometry import target_point_distance
from repro.spatial.nearest import NNTrace, incremental_nearest
from repro.spatial.rtree import RTree
from repro.storage.objectstore import ObjectStore
from repro.text.analyzer import Analyzer


@dataclass
class SearchCounters:
    """Algorithm-level cost counters (block I/O is tracked by the devices).

    Attributes:
        objects_inspected: objects loaded for verification.
        false_positives: loaded objects that failed the keyword check —
            signature false positives for IR2/MIR2, keyword misses for the
            R-Tree baseline.
    """

    objects_inspected: int = 0
    false_positives: int = 0


@dataclass
class SearchOutcome:
    """Results plus counters for one executed search."""

    results: list[SearchResult] = field(default_factory=list)
    counters: SearchCounters = field(default_factory=SearchCounters)


def ir2_top_k_iter(
    tree: RTree,
    store: ObjectStore,
    analyzer: Analyzer,
    query: SpatialKeywordQuery,
    counters: SearchCounters | None = None,
    trace: NNTrace | None = None,
) -> Iterator[SearchResult]:
    """Incrementally yield distance-first results from an IR2/MIR2-Tree.

    Each candidate produced by the signature-filtered NN traversal is
    loaded and verified against the actual keywords; false positives are
    discarded (and counted) without being yielded.
    """
    terms = analyzer.query_terms(query.keywords)
    matcher = tree.signature_matcher(terms)
    for obj_ptr, distance in incremental_nearest(
        tree, query.target, entry_filter=matcher, trace=trace
    ):
        obj = store.load(obj_ptr)
        if counters is not None:
            counters.objects_inspected += 1
        ok = analyzer.contains_all(obj.text, terms)
        span = qtrace.current_span()
        if span is not None:
            span.event(
                qtrace.EVT_OBJECT_VERIFY, oid=obj.oid, false_positive=not ok
            )
        if ok:
            yield SearchResult(obj, distance, score=-distance)
        elif counters is not None:
            counters.false_positives += 1


def drain_top_k(
    iterator: Iterator[SearchResult], k: int
) -> list[SearchResult]:
    """Top ``k`` of a non-decreasing distance stream, ties cut by oid.

    Stopping at exactly ``k`` results would truncate the tie group at
    the k-th distance in heap-traversal order, so two correct indexes
    (or a single vs a sharded engine) could legitimately return
    different tie members.  Instead the *whole* tie group at the k-th
    distance is drained and the cut is made on ``(distance, oid)`` —
    the brute-force oracle's order, and the order
    :class:`repro.shard.merge.TopKMerger` guarantees — so single,
    sharded, and oracle answers are byte-identical.
    """
    results: list[SearchResult] = []
    kth = 0.0
    for result in iterator:
        if len(results) < k:
            results.append(result)
            kth = result.distance  # stream is non-decreasing
            continue
        if result.distance > kth:
            break
        results.append(result)  # tie member at the k-th distance
    results.sort(key=result_sort_key)
    return results[:k]


def ir2_top_k(
    tree: RTree,
    store: ObjectStore,
    analyzer: Analyzer,
    query: SpatialKeywordQuery,
    trace: NNTrace | None = None,
) -> SearchOutcome:
    """The paper's ``IR2TopK``: top ``Q.k`` distance-first answers."""
    outcome = SearchOutcome()
    iterator = ir2_top_k_iter(
        tree, store, analyzer, query, counters=outcome.counters, trace=trace
    )
    with qtrace.start_span("traverse", category="phase"):
        outcome.results = drain_top_k(iterator, query.k)
    return outcome


def rtree_top_k_iter(
    tree: RTree,
    store: ObjectStore,
    analyzer: Analyzer,
    query: SpatialKeywordQuery,
    counters: SearchCounters | None = None,
) -> Iterator[SearchResult]:
    """The R-Tree baseline (Section V.A), incremental form.

    Plain incremental NN with *no* signature pruning: every neighbor is
    retrieved and its text inspected, which is precisely the baseline's
    weakness — "it has to retrieve every object returned by the NN
    algorithm until the top-k result objects are found".
    """
    terms = analyzer.query_terms(query.keywords)
    for obj_ptr, distance in incremental_nearest(tree, query.target):
        obj = store.load(obj_ptr)
        if counters is not None:
            counters.objects_inspected += 1
        ok = analyzer.contains_all(obj.text, terms)
        span = qtrace.current_span()
        if span is not None:
            span.event(
                qtrace.EVT_OBJECT_VERIFY, oid=obj.oid, false_positive=not ok
            )
        if ok:
            yield SearchResult(obj, distance, score=-distance)
        elif counters is not None:
            counters.false_positives += 1


def rtree_top_k(
    tree: RTree,
    store: ObjectStore,
    analyzer: Analyzer,
    query: SpatialKeywordQuery,
) -> SearchOutcome:
    """R-Tree baseline: top ``Q.k`` answers via fetch-and-filter NN."""
    outcome = SearchOutcome()
    iterator = rtree_top_k_iter(
        tree, store, analyzer, query, counters=outcome.counters
    )
    with qtrace.start_span("traverse", category="phase"):
        outcome.results = drain_top_k(iterator, query.k)
    return outcome


def brute_force_top_k(
    objects, analyzer: Analyzer, query: SpatialKeywordQuery
) -> list[SearchResult]:
    """Index-free oracle for the distance-first query (test reference).

    Scans every object, applies the conjunctive keyword filter, sorts by
    distance (ties by oid for determinism), returns the first ``k``.
    """
    terms = analyzer.query_terms(query.keywords)
    matches = [
        SearchResult(
            obj,
            target_point_distance(obj.point, query.target),
        )
        for obj in objects
        if analyzer.contains_all(obj.text, terms)
    ]
    matches.sort(key=result_sort_key)
    for result in matches:
        result.score = -result.distance
    return matches[: query.k]
