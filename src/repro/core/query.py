"""Query model for top-k spatial keyword search (paper Section II).

A :class:`SpatialKeywordQuery` is the paper's ``Q``: a number ``Q.k`` of
requested results, a point ``Q.p``, and a set ``Q.t`` of keywords.  The
*distance-first* variant (used in the paper's running examples and all of
its experiments) ranks by distance and applies the keywords as a
conjunctive filter; the *general* variant ranks by a combined function
``f(distance, IRscore)`` supplied at query time.

:class:`QueryExecution` packages a query's answers together with the
per-query cost metrics the paper reports: random/sequential block
accesses, objects inspected, and simulated execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from repro.errors import QueryError
from repro.model import SearchResult
from repro.spatial.geometry import Rect
from repro.storage.iostats import IOStats
from repro.storage.timing import DEFAULT_DRIVE, DriveModel


@dataclass(frozen=True)
class SpatialKeywordQuery:
    """A top-k spatial keyword query ``Q = (Q.k, Q.p, Q.t)``.

    The spatial anchor is normally a point; Section III notes "an area
    could be used instead", so a query may also carry a rectangular
    ``area`` — distances are then measured to the nearest point of the
    area (objects inside it are at distance 0).

    A query may additionally carry a ``ranking`` function, turning it
    into the paper's *general* variant (Section V.C): results are then
    ordered by ``f(distance, IRscore)`` instead of plain distance, and
    :meth:`SpatialKeywordEngine.search` dispatches it to the ranked
    execution path.

    Attributes:
        point: query location ``Q.p`` (the area's center for area queries).
        keywords: query keywords ``Q.t`` (order preserved, duplicates
            allowed here; analyzers deduplicate).
        k: number of requested results ``Q.k``.
        area: optional query area; when present it supersedes ``point``
            as the spatial target.
        ranking: optional combined ranking function ``f(distance,
            ir_score)`` — decreasing in distance, increasing in IR score.
            ``None`` means distance-first with a conjunctive keyword
            filter (the paper's default and all of its experiments).
    """

    point: tuple[float, ...]
    keywords: tuple[str, ...]
    k: int
    area: Rect | None = None
    ranking: Callable[[float, float], float] | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if not self.point:
            raise QueryError("query point must have at least one dimension")
        if not self.keywords:
            raise QueryError("query must carry at least one keyword")
        if self.area is not None and self.area.dims != len(self.point):
            raise QueryError(
                f"area dimensionality {self.area.dims} != point "
                f"dimensionality {len(self.point)}"
            )
        if self.area is not None and self.ranking is not None:
            raise QueryError("ranked area queries are not supported")

    @staticmethod
    def of(point, keywords, k: int = 10, ranking=None) -> "SpatialKeywordQuery":
        """Convenience constructor accepting any iterables."""
        return SpatialKeywordQuery(
            tuple(float(c) for c in point), tuple(keywords), int(k),
            ranking=ranking,
        )

    @staticmethod
    def of_area(area: Rect, keywords, k: int = 10) -> "SpatialKeywordQuery":
        """An area-anchored query (objects inside rank at distance 0)."""
        return SpatialKeywordQuery(area.center, tuple(keywords), int(k), area)

    def with_ranking(self, ranking) -> "SpatialKeywordQuery":
        """This query with a (different) ranking function attached."""
        return replace(self, ranking=ranking)

    @property
    def target(self):
        """The spatial target the algorithms rank against: area or point."""
        return self.area if self.area is not None else self.point

    @property
    def dims(self) -> int:
        """Dimensionality of the query point."""
        return len(self.point)


@dataclass
class QueryExecution:
    """Results plus the cost metrics of answering one query.

    Attributes:
        query: the executed query.
        results: ranked answers (length <= ``query.k``).
        io: merged I/O delta across every device the algorithm touched.
        objects_inspected: objects loaded from the object file
            (Figures 11b / 14b report this as "object accesses").
        false_positive_candidates: loaded objects that failed the keyword
            verification (signature or spatial-order false positives).
        nodes_visited: index nodes loaded during the query.
        algorithm: short label ("RTREE", "IIO", "IR2", "MIR2", or a
            sharded composite like "SHARDED-IR2x4").
        trace: optional :class:`repro.serve.tracing.TraceSpan` attached by
            the concurrent service layer (queue wait, timings, cache
            status); ``None`` for direct engine queries.
        shards: per-shard cost breakdown (JSON-ready dicts) attached by
            :class:`repro.shard.ShardedEngine`; ``None`` for unsharded
            executions.
        degraded: True when one or more shards failed and the engine's
            ``"partial"`` failure policy returned the surviving shards'
            answer instead of raising — the results may be missing
            members that only the failed shards held.
        failed_shards: shard ids that failed (after retries) when
            ``degraded``; ``None``/empty otherwise.
        plan: the adaptive planner's routing record (chosen strategy,
            per-strategy cost estimates, estimated vs actual cost) when
            the query ran under ``index="auto"``; ``None`` for fixed
            index kinds.  JSON-ready (see
            :meth:`repro.plan.PlanDecision.as_dict`).
        engine_version: the published snapshot version that answered
            this query when it ran through a
            :class:`repro.serve.QueryService` in snapshot-maintenance
            mode; ``None`` for direct engine queries and the lock-based
            maintenance mode.
    """

    query: SpatialKeywordQuery
    results: list[SearchResult]
    io: IOStats = field(default_factory=IOStats)
    objects_inspected: int = 0
    false_positive_candidates: int = 0
    nodes_visited: int = 0
    algorithm: str = ""
    trace: object | None = None
    shards: list[dict] | None = None
    degraded: bool = False
    failed_shards: list[int] | None = None
    plan: dict | None = None
    engine_version: int | None = None

    def simulated_ms(self, drive: DriveModel = DEFAULT_DRIVE) -> float:
        """Simulated execution time under the given drive model."""
        return drive.simulated_ms(self.io)

    def with_result_copies(self) -> "QueryExecution":
        """A shallow replica whose results are per-entry copies.

        The result cache stores these so that a caller mutating the
        execution it was handed (either this one or a later cache hit)
        can never reach the cached entry's state.
        """
        return replace(self, results=[result.copy() for result in self.results])

    @property
    def oids(self) -> list[int]:
        """Identifiers of the result objects, in rank order."""
        return [result.obj.oid for result in self.results]

    def to_dict(self, drive: DriveModel = DEFAULT_DRIVE) -> dict:
        """JSON-serializable result/cost payload for trace exports.

        Used by the CLI's ``query --json`` output and the ``serve
        --serve-trace`` execution dump; everything in the returned dict is
        plain JSON types.  The per-shard breakdown appears only for
        executions answered by a :class:`repro.shard.ShardedEngine`.
        """
        payload = {
            "algorithm": self.algorithm,
            "query": {
                "point": list(self.query.point),
                "keywords": list(self.query.keywords),
                "k": self.query.k,
                "area": (
                    [list(self.query.area.lo), list(self.query.area.hi)]
                    if self.query.area is not None else None
                ),
                "ranked": self.query.ranking is not None,
            },
            "results": [
                {
                    "oid": result.obj.oid,
                    "point": list(result.obj.point),
                    "distance": result.distance,
                    "score": result.score,
                    "ir_score": result.ir_score,
                    "text": result.obj.text,
                }
                for result in self.results
            ],
            "oids": self.oids,
            "io": {
                "random_reads": self.io.random_reads,
                "sequential_reads": self.io.sequential_reads,
                "shared_reads": self.io.shared_reads,
                "random_writes": self.io.random_writes,
                "sequential_writes": self.io.sequential_writes,
                "objects_loaded": self.io.objects_loaded,
            },
            "objects_inspected": self.objects_inspected,
            "false_positive_candidates": self.false_positive_candidates,
            "nodes_visited": self.nodes_visited,
            "simulated_ms": self.simulated_ms(drive),
            "degraded": self.degraded,
            "failed_shards": list(self.failed_shards or []),
            "engine_version": self.engine_version,
        }
        if self.shards is not None:
            payload["shards"] = self.shards
        if self.plan is not None:
            payload["plan"] = self.plan
        return payload

    def summary(self) -> str:
        """Compact human-readable cost line for logs and examples."""
        line = (
            f"{self.algorithm or 'query'}: {len(self.results)} results, "
            f"{self.io.random.total} random + {self.io.sequential.total} "
            f"sequential block accesses, {self.objects_inspected} objects "
            f"inspected, {self.simulated_ms():.2f} ms simulated"
        )
        if self.degraded:
            failed = ", ".join(str(s) for s in self.failed_shards or [])
            line += f" [DEGRADED: shard(s) {failed} failed]"
        return line
