"""Query model for top-k spatial keyword search (paper Section II).

A :class:`SpatialKeywordQuery` is the paper's ``Q``: a number ``Q.k`` of
requested results, a point ``Q.p``, and a set ``Q.t`` of keywords.  The
*distance-first* variant (used in the paper's running examples and all of
its experiments) ranks by distance and applies the keywords as a
conjunctive filter; the *general* variant ranks by a combined function
``f(distance, IRscore)`` supplied at query time.

:class:`QueryExecution` packages a query's answers together with the
per-query cost metrics the paper reports: random/sequential block
accesses, objects inspected, and simulated execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.model import SearchResult
from repro.spatial.geometry import Rect
from repro.storage.iostats import IOStats
from repro.storage.timing import DEFAULT_DRIVE, DriveModel


@dataclass(frozen=True)
class SpatialKeywordQuery:
    """A top-k spatial keyword query ``Q = (Q.k, Q.p, Q.t)``.

    The spatial anchor is normally a point; Section III notes "an area
    could be used instead", so a query may also carry a rectangular
    ``area`` — distances are then measured to the nearest point of the
    area (objects inside it are at distance 0).

    Attributes:
        point: query location ``Q.p`` (the area's center for area queries).
        keywords: query keywords ``Q.t`` (order preserved, duplicates
            allowed here; analyzers deduplicate).
        k: number of requested results ``Q.k``.
        area: optional query area; when present it supersedes ``point``
            as the spatial target.
    """

    point: tuple[float, ...]
    keywords: tuple[str, ...]
    k: int
    area: Rect | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        if not self.point:
            raise QueryError("query point must have at least one dimension")
        if not self.keywords:
            raise QueryError("query must carry at least one keyword")
        if self.area is not None and self.area.dims != len(self.point):
            raise QueryError(
                f"area dimensionality {self.area.dims} != point "
                f"dimensionality {len(self.point)}"
            )

    @staticmethod
    def of(point, keywords, k: int = 10) -> "SpatialKeywordQuery":
        """Convenience constructor accepting any iterables."""
        return SpatialKeywordQuery(
            tuple(float(c) for c in point), tuple(keywords), int(k)
        )

    @staticmethod
    def of_area(area: Rect, keywords, k: int = 10) -> "SpatialKeywordQuery":
        """An area-anchored query (objects inside rank at distance 0)."""
        return SpatialKeywordQuery(area.center, tuple(keywords), int(k), area)

    @property
    def target(self):
        """The spatial target the algorithms rank against: area or point."""
        return self.area if self.area is not None else self.point

    @property
    def dims(self) -> int:
        """Dimensionality of the query point."""
        return len(self.point)


@dataclass
class QueryExecution:
    """Results plus the cost metrics of answering one query.

    Attributes:
        query: the executed query.
        results: ranked answers (length <= ``query.k``).
        io: merged I/O delta across every device the algorithm touched.
        objects_inspected: objects loaded from the object file
            (Figures 11b / 14b report this as "object accesses").
        false_positive_candidates: loaded objects that failed the keyword
            verification (signature or spatial-order false positives).
        nodes_visited: index nodes loaded during the query.
        algorithm: short label ("RTREE", "IIO", "IR2", "MIR2").
        trace: optional :class:`repro.serve.tracing.TraceSpan` attached by
            the concurrent service layer (queue wait, timings, cache
            status); ``None`` for direct engine queries.
    """

    query: SpatialKeywordQuery
    results: list[SearchResult]
    io: IOStats = field(default_factory=IOStats)
    objects_inspected: int = 0
    false_positive_candidates: int = 0
    nodes_visited: int = 0
    algorithm: str = ""
    trace: object | None = None

    def simulated_ms(self, drive: DriveModel = DEFAULT_DRIVE) -> float:
        """Simulated execution time under the given drive model."""
        return drive.simulated_ms(self.io)

    @property
    def oids(self) -> list[int]:
        """Identifiers of the result objects, in rank order."""
        return [result.obj.oid for result in self.results]

    def summary(self) -> str:
        """Compact human-readable cost line for logs and examples."""
        return (
            f"{self.algorithm or 'query'}: {len(self.results)} results, "
            f"{self.io.random.total} random + {self.io.sequential.total} "
            f"sequential block accesses, {self.objects_inspected} objects "
            f"inspected, {self.simulated_ms():.2f} ms simulated"
        )
