"""User-facing facade: :class:`SpatialKeywordEngine`.

Bundles a corpus and one index behind the small API most applications
need::

    engine = SpatialKeywordEngine(index="ir2", signature_bytes=16)
    engine.add_object(1, (25.4, -80.1), "tennis court gift shop spa internet")
    ...
    engine.build()
    execution = engine.query((30.5, 100.0), ["internet", "pool"], k=2)
    for result in execution.results:
        print(result.obj.oid, result.distance)

Lower-level pieces (trees, stores, search functions) stay importable for
research use; the engine adds nothing they cannot do.

The query path is thread-safe once the engine is built: searches only read
the tree/store structures, per-execution I/O accounting is isolated in
thread-local collectors (:func:`repro.storage.iostats.collecting_io`), and
the shared device counters are lock-protected.  Mutations
(:meth:`~SpatialKeywordEngine.add` / :meth:`~SpatialKeywordEngine.build` /
:meth:`~SpatialKeywordEngine.delete`) mutate those structures in place and
must not race a concurrent query *on the same engine instance* — use
:meth:`SpatialKeywordEngine.serve` (a :class:`repro.serve.QueryService`),
whose snapshot maintenance mode buffers mutations into an overlay and
folds them into a copy-on-write replacement engine
(:meth:`~SpatialKeywordEngine.clone_empty`), so served queries run safely
against immutable published versions while writes stream in.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.corpus import Corpus, CorpusStats
from repro.core.indexes import SpatialKeywordIndex, make_index
from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.core.ranking import (
    DistanceDecayRanking,
    LinearRanking,
    RankingCallable,
    validate_monotonicity,
)
from repro.core.search import SearchCounters
from repro.errors import IndexError_, QueryError
from repro.model import SearchResult, SpatialObject
from repro.spatial.geometry import Rect
from repro.storage.block import DEFAULT_BLOCK_SIZE
from repro.storage.iostats import IOStats
from repro.text.analyzer import Analyzer


class SpatialKeywordEngine:
    """A complete spatial-keyword search system over one dataset.

    Args:
        index: which structure answers queries — "ir2" (default), "mir2",
            the paper's baselines "rtree" / "iio", or the signature-file
            scan "sig".
        signature_bytes: signature length for the IR2-Tree (or the leaf
            level of the MIR2-Tree); ignored by the baselines.
        bits_per_word: signature hash bits per word.
        analyzer: custom tokenizer; the library default when omitted.
        block_size: disk block size for every structure (paper: 4096).
        seed: signature hash seed.
        capacity: tree fan-out override (derived from block size when
            omitted).
        compression: IIO posting codec, "raw" or "varint" [NMN+00];
            ignored by the other index kinds.
        auto_kinds: candidate strategies for ``index="auto"`` (the
            cost-based planner routes each query among them); ignored by
            the fixed index kinds.  Defaults to
            :data:`repro.core.indexes.AUTO_DEFAULT_CANDIDATES`.
    """

    def __init__(
        self,
        index: str = "ir2",
        signature_bytes: int = 16,
        bits_per_word: int = 3,
        analyzer: Analyzer | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        seed: int = 0,
        capacity: int | None = None,
        compression: str = "raw",
        auto_kinds: Sequence[str] | None = None,
    ) -> None:
        self.corpus = Corpus(analyzer=analyzer, block_size=block_size)
        self._index_kind = index
        # Everything needed to construct an equivalent empty engine —
        # the snapshot maintainer's copy-on-write merges rebuild into a
        # clone_empty() instead of mutating a published base in place.
        self._init_config = {
            "index": index,
            "signature_bytes": signature_bytes,
            "bits_per_word": bits_per_word,
            "analyzer": analyzer,
            "block_size": block_size,
            "seed": seed,
            "capacity": capacity,
            "compression": compression,
            "auto_kinds": tuple(auto_kinds) if auto_kinds else None,
        }
        self.index: SpatialKeywordIndex = make_index(
            index,
            self.corpus,
            signature_bytes=signature_bytes,
            bits_per_word=bits_per_word,
            seed=seed,
            capacity=capacity,
            compression=compression,
            auto_candidates=auto_kinds,
        )
        self._pointers: dict[int, int] = {}  # oid -> ObjPtr

    # -- Population -------------------------------------------------------------

    def add_object(self, oid: int, point: Sequence[float], text: str) -> None:
        """Stage one object (before :meth:`build`) or insert it live (after)."""
        self.add(SpatialObject(oid, tuple(float(c) for c in point), text))

    def add(self, obj: SpatialObject) -> None:
        """Stage or live-insert a :class:`~repro.model.SpatialObject`."""
        if obj.oid in self._pointers:
            raise QueryError(f"object id {obj.oid} already present")
        pointer = self.corpus.add(obj)
        self._pointers[obj.oid] = pointer
        if self.index.built:
            self.index.insert_object(pointer, obj)

    def add_all(self, objects: Iterable[SpatialObject]) -> None:
        """Stage or live-insert many objects."""
        for obj in objects:
            self.add(obj)

    def build(self, bulk: bool = True) -> None:
        """Construct the index over everything staged so far."""
        self.index.build(bulk=bulk)

    def delete(self, oid: int) -> bool:
        """Remove an object from the index and the corpus bookkeeping."""
        if not self.index.built:
            raise IndexError_("build() the engine before deleting objects")
        pointer = self._pointers.pop(oid, None)
        if pointer is None:
            return False
        obj = self.corpus.store.load(pointer)
        removed = self.index.delete_object(pointer, obj)
        self.corpus.store.delete(oid)
        self.corpus.vocabulary.remove_document(self.corpus.analyzer.terms(obj.text))
        return removed

    def contains(self, oid: int) -> bool:
        """Whether ``oid`` is currently live (staged or indexed)."""
        return oid in self._pointers

    def get_object(self, oid: int) -> SpatialObject | None:
        """Load one live object by id (None when absent)."""
        pointer = self._pointers.get(oid)
        if pointer is None:
            return None
        return self.corpus.store.load(pointer)

    def clone_empty(self) -> "SpatialKeywordEngine":
        """A fresh, empty engine with this engine's construction config.

        The snapshot maintainer's merges rebuild into a clone and swap
        it in atomically, leaving the original untouched for in-flight
        readers.  The clone shares the analyzer (stateless) but owns its
        own corpus, devices, and index structures.
        """
        config = dict(self._init_config)
        config["analyzer"] = self.corpus.analyzer
        return SpatialKeywordEngine(**config)

    # -- Queries ------------------------------------------------------------------

    def search(
        self, query: SpatialKeywordQuery, *, vocabulary=None
    ) -> QueryExecution:
        """Unified entry point: execute any :class:`SpatialKeywordQuery`.

        Dispatches on the query itself — a ``ranking`` function selects
        the general ranked path (Section V.C), an ``area`` anchors the
        distance-first search to a rectangle (Section III), and a plain
        point query runs the paper's default distance-first algorithm.
        :meth:`query`, :meth:`query_area`, and :meth:`query_ranked` are
        thin conveniences that construct a query and call this method.

        ``vocabulary`` overrides the corpus statistics ranked scoring
        uses (the snapshot layer passes a version-wide vocabulary so
        buffered overlays score exactly); ignored by distance-first
        queries, which never consult idf values.
        """
        if query.ranking is not None:
            return self._search_ranked(query, vocabulary=vocabulary)
        return self.index.execute(query)

    def search_many(
        self, queries: Sequence[SpatialKeywordQuery]
    ) -> list[QueryExecution]:
        """Execute a batch of queries under one shared-read session.

        Queries run sequentially (answers are byte-identical to N
        :meth:`search` calls), but a block any earlier query in the batch
        fetched is served from the session's byte cache instead of the
        device, so total device reads grow sublinearly with batch size
        when the queries overlap spatially.  Each execution's ``io``
        stays its own exact delta: real reads in the random/sequential
        counters, session hits in ``io.shared_reads``.
        """
        from repro.storage.sharedread import shared_read_session

        with shared_read_session():
            return [self.search(query) for query in queries]

    def query(
        self, point: Sequence[float], keywords: Sequence[str], k: int = 10
    ) -> QueryExecution:
        """Distance-first top-k spatial keyword query (the paper's default).

        Delegates to :meth:`search`.
        """
        return self.search(SpatialKeywordQuery.of(point, keywords, k))

    def stream_results(
        self,
        query: SpatialKeywordQuery,
        counters: SearchCounters | None = None,
    ) -> Iterator[SearchResult]:
        """Incremental distance-first stream for an arbitrary query target.

        The low-level form of :meth:`query_incremental`: accepts a full
        :class:`SpatialKeywordQuery` (so area targets work) and optionally
        tallies per-pull cost counters — the hooks the sharded
        scatter-gather merge needs.

        Raises:
            QueryError: when the index kind is non-incremental (its
                :attr:`~repro.core.indexes.SpatialKeywordIndex.supports_incremental`
                is False).
        """
        if not self.index.supports_incremental:
            raise QueryError(
                f"index kind {self._index_kind!r} cannot stream results "
                "incrementally"
            )
        self.index.require_built()
        return self.index.result_stream(query, counters=counters)

    def query_incremental(
        self,
        point: Sequence[float],
        keywords: Sequence[str],
        counters: SearchCounters | None = None,
    ) -> Iterator[SearchResult]:
        """Lazily yield distance-first results, nearest first.

        The paper's algorithm is *incremental*: "each call to the
        IR2NearestNeighbor method returns a candidate result object".
        This exposes that property at the engine level — pull one result,
        show a page, pull more — paying index I/O only for what is
        consumed.  Supported by the tree-based indexes ("rtree", "ir2",
        "mir2"); the scan baselines ("iio", "sig", "stree") are inherently
        non-incremental (Section V.A) and raise :class:`QueryError`.

        Yields:
            :class:`~repro.model.SearchResult` objects in non-decreasing
            distance order.
        """
        return self.stream_results(
            SpatialKeywordQuery.of(point, keywords, k=1), counters=counters
        )

    def query_area(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
        keywords: Sequence[str],
        k: int = 10,
    ) -> QueryExecution:
        """Distance-first query anchored to a rectangular area.

        Section III: "an area could be used instead" of the query point.
        Objects inside the area rank first (distance 0), then by distance
        to the area's nearest edge.  Delegates to :meth:`search`.

        Args:
            lo: area's low corner (e.g. southwest point).
            hi: area's high corner (e.g. northeast point).
            keywords: conjunctive query keywords.
            k: number of requested results.
        """
        area = Rect(
            tuple(float(c) for c in lo), tuple(float(c) for c in hi)
        )
        return self.search(SpatialKeywordQuery.of_area(area, keywords, k))

    def query_ranked(
        self,
        point: Sequence[float],
        keywords: Sequence[str],
        k: int = 10,
        ranking: RankingCallable | None = None,
        prune_zero_ir: bool = True,
    ) -> QueryExecution:
        """General top-k query ranked by ``f(distance, IRscore)``.

        Only available on the signature-bearing indexes ("ir2"/"mir2").
        Delegates to :meth:`search` with the ranking attached to the
        query (a default :class:`DistanceDecayRanking` when omitted).
        """
        query = SpatialKeywordQuery.of(point, keywords, k, ranking=ranking)
        return self._search_ranked(query, prune_zero_ir=prune_zero_ir)

    def _search_ranked(
        self,
        query: SpatialKeywordQuery,
        prune_zero_ir: bool = True,
        vocabulary=None,
    ) -> QueryExecution:
        """Ranked dispatch shared by :meth:`search` and :meth:`query_ranked`."""
        execute_ranked = getattr(self.index, "execute_ranked", None)
        if execute_ranked is None:
            raise QueryError(
                f"index kind {self._index_kind!r} does not support ranked queries"
            )
        ranking = query.ranking
        if ranking is None:
            ranking = DistanceDecayRanking(half_distance=self._default_half_distance())
            query = query.with_ranking(ranking)
        elif not isinstance(ranking, (DistanceDecayRanking, LinearRanking)):
            validate_monotonicity(ranking)
        return execute_ranked(
            query, ranking, prune_zero_ir=prune_zero_ir, vocabulary=vocabulary
        )

    def _default_half_distance(self) -> float:
        """A data-independent but sane decay scale: 10% of the data extent."""
        points = [obj.point for obj in self.corpus.objects()]
        if not points:
            return 1.0
        spans = [
            max(p[d] for p in points) - min(p[d] for p in points)
            for d in range(self.corpus.dims)
        ]
        extent = max(spans) if spans else 1.0
        return max(extent * 0.1, 1e-9)

    # -- Serving ----------------------------------------------------------------

    def serve(self, workers: int = 4, **kwargs):
        """Wrap this engine in a concurrent :class:`~repro.serve.QueryService`.

        Args:
            workers: query worker threads.
            **kwargs: forwarded to :class:`repro.serve.QueryService`
                (``cache``, ``cache_capacity``, ``trace_capacity``).
        """
        from repro.serve import QueryService

        return QueryService(self, workers=workers, **kwargs)

    # -- Introspection ----------------------------------------------------------------

    @property
    def index_kind(self) -> str:
        """The index kind string this engine was constructed with."""
        return self._index_kind

    @property
    def analyzer(self):
        """The tokenizer shared by the corpus and every index over it."""
        return self.corpus.analyzer

    def objects(self) -> Iterator[SpatialObject]:
        """Yield every live object (uncounted; for workloads and stats)."""
        return self.corpus.objects()

    def __len__(self) -> int:
        return len(self.corpus)

    def corpus_stats(self) -> CorpusStats:
        """Dataset statistics in the shape of the paper's Table 1."""
        return self.corpus.stats()

    def index_size_mb(self) -> float:
        """Index structure footprint in megabytes (Table 2)."""
        return self.index.size_mb

    def io_stats(self) -> IOStats:
        """Merged running I/O counters of the index and object devices.

        Uses the index's own device list so multi-structure kinds (the
        "auto" planner index) report every candidate's device.
        """
        io = IOStats()
        for device in self.index._devices():
            io = io.merged_with(device.stats)
        return io

    def reset_io(self) -> None:
        """Zero the I/O counters (e.g. after a build, before measuring)."""
        self.index.reset_io()
