"""The IR2-Tree (Information Retrieval R-Tree), paper Section IV.

An :class:`IR2Tree` is a disk-resident R-Tree whose every entry carries a
fixed-length superimposed-coding signature: leaf entries hold the
signature of their object's document, and a non-leaf entry holds the
superimposition of everything in its child's subtree.  Insert and Delete
are the R-Tree algorithms of Figures 5 and 6 — signature maintenance rides
the same AdjustTree / CondenseTree passes that maintain MBRs, so the
asymptotic maintenance cost matches the plain R-Tree.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.schemes import IR2Scheme
from repro.spatial.geometry import Rect
from repro.spatial.rtree import Entry, Node, RTree
from repro.spatial.split import SplitStrategy
from repro.storage.pagestore import PageStore
from repro.text.signature import Signature, SignatureFactory

#: Predicate deciding whether a queue entry survives the signature check.
EntryMatcher = Callable[[Entry, Node], bool]


class IR2Tree(RTree):
    """R-Tree with fixed-length per-entry signatures.

    Args:
        pages: page store for the node images.
        factory: word -> signature mapping (length fixes the per-entry
            signature size; the paper uses 189 bytes for Hotels and 8 for
            Restaurants).
        dims: spatial dimensionality.
        capacity: entries per node; the paper keeps the plain R-Tree
            fan-out (113 for 4 KB blocks) and spills into extra blocks.
        split_strategy: node split algorithm (quadratic by default).
    """

    algorithm_label = "IR2"

    def __init__(
        self,
        pages: PageStore,
        factory: SignatureFactory,
        dims: int = 2,
        capacity: int | None = None,
        split_strategy: SplitStrategy | None = None,
    ) -> None:
        super().__init__(
            pages,
            dims=dims,
            capacity=capacity,
            split_strategy=split_strategy,
            scheme=IR2Scheme(factory),
        )
        self.factory = factory

    # -- Object-level API -----------------------------------------------------

    def insert_object(
        self, obj_ptr: int, point: Sequence[float], terms: Sequence[str] | set[str]
    ) -> None:
        """Insert an object: signature computed from its distinct terms."""
        signature = self.factory.for_words(terms)
        self.insert(obj_ptr, Rect.from_point(point), signature.to_bytes())

    def delete_object(self, obj_ptr: int, point: Sequence[float]) -> bool:
        """Delete the entry for ``obj_ptr`` at ``point``; True when found."""
        return self.delete(obj_ptr, Rect.from_point(point))

    # -- Query-side signature helpers ---------------------------------------------

    def query_signature(self, terms: Sequence[str]) -> Signature:
        """``Signature(Q.t)``: superimposition of the query keywords."""
        return self.factory.for_words(terms)

    def signature_matcher(self, terms: Sequence[str]) -> EntryMatcher:
        """The "s matches w" test of Figure 8 for distance-first search.

        Returns a predicate suitable for
        :func:`repro.spatial.nearest.incremental_nearest`'s
        ``entry_filter``: an entry survives when its signature covers the
        conjunctive query signature.
        """
        query = self.query_signature(terms)

        def matches(entry: Entry, node: Node) -> bool:
            return Signature.from_bytes(entry.signature).matches(query)

        return matches

    def matched_terms(
        self, entry: Entry, node: Node, terms: Sequence[str]
    ) -> list[str]:
        """Query terms whose individual signatures the entry covers.

        The general algorithm's per-keyword test (Section V.C change #1):
        no AND semantics, each keyword is checked on its own.
        """
        entry_signature = Signature.from_bytes(entry.signature)
        return [
            term
            for term in terms
            if entry_signature.matches(self.factory.for_word(term))
        ]
