"""Corpus: the shared object file plus corpus-wide text statistics.

One :class:`Corpus` per dataset holds the paper's plain-text object file
(Section VI) and the vocabulary statistics every index and the IR model
draw on.  All four index structures in a benchmark are built over the
*same* corpus, so object-file accesses are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.model import SpatialObject
from repro.storage.block import DEFAULT_BLOCK_SIZE, BlockDevice, InMemoryBlockDevice
from repro.storage.objectstore import ObjectStore
from repro.text.analyzer import DEFAULT_ANALYZER, Analyzer
from repro.text.vocabulary import Vocabulary


@dataclass(frozen=True)
class CorpusStats:
    """The columns of the paper's Table 1 for one dataset."""

    size_mb: float
    total_objects: int
    avg_unique_words_per_object: float
    unique_words: int
    avg_blocks_per_object: float

    def row(self) -> tuple:
        """Values in Table 1 column order."""
        return (
            round(self.size_mb, 1),
            self.total_objects,
            round(self.avg_unique_words_per_object, 1),
            self.unique_words,
            round(self.avg_blocks_per_object, 2),
        )


class Corpus:
    """Object store + analyzer + vocabulary for one dataset.

    Args:
        analyzer: tokenizer shared by every index over this corpus.
        block_size: object-file block size (paper: 4 KB).
        device: custom backing device; an in-memory one by default.
    """

    def __init__(
        self,
        analyzer: Analyzer | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        device: BlockDevice | None = None,
    ) -> None:
        self.analyzer = analyzer or DEFAULT_ANALYZER
        self.device = device or InMemoryBlockDevice(block_size, name="objects")
        self.store = ObjectStore(self.device)
        self.vocabulary = Vocabulary()
        self._dims: int | None = None

    # -- Population ---------------------------------------------------------------

    def add(self, obj: SpatialObject) -> int:
        """Append one object; returns its pointer (``ObjPtr``)."""
        if self._dims is None:
            self._dims = obj.dims
        elif obj.dims != self._dims:
            raise ValueError(
                f"object dimensionality {obj.dims} != corpus dimensionality {self._dims}"
            )
        pointer = self.store.append(obj)
        self.vocabulary.add_document(self.analyzer.terms(obj.text))
        return pointer

    def add_all(self, objects: Iterable[SpatialObject]) -> list[int]:
        """Append many objects; returns their pointers in order."""
        return [self.add(obj) for obj in objects]

    # -- Access --------------------------------------------------------------------

    @property
    def dims(self) -> int:
        """Spatial dimensionality (2 until the first object says otherwise)."""
        return self._dims if self._dims is not None else 2

    def __len__(self) -> int:
        return len(self.store)

    def term_resolver(self, pointer: int) -> set[str]:
        """Distinct terms of the object at ``pointer`` (counted load).

        This is the resolver handed to the MIR2-Tree's maintenance walks,
        so its object reads show up as disk accesses.
        """
        return self.analyzer.terms(self.store.load(pointer).text)

    def iter_items(self) -> Iterator[tuple[int, SpatialObject]]:
        """Yield ``(pointer, object)`` pairs without I/O accounting."""
        return self.store.iter_objects()

    def objects(self) -> Iterator[SpatialObject]:
        """Yield every live object (uncounted; for oracles and stats)."""
        for _, obj in self.store.iter_objects():
            yield obj

    # -- Statistics (Table 1) ----------------------------------------------------------

    def stats(self) -> CorpusStats:
        """Compute the dataset-details row of the paper's Table 1."""
        count = len(self.store)
        if count == 0:
            return CorpusStats(0.0, 0, 0.0, 0, 0.0)
        total_blocks = sum(
            self.store.blocks_for(pointer) for pointer, _ in self.store.iter_objects()
        )
        return CorpusStats(
            size_mb=self.store.size_mb,
            total_objects=count,
            avg_unique_words_per_object=(
                self.vocabulary.average_unique_words_per_document
            ),
            unique_words=self.vocabulary.unique_words,
            avg_blocks_per_object=total_blocks / count,
        )
