"""repro — a from-scratch reproduction of *Keyword Search on Spatial
Databases* (De Felipe, Hristidis, Rishe; ICDE 2008).

The package implements the paper's complete system in pure Python:

* :mod:`repro.storage` — disk-block simulator with random/sequential
  access accounting, page store, plain-text object file;
* :mod:`repro.spatial` — R-Tree [Gut84] with quadratic split and the
  incremental nearest-neighbor algorithm [HS99];
* :mod:`repro.text` — signature files [FC84] with optimal-length design
  [MC94], a disk-resident inverted index, and the IR scoring model;
* :mod:`repro.core` — the IR2-Tree and MIR2-Tree, the distance-first and
  general top-k spatial keyword search algorithms, both baselines, and
  the :class:`~repro.core.engine.SpatialKeywordEngine` facade;
* :mod:`repro.datasets` — synthetic Hotels/Restaurants generators that
  stand in for the paper's (defunct) HPDRC datasets, plus the Figure-1
  running example;
* :mod:`repro.shard` — spatial partitioning plus the
  :class:`~repro.shard.ShardedEngine` scatter-gather engine, the same
  API over N partitioned engines;
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the evaluation section.

Quick start::

    from repro import SpatialKeywordEngine

    engine = SpatialKeywordEngine(index="ir2", signature_bytes=16)
    engine.add_object(7, (-33.2, -70.4), "internet airport transportation pool")
    engine.add_object(4, (39.5, 116.2), "sauna pool conference rooms")
    engine.build()
    top = engine.query(point=(30.5, 100.0), keywords=["pool"], k=1)
    assert top.results[0].obj.oid == 4
"""

from repro.core.engine import SpatialKeywordEngine
from repro.core.query import QueryExecution, SpatialKeywordQuery
from repro.core.ranking import DistanceDecayRanking, LinearRanking
from repro.model import SearchResult, SpatialObject
from repro.shard import ShardedEngine

__version__ = "1.1.0"

__all__ = [
    "DistanceDecayRanking",
    "LinearRanking",
    "QueryExecution",
    "SearchResult",
    "ShardedEngine",
    "SpatialKeywordEngine",
    "SpatialKeywordQuery",
    "SpatialObject",
    "__version__",
]
