"""Core data model: the spatial object.

Section II of the paper defines a (spatial) object ``T`` as a pair
``(T.p, T.t)`` where ``T.p`` is a location in multidimensional space and
``T.t`` is a text document.  :class:`SpatialObject` is that pair plus a
stable integer identifier used by the stores and indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpatialObject:
    """One spatial object: an id, a point location, and a text document.

    Attributes:
        oid: application-level object identifier (e.g. row number in the
            source dataset).  Unique within a store.
        point: location ``T.p`` as a tuple of coordinates.  The paper's
            running example uses ``(latitude, longitude)``; any
            dimensionality is supported.
        text: the document ``T.t``; for the hotel example this is the
            concatenation of the name and amenities attributes.
    """

    oid: int
    point: tuple[float, ...]
    text: str

    @property
    def dims(self) -> int:
        """Spatial dimensionality of the object's location."""
        return len(self.point)

    def with_text(self, text: str) -> "SpatialObject":
        """Return a copy of this object with a replaced document."""
        return SpatialObject(self.oid, self.point, text)


@dataclass
class SearchResult:
    """One ranked answer of a top-k spatial keyword query.

    Attributes:
        obj: the matching object.
        distance: Euclidean distance from the query point to ``obj.point``.
        score: combined ranking score; for distance-first queries this is
            simply ``-distance`` so larger is better for both query types.
        ir_score: textual relevance component (0.0 for boolean queries).
    """

    obj: SpatialObject
    distance: float
    score: float = 0.0
    ir_score: float = 0.0

    @property
    def oid(self) -> int:
        """Identifier of the matching object."""
        return self.obj.oid

    def copy(self) -> "SearchResult":
        """An independent copy (``obj`` is frozen and safely shared).

        The serving layer's result cache hands each hit copies so a
        caller mutating a returned result (e.g. re-scoring in place)
        cannot corrupt the cached answer for later hits.
        """
        return SearchResult(self.obj, self.distance, self.score, self.ir_score)


def result_sort_key(result: SearchResult) -> tuple[float, int]:
    """The canonical ``(distance, oid)`` tie-breaking order.

    Every code path that cuts a distance-first result list at ``k`` —
    the single-engine searches, the scan baselines, the sharded
    :class:`~repro.shard.merge.TopKMerger`, and the brute-force oracle —
    sorts by this key, which is what makes their answers byte-identical
    under exact distance ties.
    """
    return (result.distance, result.obj.oid)
