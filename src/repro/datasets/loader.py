"""Tab-delimited dataset files.

The paper's datasets "are plain text files (tab delimited) where each
spatial object occupies a row" (Section VI).  These helpers read and write
that format so generated corpora can be exported, inspected, and reloaded
— and so a user with the original HPDRC files (or any TSV of
``id <TAB> lat <TAB> lon <TAB> text``) can run the system on real data.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from repro.errors import DatasetError
from repro.model import SpatialObject


def save_tsv(path: str, objects: Iterable[SpatialObject]) -> int:
    """Write objects as ``oid <TAB> lat <TAB> ... <TAB> text`` rows.

    Returns the number of rows written.  Tabs/newlines inside documents
    are replaced by spaces to keep one object per row.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for obj in objects:
            clean = obj.text.replace("\t", " ").replace("\n", " ").replace("\r", " ")
            coords = "\t".join(repr(c) for c in obj.point)
            handle.write(f"{obj.oid}\t{coords}\t{clean}\n")
            count += 1
    return count


def iter_tsv(path: str, dims: int = 2) -> Iterator[SpatialObject]:
    """Stream objects from a tab-delimited file (memory-friendly).

    Args:
        path: dataset file path.
        dims: number of coordinate columns between the id and the text.

    Raises:
        DatasetError: on a missing file or malformed row.
    """
    if not os.path.exists(path):
        raise DatasetError(f"dataset file not found: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) < 1 + dims:
                raise DatasetError(
                    f"{path}:{line_no}: expected at least {1 + dims} columns, "
                    f"got {len(fields)}"
                )
            try:
                oid = int(fields[0])
                point = tuple(float(c) for c in fields[1 : 1 + dims])
            except ValueError as exc:
                raise DatasetError(f"{path}:{line_no}: {exc}") from exc
            text = "\t".join(fields[1 + dims :]) if len(fields) > 1 + dims else ""
            yield SpatialObject(oid, point, text)


def load_tsv(path: str, dims: int = 2) -> list[SpatialObject]:
    """Load a whole tab-delimited dataset into memory."""
    return list(iter_tsv(path, dims))
