"""Datasets: the Figure-1 running example, synthetic Hotels/Restaurants
generators (substituting the paper's defunct HPDRC data), TSV files."""

from repro.datasets.generator import (
    DatasetConfig,
    SpatialTextDatasetGenerator,
    hotels_config,
    restaurants_config,
    synthetic_word,
)
from repro.datasets.loader import iter_tsv, load_tsv, save_tsv
from repro.datasets.samples import (
    EXAMPLE_QUERY_KEYWORDS,
    EXAMPLE_QUERY_POINT,
    FIGURE1_ROWS,
    FIGURE2_STRUCTURE,
    figure1_hotels,
    figure2_layout,
)

__all__ = [
    "DatasetConfig",
    "EXAMPLE_QUERY_KEYWORDS",
    "EXAMPLE_QUERY_POINT",
    "FIGURE1_ROWS",
    "FIGURE2_STRUCTURE",
    "SpatialTextDatasetGenerator",
    "figure1_hotels",
    "figure2_layout",
    "hotels_config",
    "iter_tsv",
    "load_tsv",
    "restaurants_config",
    "save_tsv",
    "synthetic_word",
]
