"""Synthetic spatial-text datasets standing in for the paper's data.

The paper evaluates on two proprietary datasets from FIU's High
Performance Database Research Center (hpdrc.fiu.edu, now defunct): Hotels
(129,319 objects, ~349 unique words per object, 53,906-word vocabulary)
and Restaurants (456,288 objects, ~14 unique words per object, 73,855-word
vocabulary) — Table 1.  Because the data is unavailable, this module
generates synthetic corpora matching those *statistics*, which is what the
algorithms' relative behaviour depends on:

* object count — tree height, posting-list lengths;
* vocabulary size and Zipf-skewed word frequencies — inverted-list length
  distribution, signature fill, idf spread;
* distinct words per object — signature design point, document size on
  disk (and hence blocks per object);
* clustered spatial distribution — realistic MBR overlap for NN search.

Everything is driven by a single integer seed through ``numpy``'s PCG64,
so datasets are bit-reproducible.  ``scale`` shrinks object counts for
laptop runs while vocabulary follows a Heaps'-law ``sqrt(scale)`` factor
to keep per-document uniqueness realistic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.model import SpatialObject

#: Consonant/vowel inventories for pronounceable synthetic words.
_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of one synthetic corpus.

    Attributes:
        name: dataset label ("hotels", "restaurants", ...).
        n_objects: number of spatial objects.
        vocabulary_size: distinct words available to documents.
        avg_unique_words: target mean distinct words per document.
        zipf_exponent: word-frequency skew (1.0 ~ natural language).
        clusters: number of spatial clusters (0 = uniform).
        cluster_std: cluster standard deviation in coordinate units.
        extent: per-dimension ``(min, max)`` bounds; its length sets the
            dimensionality (the paper's examples are 2-D lat/lon, but the
            method "can be applied to ... multi-dimensional objects").
        seed: master RNG seed.
    """

    name: str
    n_objects: int
    vocabulary_size: int
    avg_unique_words: float
    zipf_exponent: float = 1.0
    clusters: int = 24
    cluster_std: float = 4.0
    extent: tuple[tuple[float, float], ...] = (
        (-90.0, 90.0),
        (-180.0, 180.0),
    )
    seed: int = 7

    @property
    def dims(self) -> int:
        """Spatial dimensionality (length of ``extent``)."""
        return len(self.extent)

    def __post_init__(self) -> None:
        if self.n_objects < 1:
            raise DatasetError(f"n_objects must be >= 1, got {self.n_objects}")
        if len(self.extent) < 1:
            raise DatasetError("extent needs at least one dimension")
        if any(lo > hi for lo, hi in self.extent):
            raise DatasetError(f"inverted extent bounds: {self.extent}")
        if self.vocabulary_size < 1:
            raise DatasetError(
                f"vocabulary_size must be >= 1, got {self.vocabulary_size}"
            )
        if self.avg_unique_words < 1:
            raise DatasetError(
                f"avg_unique_words must be >= 1, got {self.avg_unique_words}"
            )


def synthetic_word(index: int) -> str:
    """Deterministic pronounceable word for a vocabulary slot.

    Index 0 -> "ba", growing in length as the vocabulary grows; distinct
    indices always produce distinct words (bijective numeration over CV
    syllables: words of equal length differ in some syllable, and words
    of different lengths differ trivially).
    """
    syllables = []
    value = index
    while True:
        syllable_id = value % (len(_CONSONANTS) * len(_VOWELS))
        syllables.append(
            _CONSONANTS[syllable_id // len(_VOWELS)] + _VOWELS[syllable_id % len(_VOWELS)]
        )
        value //= len(_CONSONANTS) * len(_VOWELS)
        if value == 0:
            break
        value -= 1  # bijective numeration: no word is a prefix collision
    return "".join(reversed(syllables))


class SpatialTextDatasetGenerator:
    """Reproducible generator of spatial objects with Zipfian documents."""

    def __init__(self, config: DatasetConfig) -> None:
        self.config = config
        self._rng = np.random.Generator(np.random.PCG64(config.seed))
        self._words = [synthetic_word(i) for i in range(config.vocabulary_size)]
        ranks = np.arange(1, config.vocabulary_size + 1, dtype=np.float64)
        weights = ranks ** (-config.zipf_exponent)
        self._probabilities = weights / weights.sum()
        self._cluster_centers = self._make_cluster_centers()

    def _make_cluster_centers(self) -> np.ndarray:
        clusters = max(1, self.config.clusters)
        columns = [
            self._rng.uniform(lo, hi, size=clusters)
            for lo, hi in self.config.extent
        ]
        return np.stack(columns, axis=1)

    # -- Generation ---------------------------------------------------------------

    def generate(self) -> list[SpatialObject]:
        """Produce the full object list (deterministic for a given config)."""
        config = self.config
        points = self._generate_points(config.n_objects)
        documents = self._generate_documents(config.n_objects)
        return [
            SpatialObject(
                oid, tuple(float(c) for c in points[oid]), text
            )
            for oid, text in enumerate(documents)
        ]

    def _generate_points(self, count: int) -> np.ndarray:
        extent = self.config.extent
        dims = len(extent)
        if self.config.clusters <= 0:
            columns = [
                self._rng.uniform(lo, hi, size=count) for lo, hi in extent
            ]
            return np.stack(columns, axis=1)
        assignment = self._rng.integers(0, len(self._cluster_centers), size=count)
        centers = self._cluster_centers[assignment]
        jitter = self._rng.normal(0.0, self.config.cluster_std, size=(count, dims))
        points = centers + jitter
        for d, (lo, hi) in enumerate(extent):
            points[:, d] = np.clip(points[:, d], lo, hi)
        return points

    def _generate_documents(self, count: int) -> list[str]:
        """Draw each document's words from the Zipf distribution.

        Each document targets a Poisson-distributed number of *distinct*
        words (Table 1 reports "average # unique words per object"); the
        tokens are Zipf draws, so frequent words repeat within a document
        (tf > 1) and duplication is topped up with further draws until the
        distinct target is met (bounded rounds — a tiny vocabulary may
        saturate first).
        """
        target = max(1.0, self.config.avg_unique_words)
        vocabulary_size = self.config.vocabulary_size
        sizes = np.maximum(1, self._rng.poisson(lam=target, size=count))
        sizes = np.minimum(sizes, vocabulary_size)
        documents: list[str] = []
        for wanted in sizes:
            tokens: list[int] = []
            seen: set[int] = set()
            for _ in range(4):  # top-up rounds
                missing = int(wanted) - len(seen)
                if missing <= 0:
                    break
                draw = self._rng.choice(
                    vocabulary_size,
                    size=max(4, int(missing * 1.4)),
                    p=self._probabilities,
                )
                for index in draw:
                    if len(seen) >= wanted:
                        break
                    tokens.append(int(index))
                    seen.add(int(index))
            documents.append(" ".join(self._words[i] for i in tokens))
        return documents

    # -- Introspection ----------------------------------------------------------------

    @property
    def vocabulary(self) -> list[str]:
        """The full synthetic vocabulary, most frequent first."""
        return list(self._words)

    def frequent_words(self, count: int) -> list[str]:
        """The ``count`` highest-probability words."""
        return self._words[:count]

    def rare_words(self, count: int) -> list[str]:
        """The ``count`` lowest-probability words."""
        return self._words[-count:]


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(value * scale)))


def hotels_config(scale: float = 1.0, seed: int = 7) -> DatasetConfig:
    """Table 1's Hotels dataset: few large-vocabulary documents.

    At ``scale=1.0`` this matches the paper's 129,319 objects with ~349
    unique words each over a 53,906-word vocabulary.  Vocabulary follows
    Heaps' law (``sqrt(scale)``) so smaller corpora keep realistic word
    sharing.
    """
    if scale <= 0:
        raise DatasetError(f"scale must be > 0, got {scale}")
    return DatasetConfig(
        name="hotels",
        n_objects=_scaled(129_319, scale),
        vocabulary_size=_scaled(53_906, math.sqrt(scale), minimum=500),
        avg_unique_words=349.0,
        zipf_exponent=1.0,
        clusters=32,
        cluster_std=3.5,
        seed=seed,
    )


def restaurants_config(scale: float = 1.0, seed: int = 11) -> DatasetConfig:
    """Table 1's Restaurants dataset: many short documents.

    At ``scale=1.0`` this matches the paper's 456,288 objects with ~14
    unique words each over a 73,855-word vocabulary.
    """
    if scale <= 0:
        raise DatasetError(f"scale must be > 0, got {scale}")
    return DatasetConfig(
        name="restaurants",
        n_objects=_scaled(456_288, scale),
        vocabulary_size=_scaled(73_855, math.sqrt(scale), minimum=500),
        avg_unique_words=14.0,
        zipf_exponent=1.0,
        clusters=48,
        cluster_std=2.5,
        seed=seed,
    )
