"""The paper's running example: the Figure-1 hotel dataset.

Eight fictitious hotels with coordinates and amenity lists, used by the
paper for every worked example.  This module also encodes the exact
R-Tree of Figure 2 as a layout (node names N1-N7), so tests can replay
Example 1 (incremental NN), Example 2 (IIO), and Example 3 (distance-first
IR2 search) step for step.
"""

from __future__ import annotations

from typing import Callable

from repro.model import SpatialObject

#: (oid, name, latitude, longitude, amenities) rows of Figure 1.
FIGURE1_ROWS: tuple[tuple[int, str, float, float, str], ...] = (
    (1, "Hotel A", 25.4, -80.1, "tennis court, gift shop, spa, Internet"),
    (2, "Hotel B", 47.3, -122.2, "wireless Internet, pool, golf course"),
    (3, "Hotel C", 35.5, 139.4, "spa, continental suites, pool"),
    (4, "Hotel D", 39.5, 116.2, "sauna, pool, conference rooms"),
    (5, "Hotel E", 51.3, -0.5, "dry cleaning, free lunch, pets"),
    (6, "Hotel F", 40.4, -73.5, "safe box, concierge, internet, pets"),
    (7, "Hotel G", -33.2, -70.4, "Internet, airport transportation, pool"),
    (8, "Hotel H", -41.1, 174.4, "wake up service, no pets, pool"),
)

#: The query point of Examples 1-3.
EXAMPLE_QUERY_POINT: tuple[float, float] = (30.5, 100.0)

#: The keywords of Examples 2 and 3.
EXAMPLE_QUERY_KEYWORDS: tuple[str, str] = ("internet", "pool")


def figure1_hotels() -> list[SpatialObject]:
    """The eight hotels of Figure 1 as spatial objects.

    As in Section II, each object's document ``T.t`` is the concatenation
    of its name and amenities attributes.
    """
    return [
        SpatialObject(oid, (lat, lon), f"{name} {amenities}")
        for oid, name, lat, lon, amenities in FIGURE1_ROWS
    ]


#: Figure 2's tree shape: node name -> children (hotel oids at leaves).
#: Derived from the paper's Examples 1 and 3: the MBR distances reported
#: there (N2: 170.4, N3: 0.0, N4: 173.8, N5: 170.5, N6: 39.4, N7: 9.0 for
#: query point [30.5, 100.0]) uniquely identify this grouping.
FIGURE2_STRUCTURE = (
    "N1",
    [
        ("N2", [("N4", ["H2", "H6"]), ("N5", ["H1", "H7"])]),
        ("N3", [("N6", ["H3", "H8"]), ("N7", ["H4", "H5"])]),
    ],
)


def figure2_layout(leaf_entry: Callable[[int], tuple]) -> tuple:
    """Materialize Figure 2's structure for the explicit tree builder.

    Args:
        leaf_entry: maps a hotel oid to the ``(obj_ptr, rect, signature)``
            triple the caller wants stored in the leaf for that hotel.

    Returns:
        A layout accepted by :func:`repro.spatial.rtree.build_from_layout`.
    """

    def convert(spec):
        name, children = spec
        if isinstance(children[0], str):  # leaf: hotel labels like "H4"
            return (name, [leaf_entry(int(label[1:])) for label in children])
        return (name, [convert(child) for child in children])

    return convert(FIGURE2_STRUCTURE)
